//! End-to-end integration: generators → query engine → estimates vs exact,
//! across skews, strategies, and aggregate types.

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketches::prelude::*;
use stream_model::gen::{CensusGenerator, DeleteMix, UniformGenerator, ZipfGenerator};
use stream_model::metrics::ratio_error;
use stream_query::ingest_sharded;

fn zipf_pair(
    domain: Domain,
    z: f64,
    shift: u64,
    n: usize,
    seed: u64,
) -> (Vec<Update>, Vec<Update>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let uf = ZipfGenerator::new(domain, z, 0).generate(&mut rng, n);
    let ug = ZipfGenerator::new(domain, z, shift).generate(&mut rng, n);
    let f = FrequencyVector::from_updates(domain, uf.iter().copied());
    let g = FrequencyVector::from_updates(domain, ug.iter().copied());
    let j = f.join(&g) as f64;
    (uf, ug, j)
}

#[test]
fn engine_answers_count_across_skews() {
    let domain = Domain::with_log2(12);
    for (z, shift, tol) in [(0.6, 20, 0.25), (1.0, 20, 0.2), (1.4, 20, 0.2)] {
        let (uf, ug, actual) = zipf_pair(domain, z, shift, 50_000, 42);
        let schema = SkimmedSchema::scanning(domain, 7, 256, 7);
        let mut engine = JoinQueryEngine::new(schema, Default::default());
        for u in &uf {
            engine.process(Side::Left, Op::Insert, Record::new(u.value));
        }
        for u in &ug {
            engine.process(Side::Right, Op::Insert, Record::new(u.value));
        }
        let ans = engine.answer(Aggregate::Count);
        let err = ratio_error(ans.value, actual);
        assert!(
            err < tol,
            "z={z}: err={err} est={} actual={actual}",
            ans.value
        );
    }
}

#[test]
fn dyadic_and_scan_strategies_agree_in_accuracy() {
    let domain = Domain::with_log2(12);
    let (uf, ug, actual) = zipf_pair(domain, 1.2, 50, 60_000, 5);
    let cfg = EstimatorConfig::default();
    let mut errs = Vec::new();
    for schema in [
        SkimmedSchema::scanning(domain, 7, 256, 3),
        SkimmedSchema::dyadic(domain, 7, 256, 3),
    ] {
        let mut sf = SkimmedSketch::new(schema.clone());
        let mut sg = SkimmedSketch::new(schema);
        for &u in &uf {
            sf.update(u);
        }
        for &u in &ug {
            sg.update(u);
        }
        let est = skimmed_sketch::estimate_join(&sf, &sg, &cfg);
        errs.push(ratio_error(est.estimate, actual));
    }
    for (i, e) in errs.iter().enumerate() {
        assert!(*e < 0.2, "strategy {i} err={e}");
    }
}

#[test]
fn census_workload_end_to_end() {
    let gen = CensusGenerator::new();
    let mut rng = StdRng::seed_from_u64(9);
    let recs = gen.generate(&mut rng, 40_000);
    let (fu, gu) = CensusGenerator::attribute_streams(&recs);
    let f = FrequencyVector::from_updates(gen.domain(), fu.iter().copied());
    let g = FrequencyVector::from_updates(gen.domain(), gu.iter().copied());
    let actual = f.join(&g) as f64;

    let schema = SkimmedSchema::scanning(gen.domain(), 7, 512, 2);
    let mut sf = SkimmedSketch::new(schema.clone());
    let mut sg = SkimmedSketch::new(schema);
    for u in fu {
        sf.update(u);
    }
    for u in gu {
        sg.update(u);
    }
    let est = skimmed_sketch::estimate_join(&sf, &sg, &Default::default());
    let err = ratio_error(est.estimate, actual);
    assert!(err < 0.1, "census err={err}");
}

#[test]
fn deletion_heavy_stream_stays_accurate() {
    let domain = Domain::with_log2(10);
    let mut rng = StdRng::seed_from_u64(11);
    let uni = UniformGenerator::new(domain);
    let inserts_f = ZipfGenerator::new(domain, 1.0, 0).generate(&mut rng, 30_000);
    let stream_f = DeleteMix::new(0.4).apply(&mut rng, inserts_f);
    let stream_g = uni.generate(&mut rng, 30_000);

    let f = FrequencyVector::from_updates(domain, stream_f.iter().copied());
    let g = FrequencyVector::from_updates(domain, stream_g.iter().copied());
    let actual = f.join(&g) as f64;

    let schema = SkimmedSchema::scanning(domain, 7, 256, 4);
    let mut sf = SkimmedSketch::new(schema.clone());
    let mut sg = SkimmedSketch::new(schema);
    for &u in &stream_f {
        sf.update(u);
    }
    for &u in &stream_g {
        sg.update(u);
    }
    let est = skimmed_sketch::estimate_join(&sf, &sg, &Default::default());
    let err = ratio_error(est.estimate, actual);
    assert!(err < 0.3, "err={err} est={} actual={actual}", est.estimate);
}

#[test]
fn sharded_ingest_feeds_estimation_identically() {
    let domain = Domain::with_log2(12);
    let (uf, ug, actual) = zipf_pair(domain, 1.1, 30, 40_000, 13);
    let schema = SkimmedSchema::scanning(domain, 5, 256, 8);
    let sf = ingest_sharded(&schema, &uf, 4);
    let sg = ingest_sharded(&schema, &ug, 4);
    let est = skimmed_sketch::estimate_join(&sf, &sg, &Default::default());
    let err = ratio_error(est.estimate, actual);
    assert!(err < 0.2, "err={err}");
}

#[test]
fn self_join_matches_second_moment() {
    let domain = Domain::with_log2(12);
    let mut rng = StdRng::seed_from_u64(17);
    let updates = ZipfGenerator::new(domain, 1.3, 0).generate(&mut rng, 50_000);
    let fv = FrequencyVector::from_updates(domain, updates.iter().copied());
    let schema = SkimmedSchema::scanning(domain, 7, 256, 6);
    let mut sk = SkimmedSketch::new(schema);
    for &u in &updates {
        sk.update(u);
    }
    let est = skimmed_sketch::estimate_self_join(&sk, &Default::default());
    let err = ratio_error(est, fv.self_join() as f64);
    assert!(err < 0.1, "err={err}");
}
