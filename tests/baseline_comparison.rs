//! The paper's headline claim, as an integration test: at equal space, the
//! skimmed-sketch estimator is substantially more accurate than basic AGMS
//! sketching on skewed joins, and the gap widens with skew.

use skimmed_sketch::EstimatorConfig;
use ss_bench::{compare_at_space, JoinWorkload};
use stream_model::Domain;

#[test]
fn skimmed_beats_basic_at_moderate_skew() {
    let w = JoinWorkload::zipf(Domain::with_log2(12), 1.0, 50, 80_000, 1);
    let cmp = compare_at_space(&w, 2048, &[11, 35], 3, 2, &EstimatorConfig::default());
    assert!(
        cmp.skimmed.mean * 2.0 < cmp.basic.mean,
        "expected ≥2x improvement: skim={} basic={}",
        cmp.skimmed.mean,
        cmp.basic.mean
    );
}

#[test]
fn improvement_grows_with_skew() {
    let cfg = EstimatorConfig::default();
    let mut improvements = Vec::new();
    for z in [0.8f64, 1.2, 1.6] {
        let w = JoinWorkload::zipf(Domain::with_log2(12), z, 30, 80_000, 3);
        let cmp = compare_at_space(&w, 2048, &[11], 3, 4, &cfg);
        let imp = cmp.basic.mean / cmp.skimmed.mean.max(1e-6);
        improvements.push(imp);
    }
    // Monotone in spirit: highest skew shows the biggest improvement.
    assert!(
        improvements[2] > improvements[0],
        "improvements={improvements:?}"
    );
}

#[test]
fn both_estimators_converge_with_space() {
    let w = JoinWorkload::zipf(Domain::with_log2(12), 1.0, 30, 80_000, 5);
    let cfg = EstimatorConfig::default();
    let small = compare_at_space(&w, 512, &[11], 3, 6, &cfg);
    let large = compare_at_space(&w, 4096, &[11], 3, 6, &cfg);
    assert!(
        large.skimmed.mean < small.skimmed.mean,
        "skimmed: {} !< {}",
        large.skimmed.mean,
        small.skimmed.mean
    );
    assert!(
        large.basic.mean < small.basic.mean + 1.0,
        "basic should not blow up with space: {} vs {}",
        large.basic.mean,
        small.basic.mean
    );
}
