//! End-to-end tests of the `ssketch` CLI binary: the full offline
//! workflow (generate → stats → sketch → join) through real files and a
//! real process, plus error-path behaviour.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ssketch(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ssketch"))
        .args(args)
        .output()
        .expect("failed to spawn ssketch")
}

fn tmpdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ssketch-cli-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn path(dir: &std::path::Path, name: &str) -> String {
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn full_workflow_generate_join_check() {
    let dir = tmpdir("workflow");
    let f = path(&dir, "f.trace");
    let g = path(&dir, "g.trace");

    let out = ssketch(&[
        "generate",
        "--kind",
        "zipf",
        "--z",
        "1.2",
        "--shift",
        "30",
        "--n",
        "30000",
        "--domain-log2",
        "12",
        "--seed",
        "1",
        "--out",
        &f,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ssketch(&[
        "generate",
        "--kind",
        "zipf",
        "--z",
        "1.2",
        "--n",
        "30000",
        "--domain-log2",
        "12",
        "--seed",
        "2",
        "--out",
        &g,
    ]);
    assert!(out.status.success());

    // stats sees the trace.
    let out = ssketch(&["stats", "--trace", &f]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("updates  : 30000"), "{text}");

    // join --check reports a small ratio error.
    let out = ssketch(&["join", "--left", &f, "--right", &g, "--check", "true"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let err_line = text
        .lines()
        .find(|l| l.contains("ratio error"))
        .expect("ratio error line");
    let err: f64 = err_line.split(':').nth(1).unwrap().trim().parse().unwrap();
    assert!(err < 0.3, "cli join error too large: {err}\n{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sketch_files_round_trip_through_join_sketches() {
    let dir = tmpdir("sketchfiles");
    let f = path(&dir, "f.trace");
    let g = path(&dir, "g.trace");
    let fs = path(&dir, "f.sketch");
    let gs = path(&dir, "g.sketch");
    for (p, seed) in [(&f, "3"), (&g, "4")] {
        let out = ssketch(&[
            "generate",
            "--n",
            "20000",
            "--domain-log2",
            "10",
            "--seed",
            seed,
            "--out",
            p,
        ]);
        assert!(out.status.success());
    }
    for (t, s) in [(&f, &fs), (&g, &gs)] {
        let out = ssketch(&["sketch", "--trace", t, "--out", s]);
        assert!(out.status.success());
    }
    let out = ssketch(&["join-sketches", "--left", &fs, "--right", &gs]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("estimate:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_sketch_seeds_are_rejected() {
    let dir = tmpdir("mismatch");
    let f = path(&dir, "f.trace");
    let fs = path(&dir, "a.sketch");
    let gs = path(&dir, "b.sketch");
    let out = ssketch(&["generate", "--n", "1000", "--domain-log2", "8", "--out", &f]);
    assert!(out.status.success());
    assert!(
        ssketch(&["sketch", "--trace", &f, "--seed", "1", "--out", &fs])
            .status
            .success()
    );
    assert!(
        ssketch(&["sketch", "--trace", &f, "--seed", "2", "--out", &gs])
            .status
            .success()
    );
    let out = ssketch(&["join-sketches", "--left", &fs, "--right", &gs]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("different shapes or seeds"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_flags_and_commands_fail_loudly() {
    let out = ssketch(&["join", "--left", "x", "--rihgt", "y"]);
    assert!(!out.status.success());
    let out = ssketch(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    let out = ssketch(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn hh_reports_the_planted_head() {
    let dir = tmpdir("hh");
    let f = path(&dir, "f.trace");
    let out = ssketch(&[
        "generate",
        "--kind",
        "zipf",
        "--z",
        "1.5",
        "--n",
        "20000",
        "--domain-log2",
        "10",
        "--seed",
        "7",
        "--out",
        &f,
    ]);
    assert!(out.status.success());
    let out = ssketch(&["hh", "--trace", &f, "--top", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Zipf with shift 0: value 0 is the head.
    assert!(
        text.lines()
            .any(|l| l.contains("value") && l.split_whitespace().nth(1) == Some("0")),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn skimmed_sketch_files_estimate_joins() {
    let dir = tmpdir("skimfiles");
    let f = path(&dir, "f.trace");
    let g = path(&dir, "g.trace");
    for (p, seed) in [(&f, "11"), (&g, "12")] {
        assert!(ssketch(&[
            "generate",
            "--kind",
            "zipf",
            "--z",
            "1.3",
            "--n",
            "20000",
            "--domain-log2",
            "10",
            "--seed",
            seed,
            "--out",
            p,
        ])
        .status
        .success());
    }
    let fs = path(&dir, "f.skim");
    let gs = path(&dir, "g.skim");
    for (t, s) in [(&f, &fs), (&g, &gs)] {
        let out = ssketch(&["skim-sketch", "--trace", t, "--dyadic", "true", "--out", s]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = ssketch(&["join-skimmed", "--left", &fs, "--right", &gs]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("estimate"), "{text}");
    // Cross-check the file-based estimate against the exact answer.
    let exact_out = ssketch(&["exact", "--left", &f, "--right", &g]);
    let exact_text = String::from_utf8_lossy(&exact_out.stdout);
    let exact: f64 = exact_text
        .lines()
        .next()
        .unwrap()
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let est: f64 = text
        .lines()
        .next()
        .unwrap()
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let ratio = (est.max(exact)) / (est.min(exact).max(1.0)) - 1.0;
    assert!(ratio < 0.3, "est={est} exact={exact}");
    std::fs::remove_dir_all(&dir).ok();
}
