//! Boundary-condition tests across the workspace: degenerate shapes,
//! extreme values, empty streams, and misuse that must fail loudly.

use skimmed_sketches::prelude::*;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, WorkloadStats};
use stream_sketches::{AgmsSchema, AgmsSketch, HashSketch, HashSketchSchema, LinearSynopsis};

#[test]
fn single_value_domain_works_end_to_end() {
    let d = Domain::with_log2(0); // one value
    assert_eq!(d.size(), 1);
    let schema = SkimmedSchema::scanning(d, 3, 4, 1);
    let mut f = SkimmedSketch::new(schema.clone());
    let mut g = SkimmedSketch::new(schema);
    for _ in 0..100 {
        f.update(Update::insert(0));
    }
    for _ in 0..50 {
        g.update(Update::insert(0));
    }
    let est = skimmed_sketch::estimate_join(&f, &g, &Default::default());
    // Join = 100 × 50 = 5000, and a single-value domain is estimated
    // exactly: the dense head is extracted on both sides.
    assert!(
        (est.estimate - 5000.0).abs() < 500.0,
        "est={}",
        est.estimate
    );
}

#[test]
fn single_bucket_single_table_sketch_is_degenerate_but_sound() {
    let schema = HashSketchSchema::new(1, 1, 2);
    let mut sk = HashSketch::new(schema);
    sk.add_weighted(3, 10);
    sk.add_weighted(9, -4);
    // Everything lands in the one counter; point estimates are coarse but
    // defined, and linear ops still hold.
    let mut neg = sk.clone();
    neg.negate();
    sk.merge_from(&neg);
    assert_eq!(sk.counters(), &[0]);
}

#[test]
fn extreme_weights_do_not_overflow_counters() {
    let schema = HashSketchSchema::new(3, 8, 3);
    let mut sk = HashSketch::new(schema);
    let big = 1i64 << 40;
    sk.add_weighted(1, big);
    sk.add_weighted(1, -big);
    assert!(sk.counters().iter().all(|&c| c == 0));
    sk.add_weighted(2, big);
    assert_eq!(sk.point_estimate(2), big);
}

#[test]
fn agms_single_cell_schema() {
    let schema = AgmsSchema::new(1, 1, 4);
    let mut f = AgmsSketch::new(schema.clone());
    let mut g = AgmsSketch::new(schema);
    f.add_weighted(5, 7);
    g.add_weighted(5, 3);
    // One atomic sketch: X_F·X_G = (7ξ)(3ξ) = 21 exactly.
    assert_eq!(f.estimate_join(&g), 21.0);
}

#[test]
fn estimating_empty_against_nonempty_is_zero_mean() {
    let d = Domain::with_log2(10);
    let schema = SkimmedSchema::scanning(d, 5, 64, 5);
    let f = SkimmedSketch::new(schema.clone());
    let mut g = SkimmedSketch::new(schema);
    for v in 0..1000 {
        g.update(Update::insert(v % 1024));
    }
    let est = skimmed_sketch::estimate_join(&f, &g, &Default::default());
    assert_eq!(est.estimate, 0.0, "empty sketch joins to exactly zero");
}

#[test]
fn values_at_domain_edges() {
    let d = Domain::with_log2(16);
    let schema = SkimmedSchema::dyadic(d, 5, 128, 6);
    let mut sk = SkimmedSketch::new(schema);
    sk.add_weighted(0, 500);
    sk.add_weighted(d.size() - 1, 700);
    let dense = sk.skim(100, 1 << 16);
    assert_eq!(dense.get(0), 500);
    assert_eq!(dense.get(d.size() - 1), 700);
}

#[test]
fn workload_stats_handles_negative_frequencies() {
    let d = Domain::with_log2(4);
    let mut fv = FrequencyVector::new(d);
    for v in 0..16 {
        fv.update(Update::with_measure(v, -((v as i64) + 1)));
    }
    let s = WorkloadStats::of(&fv);
    assert_eq!(s.distinct, 16);
    assert_eq!(s.l1, (1..=16).sum::<i64>());
    assert_eq!(s.max, 16);
}

#[test]
fn all_mass_on_one_value_is_fully_dense() {
    let d = Domain::with_log2(12);
    let schema = SkimmedSchema::scanning(d, 7, 256, 7);
    let mut f = SkimmedSketch::new(schema.clone());
    let mut g = SkimmedSketch::new(schema);
    for _ in 0..10_000 {
        f.update(Update::insert(42));
        g.update(Update::insert(42));
    }
    let est = skimmed_sketch::estimate_join(&f, &g, &Default::default());
    assert_eq!(est.dense_f, 1);
    assert_eq!(est.dense_g, 1);
    // Dense⋈dense carries everything, computed exactly.
    assert_eq!(est.estimate, est.dense_dense);
    assert!(
        (est.estimate - 1e8).abs() / 1e8 < 0.01,
        "est={}",
        est.estimate
    );
}

#[test]
fn uniform_stream_skims_nothing_but_still_estimates() {
    // No dense values at all: the estimator degrades gracefully to the
    // bucket-product path.
    let d = Domain::with_log2(12);
    let schema = SkimmedSchema::scanning(d, 7, 512, 8);
    let mut f = SkimmedSketch::new(schema.clone());
    let mut g = SkimmedSketch::new(schema);
    let mut fv = FrequencyVector::new(d);
    let mut gv = FrequencyVector::new(d);
    let zipf = ZipfGenerator::new(d, 0.0, 0); // uniform
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    use rand::SeedableRng;
    for _ in 0..40_000 {
        let a = zipf.sample(&mut rng);
        let b = zipf.sample(&mut rng);
        f.update(Update::insert(a));
        g.update(Update::insert(b));
        fv.update(Update::insert(a));
        gv.update(Update::insert(b));
    }
    let est = skimmed_sketch::estimate_join(&f, &g, &Default::default());
    assert_eq!(
        est.dense_f + est.dense_g,
        0,
        "uniform data has no dense values"
    );
    let actual = fv.join(&gv) as f64;
    let err = stream_model::ratio_error(est.estimate, actual);
    assert!(err < 0.2, "err={err}");
}

#[test]
fn domain_covering_extremes() {
    assert_eq!(Domain::covering(1).log2_size(), 0);
    assert_eq!(Domain::covering(u64::MAX).log2_size(), 63);
    assert_eq!(Domain::with_log2(63).size(), 1u64 << 63);
}
