//! Property-based equivalence of the batched and parallel ingestion paths.
//!
//! The contract of the whole ingestion pipeline is *bit-identity*: for any
//! update sequence — inserts, deletes, mixed weights — `update_batch` and
//! the sharded [`IngestPool`] / [`ingest_parallel`] must leave every
//! counter of every sketch type exactly as element-at-a-time `update`
//! would. Proptest drives all four sketch types through random mixed
//! workloads and random batch boundaries to pin that contract down.

use proptest::prelude::*;
use skimmed_sketch::{DyadicHashSketch, DyadicSchema};
use skimmed_sketches::prelude::*;
use stream_sketches::{
    AgmsSchema, AgmsSketch, CountMinSchema, CountMinSketch, HashSketch, HashSketchSchema,
};

const DOMAIN_LOG2: u32 = 8;

/// Mixed inserts and deletes with varied weights (never weight 0).
fn arb_updates(max_len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (0u64..(1 << DOMAIN_LOG2), -20i64..=20).prop_map(|(value, weight)| Update {
            value,
            weight: if weight == 0 { 1 } else { weight },
        }),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash sketch: `update_batch` ≡ per-element `update`, any batch split.
    #[test]
    fn hash_sketch_batch_matches_scalar(us in arb_updates(600), split in 1usize..300) {
        let schema = HashSketchSchema::new(4, 32, 21);
        let mut scalar = HashSketch::new(schema.clone());
        let mut batched = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }

    /// Basic AGMS: `update_batch` ≡ per-element `update`.
    #[test]
    fn agms_batch_matches_scalar(us in arb_updates(400), split in 1usize..200) {
        let schema = AgmsSchema::new(3, 8, 23);
        let mut scalar = AgmsSketch::new(schema.clone());
        let mut batched = AgmsSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }

    /// Count-Min: `update_batch` ≡ per-element `update`.
    #[test]
    fn countmin_batch_matches_scalar(us in arb_updates(400), split in 1usize..200) {
        let schema = CountMinSchema::new(3, 16, 25);
        let mut scalar = CountMinSketch::new(schema.clone());
        let mut batched = CountMinSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }

    /// Dyadic hash sketch: `update_batch` ≡ per-element `update` at every
    /// dyadic level.
    #[test]
    fn dyadic_batch_matches_scalar(us in arb_updates(300), split in 1usize..150) {
        let schema = DyadicSchema::new(Domain::with_log2(DOMAIN_LOG2), 3, 16, 27);
        let mut scalar = DyadicHashSketch::new(schema.clone());
        let mut batched = DyadicHashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.level_counters(), batched.level_counters());
    }

    /// The worker pool: for any updates, chunking, and worker count the
    /// merged sketch is bit-identical to sequential ingest.
    #[test]
    fn pool_matches_scalar(us in arb_updates(600), split in 1usize..200, threads in 1usize..5) {
        let schema = HashSketchSchema::new(4, 32, 29);
        let pool = IngestPool::new(threads, || HashSketch::new(schema.clone()));
        for chunk in us.chunks(split) { pool.dispatch(chunk.to_vec()); }
        let parallel = pool.finish().expect("no worker panicked");
        let mut scalar = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        prop_assert_eq!(parallel.counters(), scalar.counters());
    }

    /// One-shot `ingest_parallel` over borrowed updates: same contract.
    #[test]
    fn ingest_parallel_matches_scalar(us in arb_updates(600), chunk in 1usize..200, threads in 1usize..5) {
        let schema = HashSketchSchema::new(4, 32, 31);
        let parallel = ingest_parallel(&us, threads, chunk, || HashSketch::new(schema.clone()));
        let mut scalar = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        prop_assert_eq!(parallel.counters(), scalar.counters());
    }
}

/// Batch lengths that exercise the blocked kernels' chunking edges: empty
/// batches, lengths that don't fill a vector lane (`len % 8 ≠ 0`), lengths
/// straddling the 256-key L1 block boundary, and arbitrary non-power-of-two
/// sizes in between.
fn arb_awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),                                 // empty batch: kernels must be no-ops
        1usize..8,                                    // less than one vector lane
        249usize..=263,                               // straddling the 256-key block boundary
        505usize..=519,                               // straddling two blocks
        prop::sample::select(vec![3usize, 100, 777]), // assorted non-pow2
    ]
}

fn updates_of_len(len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (0u64..(1 << DOMAIN_LOG2), -20i64..=20).prop_map(|(value, weight)| Update {
            value,
            weight: if weight == 0 { 1 } else { weight },
        }),
        len..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both hash-sketch batch kernels — the blocked limb-lane kernel and
    /// the lazy-`u128` kernel — are bit-identical to per-element `update`
    /// at awkward batch lengths, on power-of-two and non-power-of-two
    /// bucket counts (the two scatter paths).
    #[test]
    fn hash_sketch_kernels_match_at_awkward_lengths(
        us in arb_awkward_len().prop_flat_map(updates_of_len),
        pow2 in any::<bool>(),
    ) {
        let buckets = if pow2 { 32 } else { 37 };
        let schema = HashSketchSchema::new(4, buckets, 33);
        let mut scalar = HashSketch::new(schema.clone());
        let mut limb = HashSketch::new(schema.clone());
        let mut lazy = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        limb.add_batch_limb_lanes(&us);
        lazy.add_batch_lazy128(&us);
        prop_assert_eq!(scalar.counters(), limb.counters());
        prop_assert_eq!(scalar.counters(), lazy.counters());
    }

    /// Same contract for both Count-Min batch kernels.
    #[test]
    fn countmin_kernels_match_at_awkward_lengths(
        us in arb_awkward_len().prop_flat_map(updates_of_len),
        pow2 in any::<bool>(),
    ) {
        let width = if pow2 { 16 } else { 19 };
        let schema = CountMinSchema::new(3, width, 35);
        let mut scalar = CountMinSketch::new(schema.clone());
        let mut limb = CountMinSketch::new(schema.clone());
        let mut lazy = CountMinSketch::new(schema);
        for &u in &us { scalar.update(u); }
        limb.add_batch_limb_lanes(&us);
        lazy.add_batch_lazy128(&us);
        prop_assert_eq!(scalar.counters(), limb.counters());
        prop_assert_eq!(scalar.counters(), lazy.counters());
    }
}
