//! Property-based equivalence of the batched and parallel ingestion paths.
//!
//! The contract of the whole ingestion pipeline is *bit-identity*: for any
//! update sequence — inserts, deletes, mixed weights — `update_batch` and
//! the sharded [`IngestPool`] / [`ingest_parallel`] must leave every
//! counter of every sketch type exactly as element-at-a-time `update`
//! would. Proptest drives all four sketch types through random mixed
//! workloads and random batch boundaries to pin that contract down.

use proptest::prelude::*;
use skimmed_sketch::{DyadicHashSketch, DyadicSchema};
use skimmed_sketches::prelude::*;
use stream_sketches::{
    AgmsSchema, AgmsSketch, CountMinSchema, CountMinSketch, HashSketch, HashSketchSchema,
};

const DOMAIN_LOG2: u32 = 8;

/// Mixed inserts and deletes with varied weights (never weight 0).
fn arb_updates(max_len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (0u64..(1 << DOMAIN_LOG2), -20i64..=20).prop_map(|(value, weight)| Update {
            value,
            weight: if weight == 0 { 1 } else { weight },
        }),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash sketch: `update_batch` ≡ per-element `update`, any batch split.
    #[test]
    fn hash_sketch_batch_matches_scalar(us in arb_updates(600), split in 1usize..300) {
        let schema = HashSketchSchema::new(4, 32, 21);
        let mut scalar = HashSketch::new(schema.clone());
        let mut batched = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }

    /// Basic AGMS: `update_batch` ≡ per-element `update`.
    #[test]
    fn agms_batch_matches_scalar(us in arb_updates(400), split in 1usize..200) {
        let schema = AgmsSchema::new(3, 8, 23);
        let mut scalar = AgmsSketch::new(schema.clone());
        let mut batched = AgmsSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }

    /// Count-Min: `update_batch` ≡ per-element `update`.
    #[test]
    fn countmin_batch_matches_scalar(us in arb_updates(400), split in 1usize..200) {
        let schema = CountMinSchema::new(3, 16, 25);
        let mut scalar = CountMinSketch::new(schema.clone());
        let mut batched = CountMinSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.counters(), batched.counters());
    }

    /// Dyadic hash sketch: `update_batch` ≡ per-element `update` at every
    /// dyadic level.
    #[test]
    fn dyadic_batch_matches_scalar(us in arb_updates(300), split in 1usize..150) {
        let schema = DyadicSchema::new(Domain::with_log2(DOMAIN_LOG2), 3, 16, 27);
        let mut scalar = DyadicHashSketch::new(schema.clone());
        let mut batched = DyadicHashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        for chunk in us.chunks(split) { batched.update_batch(chunk); }
        prop_assert_eq!(scalar.level_counters(), batched.level_counters());
    }

    /// The worker pool: for any updates, chunking, and worker count the
    /// merged sketch is bit-identical to sequential ingest.
    #[test]
    fn pool_matches_scalar(us in arb_updates(600), split in 1usize..200, threads in 1usize..5) {
        let schema = HashSketchSchema::new(4, 32, 29);
        let pool = IngestPool::new(threads, || HashSketch::new(schema.clone()));
        for chunk in us.chunks(split) { pool.dispatch(chunk.to_vec()); }
        let parallel = pool.finish().expect("no worker panicked");
        let mut scalar = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        prop_assert_eq!(parallel.counters(), scalar.counters());
    }

    /// One-shot `ingest_parallel` over borrowed updates: same contract.
    #[test]
    fn ingest_parallel_matches_scalar(us in arb_updates(600), chunk in 1usize..200, threads in 1usize..5) {
        let schema = HashSketchSchema::new(4, 32, 31);
        let parallel = ingest_parallel(&us, threads, chunk, || HashSketch::new(schema.clone()));
        let mut scalar = HashSketch::new(schema);
        for &u in &us { scalar.update(u); }
        prop_assert_eq!(parallel.counters(), scalar.counters());
    }
}
