//! Integration test replaying Example 1 (§3) of the paper: the worked
//! demonstration that skimming dense frequencies shrinks the join-size
//! error budget severalfold at equal space.

use skimmed_sketches::prelude::*;
use skimmed_sketches::skim::analysis::{agms_additive_error, SkimDecomposition};
use stream_model::metrics::ratio_error;

/// The paper's Example-1 shape: per stream, two dense frequencies of 50·s
/// and ~50 unit frequencies of s; heads on disjoint values, tails
/// overlapping on 40 values.
fn example_streams(s: i64) -> (FrequencyVector, FrequencyVector) {
    let d = Domain::with_log2(10);
    let mut fc = vec![0i64; 1024];
    let mut gc = vec![0i64; 1024];
    fc[0] = 50 * s;
    fc[1] = 50 * s;
    gc[1022] = 50 * s;
    gc[1023] = 50 * s;
    fc[2..52].fill(s);
    gc[12..62].fill(s);
    (
        FrequencyVector::from_counts(d, fc),
        FrequencyVector::from_counts(d, gc),
    )
}

#[test]
fn decomposition_is_exact_partition() {
    let (f, g) = example_streams(1);
    let join = f.join(&g);
    assert_eq!(join, 40); // 40 overlapping unit values
    for t in [1, 5, 10, 49, 50, 51, 1000] {
        let dec = SkimDecomposition::compute(&f, &g, t);
        assert_eq!(dec.total(), join, "t={t}");
    }
}

#[test]
fn skimming_cuts_the_error_bound_more_than_fourfold() {
    let (f, g) = example_streams(1);
    let s2 = 64;
    let basic = agms_additive_error(f.self_join() as f64, g.self_join() as f64, s2);
    let dec = SkimDecomposition::compute(&f, &g, 10);
    let skim = dec.skimmed_additive_error(s2);
    assert!(
        basic / skim > 4.0,
        "improvement {:.2} below the paper's >4x",
        basic / skim
    );
}

#[test]
fn empirical_estimators_respect_the_same_ordering() {
    // Scale the example up so the empirical estimators have real mass, and
    // check the skimmed estimate is (much) closer than basic AGMS with the
    // same number of words.
    let (f, g) = example_streams(50);
    let join = f.join(&g) as f64;
    let s2 = 512;
    let mut basic_errs = Vec::new();
    let mut skim_errs = Vec::new();
    for seed in 0..5u64 {
        let schema = stream_sketches::AgmsSchema::new(7, s2, seed);
        let bf = stream_sketches::AgmsSketch::from_frequencies(schema.clone(), f.nonzero());
        let bg = stream_sketches::AgmsSketch::from_frequencies(schema, g.nonzero());
        basic_errs.push(ratio_error(bf.estimate_join(&bg), join));

        let sschema = SkimmedSchema::scanning(f.domain(), 7, s2, seed);
        let sf = SkimmedSketch::from_frequencies(sschema.clone(), f.nonzero());
        let sg = SkimmedSketch::from_frequencies(sschema, g.nonzero());
        let cfg = EstimatorConfig {
            policy: ThresholdPolicy::Fixed(500),
            ..Default::default()
        };
        skim_errs.push(ratio_error(
            skimmed_sketch::estimate_join(&sf, &sg, &cfg).estimate,
            join,
        ));
    }
    let basic_mean: f64 = basic_errs.iter().sum::<f64>() / basic_errs.len() as f64;
    let skim_mean: f64 = skim_errs.iter().sum::<f64>() / skim_errs.len() as f64;
    assert!(
        skim_mean < basic_mean,
        "skim {skim_mean} should beat basic {basic_mean}"
    );
    // The example's join (40 overlapping units × s²) is small relative to
    // its dense mass, so even the skimmed estimator is noisy here — the
    // claim under test is the *ordering*, with a loose absolute cap.
    assert!(skim_mean < 1.5, "skim error too large: {skim_mean}");
}
