//! Property-based tests (proptest) for the core invariants:
//! linearity, delete-cancellation, skim residual guarantees, decomposition
//! exactness, codec round-trips, and metric axioms.

use proptest::prelude::*;
use skimmed_sketch::analysis::SkimDecomposition;
use skimmed_sketch::skim::skim_dense_scan;
use skimmed_sketches::prelude::*;
use stream_model::metrics::{ratio_error, ERROR_SANITY_BOUND};
use stream_model::trace;
use stream_sketches::{AgmsSchema, AgmsSketch, HashSketch, HashSketchSchema, LinearSynopsis};

const DOMAIN_LOG2: u32 = 8;

fn arb_updates(max_len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (0u64..(1 << DOMAIN_LOG2), -20i64..=20).prop_map(|(value, weight)| Update {
            value,
            weight: if weight == 0 { 1 } else { weight },
        }),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sketch(A) + sketch(B) == sketch(A ++ B) for hash sketches.
    #[test]
    fn hash_sketch_linearity(a in arb_updates(200), b in arb_updates(200)) {
        let schema = HashSketchSchema::new(3, 16, 99);
        let mut sa = HashSketch::new(schema.clone());
        let mut sb = HashSketch::new(schema.clone());
        let mut sab = HashSketch::new(schema);
        for &u in &a { sa.update(u); sab.update(u); }
        for &u in &b { sb.update(u); sab.update(u); }
        sa.merge_from(&sb);
        prop_assert_eq!(sa.counters(), sab.counters());
    }

    /// Inserting then deleting every update leaves an all-zero sketch.
    #[test]
    fn deletes_cancel_exactly(a in arb_updates(200)) {
        let schema = HashSketchSchema::new(3, 16, 7);
        let mut sk = HashSketch::new(schema);
        for &u in &a { sk.update(u); }
        for &u in &a { sk.update(u.inverse()); }
        prop_assert!(sk.counters().iter().all(|&c| c == 0));
    }

    /// AGMS linearity plus subtract-inverse.
    #[test]
    fn agms_subtract_is_inverse_of_merge(a in arb_updates(100), b in arb_updates(100)) {
        let schema = AgmsSchema::new(2, 8, 3);
        let mut sa = AgmsSketch::new(schema.clone());
        let mut sb = AgmsSketch::new(schema);
        for &u in &a { sa.update(u); }
        for &u in &b { sb.update(u); }
        let before = sa.counters().to_vec();
        sa.merge_from(&sb);
        sa.subtract_from(&sb);
        prop_assert_eq!(sa.counters(), &before[..]);
    }

    /// The skimmed sketch equals a fresh sketch of the residual vector, and
    /// every extracted estimate exceeds the threshold in absolute value.
    #[test]
    fn skim_extracts_above_threshold_and_leaves_residual(
        a in arb_updates(300),
        threshold in 1i64..100,
    ) {
        let d = Domain::with_log2(DOMAIN_LOG2);
        let schema = HashSketchSchema::new(5, 64, 11);
        let mut sk = HashSketch::new(schema.clone());
        let mut fv = FrequencyVector::new(d);
        for &u in &a { sk.update(u); fv.update(u); }
        let dense = skim_dense_scan(&mut sk, d, threshold);
        if let Some(min) = dense.min_abs() {
            prop_assert!(min >= threshold);
        }
        let mut residual = fv.clone();
        for (v, est) in dense.iter() {
            *residual.get_mut(v) -= est;
        }
        let expect = HashSketch::from_frequencies(schema, residual.nonzero());
        prop_assert_eq!(sk.counters(), expect.counters());
    }

    /// The four sub-joins always sum to the exact join, for any threshold.
    #[test]
    fn decomposition_partitions_the_join(
        a in arb_updates(150),
        b in arb_updates(150),
        threshold in 1i64..50,
    ) {
        let d = Domain::with_log2(DOMAIN_LOG2);
        let f = FrequencyVector::from_updates(d, a);
        let g = FrequencyVector::from_updates(d, b);
        let dec = SkimDecomposition::compute(&f, &g, threshold);
        prop_assert_eq!(dec.total(), f.join(&g));
    }

    /// Trace codec round-trips arbitrary update streams.
    #[test]
    fn trace_round_trip(a in arb_updates(300)) {
        let d = Domain::with_log2(DOMAIN_LOG2);
        let buf = trace::encode(d, &a);
        let (d2, back) = trace::decode(buf).unwrap();
        prop_assert_eq!(d2, d);
        prop_assert_eq!(back, a);
    }

    /// Ratio-error axioms: symmetric, non-negative, bounded by the sanity
    /// constant, zero iff equal (for positive values).
    #[test]
    fn ratio_error_axioms(est in 0.1f64..1e9, actual in 0.1f64..1e9) {
        let e = ratio_error(est, actual);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= ERROR_SANITY_BOUND);
        let sym = ratio_error(actual, est);
        prop_assert!((e - sym).abs() < 1e-9);
        if (est - actual).abs() < f64::EPSILON {
            prop_assert_eq!(e, 0.0);
        }
    }

    /// Estimation expectation: the sparse⋈sparse bucket-product estimator
    /// is exactly the inner product when every value maps alone (injective
    /// hashing regime — buckets >> domain).
    #[test]
    fn bucket_product_is_exact_when_collision_free(
        a in prop::collection::vec(0i64..10, 8),
        b in prop::collection::vec(0i64..10, 8),
    ) {
        // Domain of 8 values, 4096 buckets: collisions are possible but
        // rare; retry-free determinism comes from the fixed seed, under
        // which the 8 values land in distinct buckets (verified below).
        let schema = HashSketchSchema::new(1, 4096, 1234);
        let mut distinct = std::collections::HashSet::new();
        for v in 0..8u64 {
            distinct.insert(schema.bucket(0, v));
        }
        prop_assume!(distinct.len() == 8);
        let d = Domain::with_log2(3);
        let f = FrequencyVector::from_counts(d, a);
        let g = FrequencyVector::from_counts(d, b);
        let sf = HashSketch::from_frequencies(schema.clone(), f.nonzero());
        let sg = HashSketch::from_frequencies(schema, g.nonzero());
        prop_assert_eq!(sf.join_estimate(&sg) as i64, f.join(&g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The trace decoder must never panic on arbitrary bytes — it returns
    /// a structured error instead.
    #[test]
    fn trace_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = trace::decode(bytes::Bytes::from(bytes));
    }

    /// Same for the sketch codec.
    #[test]
    fn sketch_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = stream_sketches::codec::decode_hash(bytes::Bytes::from(bytes.clone()));
        let _ = stream_sketches::codec::decode_agms(bytes::Bytes::from(bytes.clone()));
        let _ = skimmed_sketch::decode_skimmed(bytes::Bytes::from(bytes));
    }

    /// Skimmed-sketch codec round-trips arbitrary update batches exactly.
    #[test]
    fn skimmed_codec_round_trip(a in arb_updates(200), dyadic in any::<bool>()) {
        let d = Domain::with_log2(DOMAIN_LOG2);
        let schema = if dyadic {
            skimmed_sketch::SkimmedSchema::dyadic(d, 3, 16, 5)
        } else {
            skimmed_sketch::SkimmedSchema::scanning(d, 3, 16, 5)
        };
        let mut sk = skimmed_sketch::SkimmedSketch::new(schema);
        for &u in &a {
            sk.update(u);
        }
        let back = skimmed_sketch::decode_skimmed(skimmed_sketch::encode_skimmed(&sk)).unwrap();
        prop_assert_eq!(back.level_counters(), sk.level_counters());
        prop_assert_eq!(back.l1_mass(), sk.l1_mass());
    }

    /// Windowed retraction invariant: after advancing past the window,
    /// the live sum never contains expired mass.
    #[test]
    fn windowed_mass_conservation(batches in prop::collection::vec(arb_updates(50), 1..8)) {
        let d = Domain::with_log2(DOMAIN_LOG2);
        let schema = skimmed_sketch::SkimmedSchema::scanning(d, 3, 16, 9);
        let window = 3usize;
        let mut w = skimmed_sketch::WindowedSkimmedSketch::new(schema.clone(), window);
        for batch in &batches {
            for &u in batch {
                w.update(u);
            }
            w.advance_epoch();
        }
        // Expected live = last (window-1) closed batches.
        let live_from = batches.len().saturating_sub(window - 1);
        let mut expect = skimmed_sketch::SkimmedSketch::new(schema);
        for batch in &batches[live_from..] {
            for &u in batch {
                expect.update(u);
            }
        }
        prop_assert_eq!(w.window_sketch().base().counters(), expect.base().counters());
        prop_assert_eq!(w.window_sketch().l1_mass(), expect.l1_mass());
    }
}
