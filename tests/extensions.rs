//! Cross-crate integration tests for the extension subsystems: windowed
//! estimation, confidence intervals, the planner, continuous queries,
//! partitioned baselines, the wire codec, and distinct counting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skimmed_sketch::planner::{plan, schema_for_plan, PlannerInput};
use skimmed_sketch::{
    estimate_join, estimate_join_with_confidence, estimate_windowed_join, EstimatorConfig,
    ExtractionStrategy, SkimmedSchema, SkimmedSketch, WindowedSkimmedSketch,
};
use std::sync::Arc;
use stream_model::gen::ZipfGenerator;
use stream_model::metrics::ratio_error;
use stream_model::{Domain, FrequencyVector, StreamSink, Update, WorkloadStats};
use stream_query::partitioned::{DomainPartition, PartitionedAgmsSketch, PartitionedSchema};
use stream_query::{Aggregate, ContinuousQuery, Op, Record, Side};
use stream_sketches::codec::{decode_hash, encode_hash};
use stream_sketches::{DistinctSketch, LinearSynopsis};

fn zipf_updates(d: Domain, z: f64, shift: u64, n: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    ZipfGenerator::new(d, z, shift).generate(&mut rng, n)
}

#[test]
fn planner_configuration_meets_its_error_target_in_practice() {
    let d = Domain::with_log2(12);
    let n = 60_000usize;
    let uf = zipf_updates(d, 1.1, 0, n, 1);
    let ug = zipf_updates(d, 1.1, 40, n, 2);
    let f = FrequencyVector::from_updates(d, uf.iter().copied());
    let g = FrequencyVector::from_updates(d, ug.iter().copied());
    let actual = f.join(&g) as f64;

    let p = plan(&PlannerInput {
        stream_len: n as u64,
        min_join_size: actual, // deployment-known lower bound
        target_error: 0.25,
        failure_probability: 0.05,
    });
    let schema = schema_for_plan(&p, d, 7, ExtractionStrategy::NaiveScan);
    let mut sf = SkimmedSketch::new(schema.clone());
    let mut sg = SkimmedSketch::new(schema);
    for &u in &uf {
        sf.update(u);
    }
    for &u in &ug {
        sg.update(u);
    }
    let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
    let err = ratio_error(est.estimate, actual);
    // The plan is worst-case-safe; real skewed data must beat the target.
    assert!(err < 0.25, "err={err} plan={p:?}");
}

#[test]
fn windowed_join_follows_a_moving_workload() {
    let d = Domain::with_log2(12);
    let schema = SkimmedSchema::scanning(d, 7, 256, 5);
    let mut wf = WindowedSkimmedSketch::new(schema.clone(), 3);
    let mut wg = WindowedSkimmedSketch::new(schema, 3);
    let cfg = EstimatorConfig::default();
    let mut rng = StdRng::seed_from_u64(6);

    // 6 epochs whose shift drifts; track the exact live-window join.
    let mut epoch_f: Vec<Vec<Update>> = Vec::new();
    let mut epoch_g: Vec<Vec<Update>> = Vec::new();
    for e in 0..6u64 {
        let uf = ZipfGenerator::new(d, 1.2, 0).generate(&mut rng, 15_000);
        let ug = ZipfGenerator::new(d, 1.2, 16 * e).generate(&mut rng, 15_000);
        for &u in &uf {
            wf.update(u);
        }
        for &u in &ug {
            wg.update(u);
        }
        epoch_f.push(uf);
        epoch_g.push(ug);
        wf.advance_epoch();
        wg.advance_epoch();

        // Exact join over the live epochs (last window-1 = 2 closed).
        let live = epoch_f.len().saturating_sub(2);
        let lf = FrequencyVector::from_updates(d, epoch_f[live..].iter().flatten().copied());
        let lg = FrequencyVector::from_updates(d, epoch_g[live..].iter().flatten().copied());
        let actual = lf.join(&lg) as f64;
        let est = estimate_windowed_join(&wf, &wg, &cfg);
        let err = ratio_error(est.estimate, actual);
        assert!(err < 0.3, "epoch {e}: err={err}");
    }
}

#[test]
fn confidence_interval_covers_on_fresh_workloads() {
    let d = Domain::with_log2(12);
    let mut covered = 0;
    for seed in 0..6u64 {
        let schema = SkimmedSchema::scanning(d, 9, 256, 100 + seed);
        let uf = zipf_updates(d, 1.0, 0, 40_000, seed * 2);
        let ug = zipf_updates(d, 1.0, 50, 40_000, seed * 2 + 1);
        let mut sf = SkimmedSketch::new(schema.clone());
        let mut sg = SkimmedSketch::new(schema);
        for &u in &uf {
            sf.update(u);
        }
        for &u in &ug {
            sg.update(u);
        }
        let f = FrequencyVector::from_updates(d, uf.iter().copied());
        let g = FrequencyVector::from_updates(d, ug.iter().copied());
        let ce = estimate_join_with_confidence(&sf, &sg, &EstimatorConfig::default(), 0);
        if ce.contains(f.join(&g) as f64) {
            covered += 1;
        }
    }
    assert!(covered >= 5, "covered={covered}/6");
}

#[test]
fn continuous_query_tracks_exact_series() {
    let d = Domain::with_log2(10);
    let schema = SkimmedSchema::scanning(d, 7, 256, 9);
    let mut q = ContinuousQuery::new(schema, EstimatorConfig::default(), Aggregate::Count, 20_000);
    let mut rng = StdRng::seed_from_u64(10);
    let zf = ZipfGenerator::new(d, 1.0, 0);
    let zg = ZipfGenerator::new(d, 1.0, 8);
    let mut f = FrequencyVector::new(d);
    let mut g = FrequencyVector::new(d);
    for i in 0..60_000u64 {
        let (a, b) = (zf.sample(&mut rng), zg.sample(&mut rng));
        q.process(Side::Left, Op::Insert, Record::new(a));
        f.update(Update::insert(a));
        let point = q.process(Side::Right, Op::Insert, Record::new(b));
        g.update(Update::insert(b));
        if let Some(p) = point {
            let actual = f.join(&g) as f64;
            let err = ratio_error(p.estimate, actual);
            assert!(err < 0.3, "at {i}: err={err}");
        }
    }
    assert_eq!(q.series().len(), 6);
}

#[test]
fn skimmed_matches_oracle_partitioning_without_prior_knowledge() {
    // The paper's §1 argument against [5], measured.
    let d = Domain::with_log2(11);
    let uf = zipf_updates(d, 1.4, 0, 60_000, 21);
    let ug = zipf_updates(d, 1.4, 12, 60_000, 22);
    let f = FrequencyVector::from_updates(d, uf.iter().copied());
    let g = FrequencyVector::from_updates(d, ug.iter().copied());
    let actual = f.join(&g) as f64;
    let (rows, cols) = (7usize, 256usize);

    let mut oracle_errs = Vec::new();
    let mut skim_errs = Vec::new();
    for seed in 0..4u64 {
        let part = Arc::new(DomainPartition::oracle(&f, &g, 16));
        let pschema = PartitionedSchema::new(part, rows, cols, seed);
        let mut pf = PartitionedAgmsSketch::new(&pschema);
        let mut pg = PartitionedAgmsSketch::new(&pschema);
        for (v, c) in f.nonzero() {
            pf.add_weighted(v, c);
        }
        for (v, c) in g.nonzero() {
            pg.add_weighted(v, c);
        }
        oracle_errs.push(ratio_error(pf.estimate_join(&pg), actual));

        let schema = SkimmedSchema::scanning(d, rows, cols, seed);
        let sf = SkimmedSketch::from_frequencies(schema.clone(), f.nonzero());
        let sg = SkimmedSketch::from_frequencies(schema, g.nonzero());
        skim_errs.push(ratio_error(
            estimate_join(&sf, &sg, &EstimatorConfig::default()).estimate,
            actual,
        ));
    }
    let oracle: f64 = oracle_errs.iter().sum::<f64>() / 4.0;
    let skim: f64 = skim_errs.iter().sum::<f64>() / 4.0;
    // Skimmed must land in the oracle's accuracy class (within 3x), with
    // zero prior knowledge.
    assert!(skim < oracle * 3.0 + 0.02, "skim={skim} oracle={oracle}");
    assert!(skim < 0.1, "skim={skim}");
}

#[test]
fn codec_ships_sketches_across_a_simulated_wire() {
    let d = Domain::with_log2(10);
    let schema = stream_sketches::HashSketchSchema::new(5, 128, 31);
    let mut site = stream_sketches::HashSketch::new(schema.clone());
    for u in zipf_updates(d, 1.0, 0, 10_000, 33) {
        site.update(u);
    }
    let wire = encode_hash(&site);
    let mut coordinator = stream_sketches::HashSketch::new(schema);
    coordinator.merge_from(&decode_hash(wire).unwrap());
    assert_eq!(coordinator.counters(), site.counters());
}

#[test]
fn distinct_sketch_complements_workload_stats() {
    let d = Domain::with_log2(14);
    let updates = zipf_updates(d, 1.0, 0, 80_000, 41);
    let fv = FrequencyVector::from_updates(d, updates.iter().copied());
    let stats = WorkloadStats::of(&fv);
    let mut dk = DistinctSketch::new(512, 43);
    for &u in &updates {
        dk.update(u);
    }
    let est = dk.estimate();
    let rel = (est - stats.distinct as f64).abs() / stats.distinct as f64;
    assert!(rel < 0.15, "est={est} actual={} rel={rel}", stats.distinct);
}

#[test]
fn dyadic_windowed_combination_works() {
    // Windowing over the dyadic strategy: extraction acceleration and
    // epoch expiry compose.
    let d = Domain::with_log2(12);
    let schema = SkimmedSchema::dyadic(d, 5, 256, 51);
    let mut wf = WindowedSkimmedSketch::new(schema.clone(), 2);
    let mut wg = WindowedSkimmedSketch::new(schema, 2);
    let mut rng = StdRng::seed_from_u64(52);
    let z = ZipfGenerator::new(d, 1.3, 0);
    for _ in 0..20_000 {
        wf.add_weighted(z.sample(&mut rng), 1);
        wg.add_weighted(z.sample(&mut rng), 1);
    }
    let est = estimate_windowed_join(&wf, &wg, &EstimatorConfig::default());
    assert!(est.estimate > 0.0);
    let _ = rng.gen::<u8>();
}

#[test]
fn star_join_composes_with_chain_join() {
    // The two multi-join shapes answer the same 3-relation query when the
    // center has two attributes: chain F1 ⋈a F2(a,b) ⋈b F3 is the star
    // with center F2 — the two estimators must agree with each other and
    // with the exact answer.
    use stream_query::star::{
        estimate_star_join, StarCenterSketch, StarEdgeSketch, StarJoinSchema,
    };
    use stream_query::{estimate_chain_join, ChainJoinSchema, ChainRelationSketch};

    let mut rng = StdRng::seed_from_u64(71);
    let dom = 24usize;
    let f1: Vec<i64> = (0..dom).map(|_| rng.gen_range(0..4)).collect();
    let f3: Vec<i64> = (0..dom).map(|_| rng.gen_range(0..4)).collect();
    let f2: Vec<Vec<i64>> = (0..dom)
        .map(|_| {
            (0..dom)
                .map(|_| i64::from(rng.gen_range(0u8..6) == 0))
                .collect()
        })
        .collect();
    let mut exact = 0i64;
    for (u, &a) in f1.iter().enumerate() {
        for (v, &c) in f3.iter().enumerate() {
            exact += a * f2[u][v] * c;
        }
    }
    assert!(exact > 0);

    // Chain estimator.
    let cschema = ChainJoinSchema::new(3, 9, 2048, 5);
    let mut c1 = ChainRelationSketch::new(cschema.clone(), 0);
    let mut c2 = ChainRelationSketch::new(cschema.clone(), 1);
    let mut c3 = ChainRelationSketch::new(cschema, 2);
    // Star estimator.
    let sschema = StarJoinSchema::new(2, 9, 2048, 6);
    let mut center = StarCenterSketch::new(sschema.clone());
    let mut e1 = StarEdgeSketch::new(sschema.clone(), 0);
    let mut e2 = StarEdgeSketch::new(sschema, 1);

    for (u, &w) in f1.iter().enumerate() {
        if w != 0 {
            c1.update_endpoint(u as u64, w);
            e1.update(u as u64, w);
        }
    }
    for (v, &w) in f3.iter().enumerate() {
        if w != 0 {
            c3.update_endpoint(v as u64, w);
            e2.update(v as u64, w);
        }
    }
    for (u, row) in f2.iter().enumerate() {
        for (v, &w) in row.iter().enumerate() {
            if w != 0 {
                c2.update_interior(u as u64, v as u64, w);
                center.update(&[u as u64, v as u64], w);
            }
        }
    }
    let chain = estimate_chain_join(&[&c1, &c2, &c3]);
    let star = estimate_star_join(&center, &[&e1, &e2]);
    for (name, est) in [("chain", chain), ("star", star)] {
        let rel = (est - exact as f64).abs() / exact as f64;
        assert!(rel < 0.5, "{name}: est={est} exact={exact}");
    }
}

#[test]
fn signed_frequencies_join_correctly() {
    // General update streams can leave *negative* frequencies (e.g.
    // retraction-heavy feeds); the join is then a signed inner product and
    // the linear estimator must track it, including the skimming of
    // strongly negative "dense" values.
    let d = Domain::with_log2(10);
    let schema = SkimmedSchema::scanning(d, 7, 256, 61);
    let mut sf = SkimmedSketch::new(schema.clone());
    let mut sg = SkimmedSketch::new(schema);
    let mut f = FrequencyVector::new(d);
    let mut g = FrequencyVector::new(d);
    let mut rng = StdRng::seed_from_u64(62);
    for _ in 0..20_000 {
        let v = rng.gen_range(0..1024u64);
        let w = if v < 100 { -2 } else { 1 }; // negative head region
        sf.add_weighted(v, w);
        f.update(Update::with_measure(v, w));
        let u = rng.gen_range(0..1024u64);
        sg.add_weighted(u, 1);
        g.update(Update::insert(u));
    }
    // Plant strong negative dense values.
    for v in [7u64, 13] {
        sf.add_weighted(v, -3000);
        *f.get_mut(v) += -3000;
        sg.add_weighted(v, 500);
        *g.get_mut(v) += 500;
    }
    let actual = f.join(&g) as f64;
    assert!(
        actual < 0.0,
        "workload should have a negative join: {actual}"
    );
    let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
    let rel = (est.estimate - actual).abs() / actual.abs();
    assert!(rel < 0.25, "est={} actual={actual}", est.estimate);
    assert!(est.dense_f >= 2, "negative dense values must be skimmed");
}
