//! Chain multi-join estimation — the extension the paper points to in
//! §1/§6 (following Dobra et al.): `COUNT(R1 ⋈_a R2 ⋈_b R3)`.
//!
//! Scenario: a three-hop provenance question over event streams.
//! `R1(user)` are logins, `R2(user, resource)` are accesses, `R3(resource)`
//! are alerts — how many (login, access, alert) triples chain together?
//!
//! Run: `cargo run --release --example multi_join`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skimmed_sketches::query::{estimate_chain_join, ChainJoinSchema, ChainRelationSketch};
use stream_model::metrics::ratio_error;

const USERS: usize = 512;
const RESOURCES: usize = 512;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // Ground-truth frequencies (exact, small domains so we can verify).
    let mut logins = vec![0i64; USERS];
    let mut accesses = vec![vec![0i64; RESOURCES]; USERS];
    let mut alerts = vec![0i64; RESOURCES];

    // Sketches: one per relation, shared chain schema (s1 × s2 = 9 × 2048).
    let schema = ChainJoinSchema::new(3, 9, 2048, 0xC4A1);
    let mut s1 = ChainRelationSketch::new(schema.clone(), 0);
    let mut s2 = ChainRelationSketch::new(schema.clone(), 1);
    let mut s3 = ChainRelationSketch::new(schema, 2);

    // Stream the events. Users and resources are skewed (power users /
    // hot resources), accesses correlate the two.
    for _ in 0..60_000 {
        let u = (rng.gen_range(0.0f64..1.0).powi(2) * (USERS - 1) as f64) as usize;
        logins[u] += 1;
        s1.update_endpoint(u as u64, 1);
    }
    for _ in 0..120_000 {
        let u = (rng.gen_range(0.0f64..1.0).powi(2) * (USERS - 1) as f64) as usize;
        let r = (rng.gen_range(0.0f64..1.0).powi(2) * (RESOURCES - 1) as f64) as usize;
        accesses[u][r] += 1;
        s2.update_interior(u as u64, r as u64, 1);
    }
    for _ in 0..20_000 {
        let r = (rng.gen_range(0.0f64..1.0).powi(2) * (RESOURCES - 1) as f64) as usize;
        alerts[r] += 1;
        s3.update_endpoint(r as u64, 1);
    }

    // Exact chain-join size.
    let mut exact: i128 = 0;
    for (u, &lu) in logins.iter().enumerate() {
        if lu == 0 {
            continue;
        }
        for (r, &ar) in alerts.iter().enumerate() {
            if ar != 0 && accesses[u][r] != 0 {
                exact += lu as i128 * accesses[u][r] as i128 * ar as i128;
            }
        }
    }
    let exact = exact as f64;

    let est = estimate_chain_join(&[&s1, &s2, &s3]);

    println!("relations            : logins(user) ⋈ accesses(user,resource) ⋈ alerts(resource)");
    println!("exact chain-join size: {exact:.0}");
    println!("sketch estimate      : {est:.0}");
    println!("ratio error          : {:.4}", ratio_error(est, exact));
    assert!(ratio_error(est, exact) < 1.0, "chain estimate out of range");
}
