//! Causal request tracing end to end: one traced QUERY_JOIN, one trace.
//!
//! A client with `trace: true` stamps every frame with a 16-byte trace
//! context (trace id + parent span). The server threads that id through
//! its handler thread, the ingest workers, and the estimator, recording
//! typed spans into per-thread flight recorders. This example stands up
//! a loopback server, streams both sides of a join through a traced
//! client, queries, then pulls the server's flight recorder over
//! INSPECT and merges it with the client's own — producing a single
//! causally-connected Chrome trace (`traced_query_trace.json`, load via
//! chrome://tracing or ui.perfetto.dev).
//!
//! With `--no-default-features` the recorder is compiled out: spans are
//! zero-sized, trace ids are zero, and the export is empty — the
//! example still runs, demonstrating the zero-cost configuration.
//!
//! Run: `cargo run --release --example traced_query`

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::SkimmedSchema;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, Update};
use stream_server::{ClientConfig, Server, ServerClient, ServerConfig};
use stream_wire::{StreamId, INSPECT_ALL};

const N: usize = 100_000;
const CHUNK: usize = 8_192;

fn zipf(domain: Domain, skew: f64, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(domain, skew, seed);
    (0..N).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

fn main() {
    let domain = Domain::with_log2(14);
    let mut config = ServerConfig::new(SkimmedSchema::scanning(domain, 7, 256, 42));
    config.ingest_workers = 2;
    // Log every query, so the INSPECT below shows the per-phase
    // breakdown (snapshot / estimate / encode) for our request.
    config.slow_query = std::time::Duration::ZERO;
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    // --- traced client: every frame carries a trace context --------------
    let mut client = ServerClient::connect_with(
        addr,
        ClientConfig {
            name: "traced_query_example".to_string(),
            trace: true,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let mut traces = Vec::new();
    for (stream, skew, seed) in [(StreamId::F, 1.0, 11), (StreamId::G, 0.8, 12)] {
        client
            .send_all(stream, &zipf(domain, skew, seed), CHUNK)
            .expect("send updates");
        traces.push(client.last_trace_id());
    }
    let answer = client.query_join().expect("query_join");
    let query_trace = client.last_trace_id();
    traces.push(query_trace);
    println!("estimate     : {:.0}", answer.estimate);
    println!("query trace  : {query_trace:016x}");

    // --- pull the server's side of the story over INSPECT -----------------
    let report = client.inspect(INSPECT_ALL, 0, 16).expect("inspect");
    client.goodbye().expect("goodbye");
    server.shutdown().expect("clean shutdown");

    for entry in &report.slow {
        println!(
            "slow-query   : kind {} total {}us (snapshot {}us, estimate {}us, encode {}us) trace {:016x}",
            entry.kind,
            entry.total_ns / 1_000,
            entry.snapshot_ns / 1_000,
            entry.estimate_ns / 1_000,
            entry.encode_ns / 1_000,
            entry.trace_id
        );
    }

    // --- merge both flight recorders into one Chrome trace ----------------
    let ours = |id: u64| !ss_trace::ENABLED || traces.contains(&id);
    let client_events: Vec<ss_trace::TraceEvent> = ss_trace::recent_events(0)
        .into_iter()
        .filter(|e| ours(e.trace_id))
        .collect();
    let server_events: Vec<ss_trace::TraceEvent> = report
        .events
        .iter()
        .filter(|e| ours(e.trace_id))
        .map(|e| ss_trace::TraceEvent {
            ts_ns: e.ts_ns,
            trace_id: e.trace_id,
            span_id: e.span_id,
            parent_id: e.parent_id,
            phase: e.phase,
            kind: e.kind,
            thread: e.thread,
            arg: e.arg,
        })
        .collect();
    println!(
        "events       : {} client-side, {} server-side",
        client_events.len(),
        server_events.len()
    );
    if ss_trace::ENABLED {
        // The causal link: the id the client minted for its QUERY_JOIN
        // shows up in spans recorded by the *server's* threads.
        assert!(
            server_events.iter().any(|e| e.trace_id == query_trace),
            "server flight recorder never saw the query's trace id"
        );
        assert!(
            report.slow.iter().any(|s| s.trace_id == query_trace),
            "slow-query log (threshold 0) should hold the traced query"
        );
    }
    let doc =
        ss_trace::chrome_trace_json(&[("client", &client_events), ("server", &server_events)]);
    std::fs::write("traced_query_trace.json", doc).expect("write trace");
    println!("chrome trace : traced_query_trace.json (one connected timeline, two processes)");
}
