//! Network monitoring — the paper's motivating scenario (§1).
//!
//! Two routers export flow records continuously; the NOC wants a running
//! estimate of `COUNT(R1 ⋈ R2)` on destination address — how much traffic
//! structure the two vantage points share — without storing either stream.
//! Flows also *expire* (deletes), which linear sketches absorb natively.
//!
//! The example streams a day of synthetic flow activity in epochs; after
//! each epoch it prints the running estimate against the exact value, then
//! retires a fraction of old flows and shows the estimate tracking the
//! retraction.
//!
//! Run: `cargo run --release --example network_monitor`

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketches::prelude::*;
use stream_model::gen::ZipfGenerator;
use stream_model::metrics::ratio_error;

const EPOCHS: usize = 6;
const FLOWS_PER_EPOCH: usize = 80_000;

fn main() {
    // Destination-address space (hashed /24s, say): 2^16 buckets.
    let domain = Domain::with_log2(16);
    let schema = SkimmedSchema::dyadic(domain, 7, 512, 0xBEEF);
    let mut r1 = SkimmedSketch::new(schema.clone());
    let mut r2 = SkimmedSketch::new(schema);
    let mut exact1 = FrequencyVector::new(domain);
    let mut exact2 = FrequencyVector::new(domain);

    // Router 1 sees a web-heavy mix; router 2 the same popular targets
    // shifted (different customer base) — classic partially-overlapping
    // skew.
    let mut rng = StdRng::seed_from_u64(7);
    let popular1 = ZipfGenerator::new(domain, 1.2, 0);
    let popular2 = ZipfGenerator::new(domain, 1.2, 97);
    let cfg = EstimatorConfig::default();

    // Remember live flows so expiry can retract exactly what was inserted.
    let mut live1: Vec<u64> = Vec::new();
    let mut live2: Vec<u64> = Vec::new();

    println!("epoch   live_flows   exact_join   estimate     ratio_err");
    println!("----------------------------------------------------------");
    for epoch in 1..=EPOCHS {
        // New flows arrive.
        for _ in 0..FLOWS_PER_EPOCH {
            let d1 = popular1.sample(&mut rng);
            r1.update(Update::insert(d1));
            exact1.update(Update::insert(d1));
            live1.push(d1);

            let d2 = popular2.sample(&mut rng);
            r2.update(Update::insert(d2));
            exact2.update(Update::insert(d2));
            live2.push(d2);
        }
        // ~30% of existing flows expire: deletes, handled by linearity.
        let expire =
            |live: &mut Vec<u64>, sketch: &mut SkimmedSketch, exact: &mut FrequencyVector| {
                let n_expire = live.len() / 3;
                for d in live.drain(..n_expire) {
                    sketch.update(Update::delete(d));
                    exact.update(Update::delete(d));
                }
            };
        expire(&mut live1, &mut r1, &mut exact1);
        expire(&mut live2, &mut r2, &mut exact2);

        let est = estimate_join(&r1, &r2, &cfg);
        let actual = exact1.join(&exact2) as f64;
        println!(
            "{epoch:>5}   {:>10}   {actual:>10.0}   {:>9.0}     {:.4}",
            live1.len() + live2.len(),
            est.estimate,
            ratio_error(est.estimate, actual)
        );
    }
    println!();
    println!(
        "synopsis: {} words/router ({} hash tables × buckets, plus dyadic levels)",
        r1.words(),
        7
    );
}
