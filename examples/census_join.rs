//! Census analytics with the query engine — COUNT, SUM and AVERAGE over a
//! join, with a selection predicate, on the census-like workload of the
//! paper's real-life experiment.
//!
//! Query (in SQL terms):
//! ```sql
//! SELECT COUNT(*), SUM(g.hours), AVG(g.hours)
//! FROM wage_stream f JOIN overtime_stream g ON f.value = g.value
//! WHERE f.value < 2000   -- wages under $2000/week
//! ```
//!
//! Run: `cargo run --release --example census_join`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skimmed_sketches::prelude::*;
use stream_model::gen::CensusGenerator;
use stream_model::metrics::ratio_error;

fn main() {
    let gen = CensusGenerator::new();
    let domain = gen.domain();
    let mut rng = StdRng::seed_from_u64(2002);
    let records = gen.generate(&mut rng, 159_434);

    // Engine with a wage predicate on the left stream.
    let schema = SkimmedSchema::scanning(domain, 7, 512, 0xCE);
    let mut engine = JoinQueryEngine::new(schema, Default::default());
    engine.set_predicate(Side::Left, Predicate::ValueRange { lo: 0, hi: 2000 });

    // Exact reference.
    let mut exact_f = FrequencyVector::new(domain);
    let mut exact_g = FrequencyVector::new(domain);
    let mut exact_gm = FrequencyVector::new(domain);

    for r in &records {
        // Left stream: weekly wage. Right stream: overtime pay, with a
        // synthetic "overtime hours" measure attached for the SUM.
        let hours = (r.weekly_wage_overtime / 25).max(u64::from(r.weekly_wage_overtime > 0)) as i64;
        engine.process(Side::Left, Op::Insert, Record::new(r.weekly_wage));
        engine.process(
            Side::Right,
            Op::Insert,
            Record::with_measure(r.weekly_wage_overtime, hours),
        );
        if r.weekly_wage < 2000 {
            exact_f.update(Update::insert(r.weekly_wage));
        }
        exact_g.update(Update::insert(r.weekly_wage_overtime));
        exact_gm.update(Update::with_measure(r.weekly_wage_overtime, hours));
    }

    let exact_count = exact_f.join(&exact_g) as f64;
    let exact_sum = exact_f.join(&exact_gm) as f64;
    let exact_avg = exact_sum / exact_count;

    let count = engine.answer(Aggregate::Count);
    let sum = engine.answer(Aggregate::SumRightMeasure);
    let avg = engine.answer(Aggregate::AvgRightMeasure);

    let (accepted, filtered) = engine.stats(Side::Left);
    println!(
        "records processed    : {} ({} passed predicate, {} filtered)",
        records.len(),
        accepted,
        filtered
    );
    println!("synopsis footprint   : {} words total", engine.words());
    println!();
    println!("aggregate     exact          estimate       ratio_err");
    println!("-------------------------------------------------------");
    println!(
        "COUNT         {exact_count:<14.0} {:<14.0} {:.4}",
        count.value,
        ratio_error(count.value, exact_count)
    );
    println!(
        "SUM(hours)    {exact_sum:<14.0} {:<14.0} {:.4}",
        sum.value,
        ratio_error(sum.value, exact_sum)
    );
    println!(
        "AVG(hours)    {exact_avg:<14.2} {:<14.2} {:.4}",
        avg.value,
        ratio_error(avg.value, exact_avg)
    );
    let _ = rng.gen::<u8>();
}
