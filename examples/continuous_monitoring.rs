//! Continuous monitoring with change detection.
//!
//! A registered `COUNT(F ⋈ G)` query re-evaluates itself every 50K
//! records while the right-hand workload goes through a regime shift (a
//! flash crowd moves its hot set onto the left stream's head). The
//! change detector flags the transition — the paper's "interesting
//! trends ... fraud/anomaly detection in real time" motivation, end to
//! end.
//!
//! Run: `cargo run --release --example continuous_monitoring`

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketches::prelude::*;
use stream_model::gen::{PhasedWorkload, ZipfGenerator};

fn main() {
    let domain = Domain::with_log2(14);
    let schema = SkimmedSchema::scanning(domain, 7, 256, 0xC0117);
    let mut query =
        stream_query::ContinuousQuery::new(schema, Default::default(), Aggregate::Count, 50_000)
            .with_alarm(0.75); // flag ±75% movement between evaluations

    // Left stream: stationary popular content.
    let left = ZipfGenerator::new(domain, 1.2, 0);
    // Right stream: starts far away (shift 6000), then a flash crowd
    // converges on the same head (shift 0).
    let right = PhasedWorkload::regime_shift(domain, 1.2, 6000, 0, 300_000, 300_000);

    let mut rng = StdRng::seed_from_u64(1);
    let mut lrng = StdRng::seed_from_u64(2);
    println!("records     estimate      change    alarm");
    println!("--------------------------------------------");
    right.stream(&mut rng, |_phase, u| {
        query.process(Side::Left, Op::Insert, Record::new(left.sample(&mut lrng)));
        if let Some(p) = query.process(Side::Right, Op::Insert, Record::new(u.value)) {
            println!(
                "{:>8}  {:>12.0}  {:>+8.2}%  {}",
                p.records_processed,
                p.estimate,
                100.0 * p.relative_change,
                if p.alarm { "  <-- ALARM" } else { "" }
            );
        }
    });

    let alarms = query.series().iter().filter(|p| p.alarm).count();
    println!(
        "\n{alarms} alarm(s) raised across {} evaluations",
        query.series().len()
    );
    assert!(alarms >= 1, "the regime shift must trip the detector");
}
