//! Quickstart: estimate the size of a stream join in one pass.
//!
//! Two skewed update streams arrive; we maintain one skimmed sketch per
//! stream (a few KB each), then ask for the join size and compare against
//! the exact answer computed offline.
//!
//! Run: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketches::prelude::*;
use stream_model::gen::ZipfGenerator;
use stream_model::metrics::ratio_error;

fn main() {
    // Streams take values in [0, 2^16).
    let domain = Domain::with_log2(16);

    // One schema, shared by both streams — the estimator requires the two
    // sketches to use identical hash functions.
    let schema = SkimmedSchema::scanning(domain, 7, 512, /*seed=*/ 0xC0FFEE);
    let mut sketch_f = SkimmedSketch::new(schema.clone());
    let mut sketch_g = SkimmedSketch::new(schema.clone());

    // Exact reference (only feasible offline / in an example).
    let mut exact_f = FrequencyVector::new(domain);
    let mut exact_g = FrequencyVector::new(domain);

    // Stream in 500K Zipf(1.1) elements per side, G right-shifted by 64.
    // Updates arrive in buffered batches (as they would off a network
    // socket); `update_batch` runs the loop-interchanged kernels, which
    // amortise the hash-constant loads across each chunk.
    let mut rng = StdRng::seed_from_u64(1);
    let gen_f = ZipfGenerator::new(domain, 1.1, 0);
    let gen_g = ZipfGenerator::new(domain, 1.1, 64);
    let mut stream_f = Vec::with_capacity(500_000);
    let mut stream_g = Vec::with_capacity(500_000);
    for _ in 0..500_000 {
        stream_f.push(Update::insert(gen_f.sample(&mut rng)));
        stream_g.push(Update::insert(gen_g.sample(&mut rng)));
    }
    for chunk in stream_f.chunks(4096) {
        sketch_f.update_batch(chunk);
    }
    for chunk in stream_g.chunks(4096) {
        sketch_g.update_batch(chunk);
    }
    for (&uf, &ug) in stream_f.iter().zip(&stream_g) {
        exact_f.update(uf);
        exact_g.update(ug);
    }

    // Ask for the join size. Estimation is non-destructive: the sketches
    // keep streaming afterwards.
    let est = estimate_join(&sketch_f, &sketch_g, &EstimatorConfig::default());
    let actual = exact_f.join(&exact_g) as f64;

    println!(
        "synopsis size         : {} words per stream",
        sketch_f.words()
    );
    println!("exact join size       : {actual}");
    println!("skimmed-sketch answer : {:.0}", est.estimate);
    println!(
        "ratio error           : {:.4}",
        ratio_error(est.estimate, actual)
    );
    println!();
    println!("estimate anatomy:");
    println!(
        "  dense values skimmed: {} (F), {} (G)",
        est.dense_f, est.dense_g
    );
    println!(
        "  thresholds          : {} (F), {} (G)",
        est.threshold_f, est.threshold_g
    );
    println!("  dense ⋈ dense (exact): {:.0}", est.dense_dense);
    println!("  dense ⋈ sparse       : {:.0}", est.dense_sparse);
    println!("  sparse ⋈ dense       : {:.0}", est.sparse_dense);
    println!("  sparse ⋈ sparse      : {:.0}", est.sparse_sparse);

    assert!(ratio_error(est.estimate, actual) < 0.5, "estimate drifted");

    // Bonus: the same sketch built on four cores. Dispatch owned chunks to
    // an [`IngestPool`]; each worker sketches its shard, and the merge is
    // bit-identical to the sequential build because sketches are linear.
    let pool = IngestPool::new(4, || SkimmedSketch::new(schema.clone()));
    for chunk in stream_f.chunks(4096) {
        pool.dispatch(chunk.to_vec());
    }
    let parallel_f = pool.finish().expect("no worker panicked");
    assert_eq!(
        parallel_f.base().counters(),
        sketch_f.base().counters(),
        "parallel ingest must be exact"
    );
    println!();
    println!("parallel ingest       : 4-thread pool rebuilt F bit-identically");
}
