//! Distributed monitoring: per-site sketches shipped to a coordinator.
//!
//! The paper's motivating deployment ("performance data from different
//! parts of the network needs to be continuously collected and analyzed")
//! is naturally distributed: each site sketches its local substream, ships
//! the few-KB synopsis, and the coordinator *adds* them — linearity makes
//! the merged sketch identical to one built centrally. This example runs
//! four sites per stream, moves the sketches through the binary wire
//! codec, merges at the coordinator, and estimates the global join.
//!
//! Run: `cargo run --release --example distributed_sites`

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketches::prelude::*;
use stream_model::gen::ZipfGenerator;
use stream_model::metrics::ratio_error;
use stream_sketches::codec::{decode_hash, encode_hash};
use stream_sketches::{HashSketch, HashSketchSchema, LinearSynopsis};

const SITES: usize = 4;
const PER_SITE: usize = 150_000;

fn main() {
    let domain = Domain::with_log2(16);
    // The coordinator publishes the schema seed; every site derives the
    // same hash functions from it.
    let schema = HashSketchSchema::new(7, 512, 0xD15713);

    let mut exact_f = FrequencyVector::new(domain);
    let mut exact_g = FrequencyVector::new(domain);
    let mut wire_bytes = 0usize;

    // Each site sketches its local traffic and ships the encoded synopsis.
    let mut shipped_f = Vec::new();
    let mut shipped_g = Vec::new();
    for site in 0..SITES {
        let mut rng = StdRng::seed_from_u64(100 + site as u64);
        let zf = ZipfGenerator::new(domain, 1.1, site as u64 * 3);
        let zg = ZipfGenerator::new(domain, 1.1, 64 + site as u64 * 3);
        let mut batch_f = Vec::with_capacity(PER_SITE);
        let mut batch_g = Vec::with_capacity(PER_SITE);
        for _ in 0..PER_SITE {
            batch_f.push(Update::insert(zf.sample(&mut rng)));
            batch_g.push(Update::insert(zg.sample(&mut rng)));
        }
        // Each site drains its buffered traffic through the batch kernels;
        // stream F additionally splits the site's load across a two-worker
        // ingest pool — the merged sketch is bit-identical to a sequential
        // build, so the wire format doesn't care which path produced it.
        let pool_f = IngestPool::new(2, || HashSketch::new(schema.clone()));
        for chunk in batch_f.chunks(8192) {
            pool_f.dispatch(chunk.to_vec());
        }
        let sf = pool_f.finish().expect("no worker panicked");
        let mut sg = HashSketch::new(schema.clone());
        sg.update_batch(&batch_g);
        for (&uf, &ug) in batch_f.iter().zip(&batch_g) {
            exact_f.update(uf);
            exact_g.update(ug);
        }
        let (bf, bg) = (encode_hash(&sf), encode_hash(&sg));
        wire_bytes += bf.len() + bg.len();
        shipped_f.push(bf);
        shipped_g.push(bg);
    }

    // Coordinator: decode and merge.
    let mut global_f = HashSketch::new(schema.clone());
    let mut global_g = HashSketch::new(schema);
    for buf in shipped_f {
        global_f.merge_from(&decode_hash(buf).expect("valid sketch"));
    }
    for buf in shipped_g {
        global_g.merge_from(&decode_hash(buf).expect("valid sketch"));
    }

    // The merged hash sketches estimate the global join directly (the
    // sparse⋈sparse estimator; for full skimming wrap them in a
    // SkimmedSketch — here the point is the distribution pattern).
    let est = global_f.join_estimate(&global_g);
    let actual = exact_f.join(&exact_g) as f64;

    println!("sites                : {SITES} per stream, {PER_SITE} elements each");
    println!(
        "wire bytes shipped   : {wire_bytes} ({} per sketch avg)",
        wire_bytes / (2 * SITES)
    );
    println!("exact global join    : {actual:.0}");
    println!("coordinator estimate : {est:.0}");
    println!("ratio error          : {:.4}", ratio_error(est, actual));
    assert!(ratio_error(est, actual) < 0.5);
}
