#!/usr/bin/env bash
# Regenerates every experiment of the reproduction (quick scale by
# default; pass --paper to forward the verbatim EDBT'04 parameters).
# Outputs land in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE_FLAG="${1:-}"
mkdir -p results

echo "== ss-analyze gate =="
cargo run --release -q -p ss-analyze -- check

BINS=(fig5a fig5b census example1 thm34 scaling partitioned ablation_threshold anatomy selfjoin vary_shift)
for bin in "${BINS[@]}"; do
    echo "== $bin $SCALE_FLAG =="
    # example1 takes no scale flag; the others ignore unknown args anyway.
    cargo run --release -q -p ss-bench --bin "$bin" -- $SCALE_FLAG \
        > "results/$bin.txt" 2> "results/$bin.log" || {
        echo "FAILED: $bin (see results/$bin.log)"; exit 1;
    }
    tail -n +1 "results/$bin.txt" | head -5
done

echo "== criterion micro-benches =="
cargo bench -p ss-bench 2>&1 | tee results/criterion.txt | grep -E "time:|thrpt:" | head -40

echo
echo "All experiment outputs written to results/."
