//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: [`Rng`] (`next_u64`,
//! `gen_range`, `gen`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically strong
//! enough for workload generation (the only thing the workspace uses
//! `rand` for; hash-family randomness comes from `stream-hash`'s own
//! seed expansion). Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer seeds explicitly and asserts only
//! distributional properties, never exact draws.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range. Implemented for
/// `Range` and `RangeInclusive` over the primitive integers and floats.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" distribution for [`Rng::gen`]: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value using `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        T: Standard,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One scramble step so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: state ^ 0x5851_F42D_4C95_7F2D,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply range reduction; bias is < span/2^64, invisible at
    // the sample counts the workspace draws.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty, $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_ranges!(f32, 24, f64, 53);

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(StdRng::seed_from_u64(1).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }
}
