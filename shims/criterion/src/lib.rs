//! Offline stand-in for `criterion`.
//!
//! A wall-clock microbenchmark harness with criterion's API shape:
//! [`Criterion`], [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros (both forms). No statistical analysis,
//! HTML reports, or baselines — each benchmark is calibrated, sampled,
//! and summarized as min/median/mean wall time plus throughput.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// This harness times one routine call per sample regardless of variant,
/// so the variant only documents intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are small; many fit in cache.
    SmallInput,
    /// Inputs are large; one per measurement.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One benchmark's collected samples, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark path, e.g. `update/hash-sketch/8192`.
    pub name: String,
    /// Nanoseconds per iteration, one entry per sample.
    pub samples_ns: Vec<f64>,
    /// Declared per-iteration work, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Median nanoseconds per iteration.
    pub fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let n = s.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }

    /// Mean nanoseconds per iteration.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Minimum nanoseconds per iteration.
    pub fn min_ns(&self) -> f64 {
        self.samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples_ns: &'a mut Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    target_sample: Duration,
}

impl<'a> Bencher<'a> {
    /// Times `routine`, averaging over enough iterations per sample for a
    /// stable wall-clock reading.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let iters = ((self.target_sample.as_nanos() as f64 / est_ns).ceil() as u64).max(1);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// measured. Each sample times exactly one routine call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call keeps cold-start effects out of the samples.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    target_sample: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            warm_up: Duration::from_millis(40),
            target_sample: Duration::from_millis(2),
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder form, matching
    /// criterion's `Criterion::default().sample_size(n)` config idiom).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line configuration (accepted for API parity; the
    /// positional filter is already picked up by `default()`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        name: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples_ns = Vec::with_capacity(sample_size);
        let mut bencher = Bencher {
            samples_ns: &mut samples_ns,
            sample_size,
            warm_up: self.warm_up,
            target_sample: self.target_sample,
        };
        f(&mut bencher);
        let m = Measurement {
            name,
            samples_ns,
            throughput,
        };
        report(&m);
    }

    /// Prints the closing summary (no-op; results stream as they finish).
    pub fn final_summary(&mut self) {}
}

fn report(m: &Measurement) {
    if m.samples_ns.is_empty() {
        println!("{:<44} (no samples)", m.name);
        return;
    }
    let (min, median, mean) = (m.min_ns(), m.median_ns(), m.mean_ns());
    print!(
        "{:<44} time: [{} {} {}]",
        m.name,
        format_time(min),
        format_time(median),
        format_time(mean),
    );
    if let Some(t) = m.throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (median / 1e9);
        print!("  thrpt: {}", format_rate(per_sec, unit));
    }
    println!();
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(name, sample_size, self.throughput, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Defines a benchmark group function, in either of criterion's forms:
/// `criterion_group!(benches, target_a, target_b)` or
/// `criterion_group! { name = benches; config = ...; targets = ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        c.filter = None;
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(5);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u32, |b, &n| {
            b.iter(|| (0..n).map(|x| x.wrapping_mul(x)).sum::<u32>())
        });
        g.finish();
    }

    #[test]
    fn iter_batched_times_each_input() {
        let mut c = Criterion::default().sample_size(4);
        c.filter = None;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 1024],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn measurement_stats() {
        let m = Measurement {
            name: "m".into(),
            samples_ns: vec![3.0, 1.0, 2.0],
            throughput: None,
        };
        assert_eq!(m.median_ns(), 2.0);
        assert_eq!(m.mean_ns(), 2.0);
        assert_eq!(m.min_ns(), 1.0);
    }
}
