//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the workspace's wire codecs consume:
//! [`Bytes`] (a consumable read cursor), [`BytesMut`] (an append buffer),
//! and the [`Buf`]/[`BufMut`] traits with the little-endian accessors.
//! Semantics match upstream where it matters: reads past the end panic
//! (decoders guard with `remaining()`), `freeze` converts a mutable
//! buffer into an immutable one, and `len` reports *remaining* bytes.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a contiguous byte buffer with an advancing cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Returns the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n`.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Fills `dst` from the buffer and advances past it.
    ///
    /// # Panics
    /// If fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer that is consumed by reading.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(Vec::new()),
            pos: 0,
        }
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
}

/// A growable, appendable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn len_tracks_consumption() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        let _ = b.get_u8();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overrun_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.advance(2);
    }
}
