//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`thread::scope`] — crossbeam's scoped-thread API (spawn closures
//!   receive a scope handle, `scope` returns a `Result`), implemented on
//!   top of `std::thread::scope`.
//! * [`channel`] — `unbounded`/`bounded` MPSC channels implemented on
//!   top of `std::sync::mpsc`. Receivers are single-consumer (the only
//!   pattern the workspace uses: one receiver per ingest worker).

#![warn(missing_docs)]

/// Scoped threads in crossbeam's API shape.
pub mod thread {
    use std::thread as std_thread;

    /// Handle passed to spawned closures (crossbeam passes the scope; the
    /// workspace's closures ignore it, so a placeholder suffices — nested
    /// spawns go through the outer [`Scope`] borrow instead).
    #[derive(Debug, Clone, Copy)]
    pub struct ScopeHandle;

    /// A scope within which spawned threads are guaranteed to be joined.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder
        /// scope handle, mirroring crossbeam's `|_|` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(ScopeHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(ScopeHandle)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Always returns `Ok`; a panic in an unjoined
    /// child propagates as a panic (std semantics), which satisfies every
    /// caller's `.unwrap()`/`.expect()`.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// MPSC channels in crossbeam's API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// Receiving half of a channel (single consumer).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; the message comes back to
    /// the caller in both cases.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel buffer is full.
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }

        /// Sends a message only if buffer space is free right now,
        /// returning it to the caller otherwise.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Iterates over messages until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// A channel with a buffer of `cap` messages; sends block when full
    /// (the backpressure the ingest pool relies on).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// A channel with no send-side blocking (large fixed buffer — the
    /// std `mpsc::channel` is not used so `Sender` stays one type).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(1 << 16)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn try_send_reports_full_and_returns_the_message() {
        use super::channel::TrySendError;
        let (tx, rx) = super::channel::bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = super::channel::bounded(4);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
