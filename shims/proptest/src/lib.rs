//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`Strategy`] implementations for integer/float ranges, tuples, and
//! `prop::collection::vec`, the [`any`] and [`Just`] strategies,
//! `prop_map`/`prop_flat_map`, the [`prop_oneof!`] union and
//! `prop::sample::select`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Failing cases
//! are reported with their generated inputs but are **not shrunk** —
//! acceptable for CI-style regression testing, which is how the workspace
//! uses property tests.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `span` (> 0).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the per-test RNG from the test's name, so runs are
/// deterministic and independent across tests.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

/// How a generated test case terminated early.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject,
    /// An assertion failed; the message describes it.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and draws the
    /// final value from it (dependent generation).
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform union over boxed strategies of one value type — what
/// [`prop_oneof!`] builds. (Real proptest supports per-arm weights; the
/// workspace's tests only use the uniform form.)
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// A union choosing uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Self { options }
    }
}

impl<V: Debug> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Picks uniformly among the listed strategies (all producing the same
/// value type). Mirrors proptest's macro without the weighted form.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies!((A, B), (A, B, C), (A, B, C, D));

/// Marker strategy for [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

/// The "any value" strategy for primitive `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// A length specification for collection strategies: either a fixed size
/// or a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from a fixed list of values.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "empty select");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items (each carrying its own `#[test]` attribute).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg,)+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest case failed: {}\n  inputs: {}",
                        msg, __inputs
                    ),
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (retries with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i64..=5) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u64..10, 1i64..3).prop_map(|(a, b)| a as i64 * b), 0..20)
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0..27).contains(&x)));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(any::<u8>(), 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(0usize), 10usize..20, prop::sample::select(vec![77usize])]) {
            prop_assert!(x == 0usize || (10usize..20).contains(&x) || x == 77);
        }

        #[test]
        fn flat_map_derives_dependent_values(
            v in (1usize..9).prop_flat_map(|n| prop::collection::vec(0u8..10, n..=n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        // Reuse the machinery manually to check the failure path.
        let mut rng = crate::test_rng("failing_case_reports_inputs");
        let strat = 0u64..10;
        let v = crate::Strategy::generate(&strat, &mut rng);
        assert!(v < 10);
    }
}
