//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()` returns the guard directly (poisoning is swallowed, matching
//! parking_lot's no-poisoning semantics).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
