//! # skimmed-sketches
//!
//! A complete reproduction of **"Processing Data-Stream Join Aggregates
//! Using Skimmed Sketches"** (Ganguly, Garofalakis & Rastogi, EDBT 2004).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`hash`] (`stream-hash`) — k-wise independent hash families over
//!   `Z_{2^61-1}` and GF(2^64).
//! * [`model`] (`stream-model`) — the update-stream data model, workload
//!   generators, exact reference computation, and the paper's error metric.
//! * [`sketches`] (`stream-sketches`) — basic AGMS sketching (the paper's
//!   baseline), the CountSketch hash structure, top-k tracking, Count-Min.
//! * [`skim`] (`skimmed-sketch`) — the paper's contribution: SKIMDENSE,
//!   dyadic extraction, and ESTSKIMJOINSIZE.
//! * [`query`] (`stream-query`) — a one-pass COUNT/SUM/AVERAGE join-query
//!   engine with predicates, sharded ingestion, and chain multi-joins.
//! * [`ingest`] (`stream-ingest`) — batched, multi-core ingestion: a
//!   sharded worker pool feeding per-thread sketches via the
//!   loop-interchanged batch kernels, merged by linearity into a sketch
//!   bit-identical to sequential ingest.
//!
//! See `examples/` for runnable walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

pub use skimmed_sketch as skim;
pub use stream_hash as hash;
pub use stream_ingest as ingest;
pub use stream_model as model;
pub use stream_query as query;
pub use stream_sketches as sketches;

/// Convenience prelude for downstream users.
pub mod prelude {
    pub use skimmed_sketch::{
        estimate_join, estimate_self_join, EstimatorConfig, JoinEstimate, SkimmedSchema,
        SkimmedSketch, ThresholdPolicy,
    };
    pub use stream_ingest::{ingest_parallel, IngestPool};
    pub use stream_model::{Domain, FrequencyVector, StreamSink, Update};
    pub use stream_query::{Aggregate, JoinQueryEngine, Op, Predicate, Record, Side};
    pub use stream_sketches::LinearSynopsis;
}
