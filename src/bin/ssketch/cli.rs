//! Minimal dependency-free argument parsing for the `ssketch` CLI.
//!
//! Flags are `--name value` pairs after a subcommand; every command
//! documents its flags in [`crate::usage`]. Parsing is strict: unknown
//! flags and missing values are errors, so typos fail loudly instead of
//! silently running a default experiment.

use std::collections::BTreeMap;

/// Parsed command line: subcommand + flag map.
#[derive(Debug, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// A CLI-level error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses `--flag value` pairs from raw arguments.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut flags = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(CliError(format!(
                    "unexpected argument '{tok}' (flags are --name value)"
                )));
            };
            let Some(value) = it.next() else {
                return Err(CliError(format!("flag --{name} is missing its value")));
            };
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(CliError(format!("flag --{name} given twice")));
            }
        }
        Ok(Self {
            flags,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn note(&self, name: &str) {
        self.consumed.borrow_mut().push(name.to_string());
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<String, CliError> {
        self.note(name);
        self.flags
            .get(name)
            .cloned()
            .ok_or_else(|| CliError(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<String> {
        self.note(name);
        self.flags.get(name).cloned()
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        self.note(name);
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("flag --{name} has invalid value '{v}'"))),
        }
    }

    /// Errors on any flag that no command consumed (strict mode).
    pub fn finish(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        for name in self.flags.keys() {
            if !consumed.iter().any(|c| c == name) {
                return Err(CliError(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&raw(&["--n", "100", "--out", "f.trace"])).unwrap();
        assert_eq!(a.get_or("n", 0usize).unwrap(), 100);
        assert_eq!(a.required("out").unwrap(), "f.trace");
        a.finish().unwrap();
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::parse(&raw(&["--n"])).is_err());
    }

    #[test]
    fn rejects_bare_words() {
        assert!(Args::parse(&raw(&["oops"])).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Args::parse(&raw(&["--n", "1", "--n", "2"])).is_err());
    }

    #[test]
    fn strict_unknown_flags() {
        let a = Args::parse(&raw(&["--mystery", "1"])).unwrap();
        assert!(a.finish().is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&raw(&[])).unwrap();
        assert_eq!(a.get_or("seed", 42u64).unwrap(), 42);
        assert!(a.required("out").is_err());
    }

    #[test]
    fn bad_parse_is_reported() {
        let a = Args::parse(&raw(&["--n", "not-a-number"])).unwrap();
        assert!(a.get_or("n", 0usize).is_err());
    }
}
