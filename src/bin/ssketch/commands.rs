//! `ssketch` subcommand implementations.

use crate::cli::{Args, CliError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_cluster::{Router, RouterConfig};
use std::net::ToSocketAddrs;
use stream_durability::WalConfig;
use stream_model::gen::{CensusGenerator, UniformGenerator, ZipfGenerator};
use stream_model::io::{read_trace_file, write_trace_file, TraceReader};
use stream_model::metrics::ratio_error;
use stream_model::{Domain, FrequencyVector, StreamSink, Update, WorkloadStats};
use stream_server::{ClientConfig, ResilientClient, Server, ServerClient, ServerConfig};
use stream_sketches::codec::{decode_hash, encode_hash};
use stream_sketches::{HashSketch, HashSketchSchema};
use stream_wire::{StreamId, INSPECT_ALL, INSPECT_EVENTS};

fn io_err(e: impl std::fmt::Display) -> CliError {
    CliError(e.to_string())
}

/// Shared synopsis-shape flags.
fn synopsis_shape(args: &Args) -> Result<(usize, usize, u64), CliError> {
    let tables = args.get_or("tables", 7usize)?;
    let buckets = args.get_or("buckets", 512usize)?;
    let seed = args.get_or("seed", 42u64)?;
    if tables == 0 || buckets == 0 {
        return Err(CliError("--tables and --buckets must be positive".into()));
    }
    Ok((tables, buckets, seed))
}

/// `ssketch generate` — synthesize a trace file.
pub fn generate(args: &Args) -> Result<(), CliError> {
    let kind = args.optional("kind").unwrap_or_else(|| "zipf".into());
    let log2 = args.get_or("domain-log2", 16u32)?;
    let n = args.get_or("n", 100_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let out = args.required("out")?;
    let domain = Domain::with_log2(log2);
    let mut rng = StdRng::seed_from_u64(seed);

    let updates = match kind.as_str() {
        "zipf" => {
            let z = args.get_or("z", 1.0f64)?;
            let shift = args.get_or("shift", 0u64)?;
            ZipfGenerator::new(domain, z, shift).generate(&mut rng, n)
        }
        "uniform" => {
            let _ = args.get_or("z", 0.0f64)?; // accepted, ignored
            let _ = args.get_or("shift", 0u64)?;
            UniformGenerator::new(domain).generate(&mut rng, n)
        }
        "census" => {
            let _ = args.get_or("z", 0.0f64)?;
            let _ = args.get_or("shift", 0u64)?;
            if log2 != 16 {
                return Err(CliError("census traces use --domain-log2 16".into()));
            }
            let gen = CensusGenerator::new();
            let recs = gen.generate(&mut rng, n);
            // Census emits the wage attribute; use --shift 1 semantics?
            // Keep it simple: the wage stream. For the overtime stream,
            // generate with a different seed and the `census-overtime`
            // kind.
            CensusGenerator::attribute_streams(&recs).0
        }
        "census-overtime" => {
            let _ = args.get_or("z", 0.0f64)?;
            let _ = args.get_or("shift", 0u64)?;
            if log2 != 16 {
                return Err(CliError("census traces use --domain-log2 16".into()));
            }
            let gen = CensusGenerator::new();
            let recs = gen.generate(&mut rng, n);
            CensusGenerator::attribute_streams(&recs).1
        }
        other => {
            return Err(CliError(format!(
                "unknown --kind '{other}' (zipf|uniform|census|census-overtime)"
            )))
        }
    };
    write_trace_file(&out, domain, &updates).map_err(io_err)?;
    println!("wrote {} updates to {out} (domain 2^{log2})", updates.len());
    Ok(())
}

/// `ssketch stats` — workload statistics of a trace.
pub fn stats(args: &Args) -> Result<(), CliError> {
    let path = args.required("trace")?;
    let mut reader = TraceReader::open(&path).map_err(io_err)?;
    let domain = reader.domain();
    let mut fv = FrequencyVector::new(domain);
    let mut count = 0u64;
    while let Some(u) = reader.next_update().map_err(io_err)? {
        fv.update(u);
        count += 1;
    }
    let s = WorkloadStats::of(&fv);
    println!("trace    : {path}");
    println!(
        "domain   : 2^{} ({} values)",
        domain.log2_size(),
        domain.size()
    );
    println!("updates  : {count}");
    println!("stats    : {}", s.summary());
    println!("top-5    : {:?}", fv.top_k(5));
    Ok(())
}

/// `ssketch exact` — exact join size of two traces.
pub fn exact(args: &Args) -> Result<(), CliError> {
    let (dl, f) = read_trace_file(args.required("left")?).map_err(io_err)?;
    let (dr, g) = read_trace_file(args.required("right")?).map_err(io_err)?;
    if dl != dr {
        return Err(CliError(format!(
            "domain mismatch: 2^{} vs 2^{}",
            dl.log2_size(),
            dr.log2_size()
        )));
    }
    let fv = FrequencyVector::from_updates(dl, f);
    let gv = FrequencyVector::from_updates(dl, g);
    println!("exact join size: {}", fv.join(&gv));
    println!(
        "self-joins     : SJ(F)={} SJ(G)={}",
        fv.self_join(),
        gv.self_join()
    );
    Ok(())
}

/// `ssketch join` — skimmed-sketch estimate from two traces.
pub fn join(args: &Args) -> Result<(), CliError> {
    let left = args.required("left")?;
    let right = args.required("right")?;
    let (tables, buckets, seed) = synopsis_shape(args)?;
    let dyadic = args.get_or("dyadic", false)?;
    let check = args.get_or("check", false)?;

    let (dl, fu) = read_trace_file(&left).map_err(io_err)?;
    let (dr, gu) = read_trace_file(&right).map_err(io_err)?;
    if dl != dr {
        return Err(CliError("trace domains differ".into()));
    }
    let schema = if dyadic {
        SkimmedSchema::dyadic(dl, tables, buckets, seed)
    } else {
        SkimmedSchema::scanning(dl, tables, buckets, seed)
    };
    let mut sf = SkimmedSketch::new(schema.clone());
    let mut sg = SkimmedSketch::new(schema);
    for u in &fu {
        sf.update(*u);
    }
    for u in &gu {
        sg.update(*u);
    }
    let cfg = EstimatorConfig::default();
    let est = estimate_join(&sf, &sg, &cfg);
    println!(
        "synopsis        : {tables} tables x {buckets} buckets ({} words/stream)",
        sf.words()
    );
    println!("estimate        : {:.0}", est.estimate);
    println!(
        "  dense/dense {:.0} | dense/sparse {:.0} | sparse/dense {:.0} | sparse/sparse {:.0}",
        est.dense_dense, est.dense_sparse, est.sparse_dense, est.sparse_sparse
    );
    println!(
        "  skimmed {} + {} dense values at thresholds {}/{}",
        est.dense_f, est.dense_g, est.threshold_f, est.threshold_g
    );
    if check {
        let fv = FrequencyVector::from_updates(dl, fu);
        let gv = FrequencyVector::from_updates(dl, gu);
        let actual = fv.join(&gv) as f64;
        println!("exact           : {actual:.0}");
        println!("ratio error     : {:.4}", ratio_error(est.estimate, actual));
    }
    Ok(())
}

/// `ssketch hh` — heavy hitters of a trace.
pub fn heavy_hitters(args: &Args) -> Result<(), CliError> {
    let path = args.required("trace")?;
    let (tables, buckets, seed) = synopsis_shape(args)?;
    let top = args.get_or("top", 10usize)?;
    let (domain, updates) = read_trace_file(&path).map_err(io_err)?;
    let schema = SkimmedSchema::scanning(domain, tables, buckets, seed);
    let mut sk = SkimmedSketch::new(schema);
    for u in updates {
        sk.update(u);
    }
    let cfg = EstimatorConfig::default();
    let t = cfg.policy.threshold(sk.base(), sk.l1_mass());
    let dense = sk.skim(t, cfg.max_candidates);
    let mut hits: Vec<(u64, i64)> = dense.iter().collect();
    hits.sort_by_key(|&(v, c)| (std::cmp::Reverse(c.abs()), v));
    hits.truncate(top);
    println!(
        "threshold {t}; {} dense values; top {}:",
        dense.len(),
        hits.len()
    );
    for (v, c) in hits {
        println!("  value {v:>12}  est frequency {c}");
    }
    Ok(())
}

/// `ssketch sketch` — build and persist a hash sketch of a trace.
pub fn sketch(args: &Args) -> Result<(), CliError> {
    let path = args.required("trace")?;
    let out = args.required("out")?;
    let (tables, buckets, seed) = synopsis_shape(args)?;
    let mut reader = TraceReader::open(&path).map_err(io_err)?;
    let schema = HashSketchSchema::new(tables, buckets, seed);
    let mut sk = HashSketch::new(schema);
    let mut count = 0u64;
    while let Some(u) = reader.next_update().map_err(io_err)? {
        sk.update(u);
        count += 1;
    }
    let buf = encode_hash(&sk);
    std::fs::write(&out, &buf).map_err(io_err)?;
    println!(
        "sketched {count} updates into {out} ({} bytes, {tables}x{buckets}, seed {seed})",
        buf.len()
    );
    Ok(())
}

/// `ssketch skim-sketch` — build and persist a full skimmed sketch.
pub fn skim_sketch(args: &Args) -> Result<(), CliError> {
    let path = args.required("trace")?;
    let out = args.required("out")?;
    let (tables, buckets, seed) = synopsis_shape(args)?;
    let dyadic = args.get_or("dyadic", false)?;
    let mut reader = TraceReader::open(&path).map_err(io_err)?;
    let domain = reader.domain();
    let schema = if dyadic {
        SkimmedSchema::dyadic(domain, tables, buckets, seed)
    } else {
        SkimmedSchema::scanning(domain, tables, buckets, seed)
    };
    let mut sk = SkimmedSketch::new(schema);
    let mut count = 0u64;
    while let Some(u) = reader.next_update().map_err(io_err)? {
        sk.update(u);
        count += 1;
    }
    let buf = skimmed_sketch::encode_skimmed(&sk);
    std::fs::write(&out, &buf).map_err(io_err)?;
    println!(
        "sketched {count} updates into {out} ({} bytes, {tables}x{buckets}, dyadic={dyadic})",
        buf.len()
    );
    Ok(())
}

/// `ssketch join-skimmed` — full ESTSKIMJOINSIZE from two skimmed-sketch
/// files.
pub fn join_skimmed(args: &Args) -> Result<(), CliError> {
    let lf = std::fs::read(args.required("left")?).map_err(io_err)?;
    let rf = std::fs::read(args.required("right")?).map_err(io_err)?;
    let a = skimmed_sketch::decode_skimmed(lf.into()).map_err(io_err)?;
    let b = skimmed_sketch::decode_skimmed(rf.into()).map_err(io_err)?;
    let est = estimate_join(&a, &b, &EstimatorConfig::default());
    println!("estimate        : {:.0}", est.estimate);
    println!(
        "  dense/dense {:.0} | dense/sparse {:.0} | sparse/dense {:.0} | sparse/sparse {:.0}",
        est.dense_dense, est.dense_sparse, est.sparse_dense, est.sparse_sparse
    );
    Ok(())
}

/// `ssketch serve` — run the TCP serving layer until stdin closes.
pub fn serve(args: &Args) -> Result<(), CliError> {
    let addr = args
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:7878".into());
    let log2 = args.get_or("domain-log2", 16u32)?;
    let (tables, buckets, seed) = synopsis_shape(args)?;
    let dyadic = args.get_or("dyadic", false)?;
    let domain = Domain::with_log2(log2);
    let schema = if dyadic {
        SkimmedSchema::dyadic(domain, tables, buckets, seed)
    } else {
        SkimmedSchema::scanning(domain, tables, buckets, seed)
    };
    let mut config = ServerConfig::new(schema);
    config.handler_threads = args.get_or("handlers", config.handler_threads)?;
    config.ingest_workers = args.get_or("workers", config.ingest_workers)?;
    config.queue_depth = args.get_or("queue-depth", config.queue_depth)?;
    config.max_batch = args.get_or("max-batch", config.max_batch)?;
    if let Some(dir) = args.optional("wal-dir") {
        let mut wal = WalConfig::new(dir);
        wal.segment_bytes = args.get_or("wal-segment-bytes", wal.segment_bytes)?;
        wal.snapshot_every = args.get_or("wal-snapshot-every", wal.snapshot_every)?;
        wal.fsync = args.get_or("wal-fsync", wal.fsync)?;
        config.wal = Some(wal);
    }
    config.shard = args.get_or("shard", false)?;
    if let Some(primary) = args.optional("follower-of") {
        if config.wal.is_none() {
            return Err(CliError(
                "--follower-of needs --wal-dir (replication is WAL shipping)".into(),
            ));
        }
        config.follower_of = Some(primary);
    }
    let slow_ms = args.get_or("slow-query-ms", config.slow_query.as_millis() as u64)?;
    config.slow_query = std::time::Duration::from_millis(slow_ms);
    config.slow_log = args.get_or("slow-log", config.slow_log)?;
    if let Some(v) = args.optional("audit-shift") {
        config.audit_shift = if v == "off" {
            None
        } else {
            Some(v.parse().map_err(|_| {
                CliError(format!(
                    "flag --audit-shift has invalid value '{v}' (N or off)"
                ))
            })?)
        };
    }
    if let Some(dir) = args.optional("postmortem-dir") {
        config.postmortem_dir = Some(dir.into());
    }
    let shard = config.shard;
    let follower_of = config.follower_of.clone();
    let server = Server::bind(addr.as_str(), config).map_err(io_err)?;
    println!(
        "serving on {} — domain 2^{log2}, {tables}x{buckets} synopsis, dyadic={dyadic}{}{}",
        server.local_addr(),
        if shard {
            " (shard role: SHARD_QUERY enabled)"
        } else {
            ""
        },
        match &follower_of {
            Some(primary) => format!(" (follower of {primary}: client writes refused)"),
            None => String::new(),
        }
    );
    if let Some(r) = server.recovery() {
        println!(
            "recovery: snapshot={}, replayed {} batches / {} updates from {} segment(s), \
             torn bytes cut {} ({} torn-tail truncation(s)), corrupt snapshots skipped {}",
            if r.snapshot_loaded { "loaded" } else { "none" },
            r.batches_replayed,
            r.updates_replayed,
            r.segments_replayed,
            r.torn_bytes,
            r.torn_tail_truncations,
            r.snapshots_skipped
        );
    }
    println!("press Enter (or close stdin) to drain and stop");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    let (f, g) = server.shutdown().map_err(io_err)?;
    println!(
        "drained: F carries l1 mass {}, G carries l1 mass {}",
        f.l1_mass(),
        g.l1_mass()
    );
    Ok(())
}

/// `ssketch remote-query` — query a running server without streaming
/// anything (used to compare answers across a server crash + restart).
pub fn remote_query(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let mut client = ServerClient::connect_named(addr.as_str(), "ssketch-query").map_err(io_err)?;
    let ans = client.query_join().map_err(io_err)?;
    println!("estimate        : {:.0}", ans.estimate);
    println!(
        "  dense/dense {:.0} | dense/sparse {:.0} | sparse/dense {:.0} | sparse/sparse {:.0}",
        ans.dense_dense, ans.dense_sparse, ans.sparse_dense, ans.sparse_sparse
    );
    println!(
        "  skimmed {} + {} dense values server-side",
        ans.dense_f, ans.dense_g
    );
    client.goodbye().map_err(io_err)?;
    Ok(())
}

/// `ssketch remote-join` — stream two traces to a server and query it.
pub fn remote_join(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let left = args.required("left")?;
    let right = args.required("right")?;
    let chunk = args.get_or("chunk", 8_192usize)?;
    let (dl, fu) = read_trace_file(&left).map_err(io_err)?;
    let (dr, gu) = read_trace_file(&right).map_err(io_err)?;
    if dl != dr {
        return Err(CliError("trace domains differ".into()));
    }
    // A nonzero --client-id turns on sequenced, reconnect-resumable
    // streaming (exactly-once across disconnects and server restarts).
    let client_id = args.get_or("client-id", 0u64)?;
    if client_id != 0 {
        return remote_join_resilient(addr, client_id, &fu, &gu, chunk);
    }
    let mut client = ServerClient::connect_named(addr.as_str(), "ssketch").map_err(io_err)?;
    let info = *client.info();
    if u32::from(info.domain_log2) != dl.log2_size() {
        return Err(CliError(format!(
            "server domain 2^{} does not match trace domain 2^{}",
            info.domain_log2,
            dl.log2_size()
        )));
    }
    let rf = client.send_all(StreamId::F, &fu, chunk).map_err(io_err)?;
    let rg = client.send_all(StreamId::G, &gu, chunk).map_err(io_err)?;
    println!(
        "streamed {} + {} updates ({} batches, {} throttle retries)",
        rf.updates,
        rg.updates,
        rf.batches + rg.batches,
        rf.throttled + rg.throttled
    );
    let ans = client.query_join().map_err(io_err)?;
    println!(
        "served synopsis : {}x{} (seed {}, dyadic={})",
        info.tables, info.buckets, info.seed, info.dyadic
    );
    println!("estimate        : {:.0}", ans.estimate);
    println!(
        "  dense/dense {:.0} | dense/sparse {:.0} | sparse/dense {:.0} | sparse/sparse {:.0}",
        ans.dense_dense, ans.dense_sparse, ans.sparse_dense, ans.sparse_sparse
    );
    println!(
        "  skimmed {} + {} dense values server-side",
        ans.dense_f, ans.dense_g
    );
    client.goodbye().map_err(io_err)?;
    Ok(())
}

/// The `--client-id` arm of [`remote_join`]: sequenced batches through a
/// [`ResilientClient`], surviving disconnects and server restarts.
fn remote_join_resilient(
    addr: String,
    client_id: u64,
    fu: &[stream_model::Update],
    gu: &[stream_model::Update],
    chunk: usize,
) -> Result<(), CliError> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(io_err)?
        .next()
        .ok_or_else(|| CliError(format!("cannot resolve {addr}")))?;
    let config = ClientConfig {
        name: "ssketch-resilient".to_string(),
        client_id,
        ..ClientConfig::default()
    };
    let mut client = ResilientClient::new(sock_addr, config);
    let rf = client.send_all(StreamId::F, fu, chunk).map_err(io_err)?;
    let rg = client.send_all(StreamId::G, gu, chunk).map_err(io_err)?;
    println!(
        "streamed {} + {} updates ({} batches, {} throttle retries) as client {client_id}",
        rf.updates,
        rg.updates,
        rf.batches + rg.batches,
        rf.throttled + rg.throttled
    );
    let ans = client.query_join().map_err(io_err)?;
    println!("estimate        : {:.0}", ans.estimate);
    println!(
        "  dense/dense {:.0} | dense/sparse {:.0} | sparse/dense {:.0} | sparse/sparse {:.0}",
        ans.dense_dense, ans.dense_sparse, ans.sparse_dense, ans.sparse_sparse
    );
    client.goodbye().map_err(io_err)?;
    Ok(())
}

/// `ssketch route` — run a cluster router in front of shard servers
/// (started with `ssketch serve --shard true`) until stdin closes.
pub fn route(args: &Args) -> Result<(), CliError> {
    let addr = args
        .optional("addr")
        .unwrap_or_else(|| "127.0.0.1:7979".into());
    let shards: Vec<String> = args
        .required("shards")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err(CliError(
            "--shards needs a comma-separated list of HOST:PORT".into(),
        ));
    }
    let mut config = RouterConfig::new(shards);
    config.partition_seed = args.get_or("partition-seed", config.partition_seed)?;
    config.handler_threads = args.get_or("handlers", config.handler_threads)?;
    config.retry_budget = args.get_or("retry-budget", config.retry_budget)?;
    if let Some(followers) = args.optional("followers") {
        // One entry per shard in partition order; `-` (or an empty
        // entry) leaves that shard unreplicated.
        config.followers = followers
            .split(',')
            .map(|s| {
                let s = s.trim();
                if s == "-" {
                    String::new()
                } else {
                    s.to_string()
                }
            })
            .collect();
        if config.followers.len() != config.shards.len() {
            return Err(CliError(format!(
                "--followers names {} entries for {} shards (use '-' for none)",
                config.followers.len(),
                config.shards.len()
            )));
        }
    }
    let hb_ms = args.get_or("heartbeat-ms", config.heartbeat_every.as_millis() as u64)?;
    config.heartbeat_every = std::time::Duration::from_millis(hb_ms);
    config.heartbeat_misses = args.get_or("heartbeat-misses", config.heartbeat_misses)?;
    config.wal_segment_bytes = args.get_or("wal-segment-bytes", config.wal_segment_bytes)?;
    let followers = config.followers.clone();
    let router = Router::bind(addr.as_str(), config).map_err(io_err)?;
    let manifest = router.manifest();
    let info = router.info();
    println!(
        "routing on {} — manifest v{}, partition seed {:#x}, domain 2^{}, \
         {}x{} synopsis",
        router.local_addr(),
        manifest.version(),
        manifest.seed(),
        info.domain_log2,
        info.tables,
        info.buckets
    );
    for (i, shard_addr) in manifest.addrs().iter().enumerate() {
        match followers.get(i).filter(|f| !f.is_empty()) {
            Some(f) => println!("  partition {i:>2}: {shard_addr} (follower {f})"),
            None => println!("  partition {i:>2}: {shard_addr}"),
        }
    }
    println!("press Enter (or close stdin) to drain and stop");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    router.shutdown().map_err(io_err)?;
    Ok(())
}

/// `ssketch cluster-join` — stream traces through a cluster router and
/// query the linearity-merged join estimate; prints the shard map first.
pub fn cluster_join(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let chunk = args.get_or("chunk", 8_192usize)?;
    let client_id = args.get_or("client-id", 0u64)?;
    let config = ClientConfig {
        name: "ssketch-cluster".to_string(),
        client_id,
        ..ClientConfig::default()
    };
    let mut client = ServerClient::connect_with(addr.as_str(), config).map_err(io_err)?;
    let map = client.shard_map().map_err(|e| {
        CliError(format!(
            "{addr} does not serve SHARD_MAP — is it a cluster router? ({e})"
        ))
    })?;
    println!(
        "cluster         : manifest v{}, partition seed {:#x}, {} partition(s)",
        map.version,
        map.seed,
        map.shards.len()
    );
    for (i, shard) in map.shards.iter().enumerate() {
        let replica = if shard.follower.is_empty() {
            String::new()
        } else {
            format!(" (follower {}, lag {} B)", shard.follower, shard.lag_bytes)
        };
        println!(
            "  partition {i:>2} [{:>4}] {}{replica}",
            if shard.healthy { "up" } else { "DOWN" },
            shard.addr
        );
    }
    match (args.optional("left"), args.optional("right")) {
        (None, None) => {}
        (Some(left), Some(right)) => {
            let (dl, fu) = read_trace_file(&left).map_err(io_err)?;
            let (dr, gu) = read_trace_file(&right).map_err(io_err)?;
            if dl != dr {
                return Err(CliError("trace domains differ".into()));
            }
            if u32::from(client.info().domain_log2) != dl.log2_size() {
                return Err(CliError(format!(
                    "cluster domain 2^{} does not match trace domain 2^{}",
                    client.info().domain_log2,
                    dl.log2_size()
                )));
            }
            let rf = client.send_all(StreamId::F, &fu, chunk).map_err(io_err)?;
            let rg = client.send_all(StreamId::G, &gu, chunk).map_err(io_err)?;
            println!(
                "streamed {} + {} updates ({} batches, {} throttle retries){}",
                rf.updates,
                rg.updates,
                rf.batches + rg.batches,
                rf.throttled + rg.throttled,
                if client_id != 0 {
                    format!(" as client {client_id}")
                } else {
                    String::new()
                }
            );
        }
        _ => return Err(CliError("--left and --right must be given together".into())),
    }
    let ans = client.query_join().map_err(io_err)?;
    println!("estimate        : {:.0}", ans.estimate);
    println!(
        "  dense/dense {:.0} | dense/sparse {:.0} | sparse/dense {:.0} | sparse/sparse {:.0}",
        ans.dense_dense, ans.dense_sparse, ans.sparse_dense, ans.sparse_sparse
    );
    println!(
        "  skimmed {} + {} dense values from the merged sketches",
        ans.dense_f, ans.dense_g
    );
    client.goodbye().map_err(io_err)?;
    Ok(())
}

/// `ssketch top` — one-shot introspection snapshot of a running server:
/// uptime, telemetry metrics, the slow-query log, and the online §5.1
/// accuracy audit, all over a single INSPECT round trip.
pub fn top(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let events = args.get_or("events", 8u32)?;
    let slow = args.get_or("slow", 16u32)?;
    let mut client = ServerClient::connect_named(addr.as_str(), "ssketch-top").map_err(io_err)?;
    let report = client.inspect(INSPECT_ALL, events, slow).map_err(io_err)?;

    println!("uptime          : {:.1}s", report.uptime_ns as f64 / 1e9);
    if report.metrics_json.is_empty() {
        println!("metrics         : (telemetry compiled out on the server)");
    } else {
        println!("metrics         :");
        for line in report.metrics_json.lines() {
            println!("  {line}");
        }
    }
    println!("slow queries    : {} (newest last)", report.slow.len());
    for e in &report.slow {
        println!(
            "  +{:>9.3}s kind {:>2}  total {:>8}us  snapshot {:>6}us  \
             estimate {:>6}us  encode {:>6}us  trace {:016x}",
            e.ts_ns as f64 / 1e9,
            e.kind,
            e.total_ns / 1_000,
            e.snapshot_ns / 1_000,
            e.estimate_ns / 1_000,
            e.encode_ns / 1_000,
            e.trace_id
        );
    }
    match &report.audit {
        None => println!("accuracy audit  : (disabled or telemetry compiled out)"),
        Some(a) => {
            println!(
                "accuracy audit  : {} sampled keys, {} comparisons",
                a.sampled_keys, a.comparisons
            );
            println!(
                "  ratio error mean {:.4}  p50 {:.4}  p95 {:.4}  p99 {:.4}  \
                 max {:.4} (value {})",
                a.mean_ratio_error, a.p50, a.p95, a.p99, a.max, a.worst_value
            );
        }
    }
    println!("recent events   : {} (newest last)", report.events.len());
    for e in &report.events {
        println!(
            "  {:>12}ns {:<14} {:7} trace {:016x} span {:016x} arg {}",
            e.ts_ns,
            ss_trace::Phase::from_code(e.phase).name(),
            match e.kind {
                0 => "begin",
                1 => "end",
                _ => "instant",
            },
            e.trace_id,
            e.span_id,
            e.arg
        );
    }

    // When `addr` is a cluster router, add one row per shard. A plain
    // server rejects SHARD_MAP with a protocol error and drops the
    // connection, so this probe goes last and skips the goodbye then.
    match client.shard_map() {
        Err(_) => {}
        Ok(map) => {
            println!(
                "cluster         : manifest v{}, {} partition(s)",
                map.version,
                map.shards.len()
            );
            for (i, shard) in map.shards.iter().enumerate() {
                let detail = match ServerClient::connect_named(shard.addr.as_str(), "ssketch-top") {
                    Ok(mut shard_client) => {
                        let r = shard_client.inspect(INSPECT_ALL, 0, 0).map_err(io_err)?;
                        let _ = shard_client.goodbye();
                        format!("uptime {:.1}s", r.uptime_ns as f64 / 1e9)
                    }
                    Err(e) => format!("unreachable: {e}"),
                };
                let replica = if shard.follower.is_empty() {
                    "replica -".to_string()
                } else {
                    format!("replica {} lag {:>8} B", shard.follower, shard.lag_bytes)
                };
                println!(
                    "  partition {i:>2} [{:>4}] {:<21} {replica}  {detail}",
                    if shard.healthy { "up" } else { "DOWN" },
                    shard.addr
                );
            }
            client.goodbye().map_err(io_err)?;
        }
    }
    Ok(())
}

/// `ssketch trace` — run traced requests against a server, then merge
/// this process's flight recorder with the server's (via INSPECT) and
/// export the causally-connected view as Chrome trace JSON or JSON
/// lines.
pub fn trace(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let chrome = args.optional("chrome");
    let jsonl = args.optional("jsonl");
    let queries = args.get_or("queries", 1usize)?;
    let n = args.get_or("updates", 0u64)?;
    let chunk = args.get_or("chunk", 8_192usize)?;
    if !ss_trace::ENABLED {
        println!(
            "note: telemetry is compiled out of this build — requests go \
             untraced and exports carry only what the server volunteers"
        );
    }
    let config = ClientConfig {
        name: "ssketch-trace".to_string(),
        trace: true,
        ..ClientConfig::default()
    };
    let mut client = ServerClient::connect_with(addr.as_str(), config).map_err(io_err)?;
    let mut traces: Vec<u64> = Vec::new();
    if n > 0 {
        let domain = 1u64 << client.info().domain_log2;
        let ups: Vec<Update> = (0..n).map(|i| Update::insert(i % domain)).collect();
        for stream in [StreamId::F, StreamId::G] {
            client.send_all(stream, &ups, chunk).map_err(io_err)?;
            traces.push(client.last_trace_id());
        }
        println!("streamed {n} synthetic updates to each stream");
    }
    let mut answer = None;
    for _ in 0..queries.max(1) {
        answer = Some(client.query_join().map_err(io_err)?);
        traces.push(client.last_trace_id());
    }
    if let Some(ans) = answer {
        println!("estimate        : {:.0}", ans.estimate);
    }

    let report = client.inspect(INSPECT_EVENTS, 0, 0).map_err(io_err)?;
    client.goodbye().map_err(io_err)?;

    // Keep only the traces this invocation minted (everything, when the
    // build records nothing and all ids are zero).
    let ours = |id: u64| !ss_trace::ENABLED || traces.contains(&id);
    let client_events: Vec<ss_trace::TraceEvent> = ss_trace::recent_events(0)
        .into_iter()
        .filter(|e| ours(e.trace_id))
        .collect();
    let server_events: Vec<ss_trace::TraceEvent> = report
        .events
        .iter()
        .filter(|e| ours(e.trace_id))
        .map(|e| ss_trace::TraceEvent {
            ts_ns: e.ts_ns,
            trace_id: e.trace_id,
            span_id: e.span_id,
            parent_id: e.parent_id,
            phase: e.phase,
            kind: e.kind,
            thread: e.thread,
            arg: e.arg,
        })
        .collect();
    for id in &traces {
        println!("trace           : {id:016x}");
    }
    println!(
        "events          : {} client-side, {} server-side",
        client_events.len(),
        server_events.len()
    );
    if let Some(path) = chrome {
        let doc =
            ss_trace::chrome_trace_json(&[("client", &client_events), ("server", &server_events)]);
        std::fs::write(&path, doc).map_err(io_err)?;
        println!("chrome trace    : {path} (load via chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = jsonl {
        let mut text = ss_trace::json_lines(&client_events);
        text.push_str(&ss_trace::json_lines(&server_events));
        std::fs::write(&path, text).map_err(io_err)?;
        println!("json lines      : {path}");
    }
    Ok(())
}

/// `ssketch join-sketches` — bucket-product estimate from sketch files.
pub fn join_sketches(args: &Args) -> Result<(), CliError> {
    let left = args.required("left")?;
    let right = args.required("right")?;
    let lf = std::fs::read(&left).map_err(io_err)?;
    let rf = std::fs::read(&right).map_err(io_err)?;
    let a = decode_hash(lf.into()).map_err(io_err)?;
    let b = decode_hash(rf.into()).map_err(io_err)?;
    let schema = a.schema();
    if schema.seed() != b.schema().seed()
        || schema.tables() != b.schema().tables()
        || schema.buckets() != b.schema().buckets()
    {
        return Err(CliError(
            "sketches were built with different shapes or seeds and cannot be joined".into(),
        ));
    }
    println!(
        "estimate: {:.0}  ({}x{} hash sketches)",
        a.join_estimate(&b),
        schema.tables(),
        schema.buckets()
    );
    Ok(())
}
