//! `ssketch` — command-line front end to the skimmed-sketches workspace.
//!
//! One binary for the whole offline workflow: generate workload traces,
//! inspect them, sketch them, and estimate join aggregates — each step
//! persisted to files, so multi-gigabyte streams never need to be held
//! in memory together.
//!
//! ```text
//! ssketch generate --kind zipf --z 1.0 --shift 100 --domain-log2 16 \
//!                  --n 500000 --seed 1 --out f.trace
//! ssketch generate --kind zipf --z 1.0 --shift 200 --domain-log2 16 \
//!                  --n 500000 --seed 2 --out g.trace
//! ssketch stats    --trace f.trace
//! ssketch join     --left f.trace --right g.trace --tables 7 --buckets 512
//! ssketch exact    --left f.trace --right g.trace
//! ssketch hh       --trace f.trace --tables 7 --buckets 512
//! ssketch sketch   --trace f.trace --tables 7 --buckets 512 --out f.sketch
//! ssketch join-sketches --left f.sketch --right g.sketch
//! ```

mod cli;
mod commands;

use cli::CliError;

fn usage() -> &'static str {
    "ssketch — skimmed-sketch stream join estimation\n\
     \n\
     USAGE: ssketch <command> [--flag value]...\n\
     \n\
     COMMANDS\n\
     generate        synthesize a workload trace file\n\
         --kind zipf|census|uniform   workload family (default zipf)\n\
         --domain-log2 N              log2 of the value domain (default 16)\n\
         --n N                        number of elements (default 100000)\n\
         --z Z                        zipf skew (default 1.0)\n\
         --shift S                    right shift (default 0)\n\
         --seed S                     rng seed (default 1)\n\
         --out PATH                   output trace (required)\n\
     stats           print workload statistics of a trace\n\
         --trace PATH\n\
     exact           exact join size of two traces (reference)\n\
         --left PATH --right PATH\n\
     join            skimmed-sketch join estimate from two traces\n\
         --left PATH --right PATH\n\
         --tables N --buckets N --seed S   synopsis shape (7/512/42)\n\
         --dyadic true|false               extraction strategy (false)\n\
     hh              heavy hitters of a trace via SKIMDENSE\n\
         --trace PATH --tables N --buckets N --seed S --top K\n\
     sketch          build a hash sketch from a trace, write to file\n\
         --trace PATH --tables N --buckets N --seed S --out PATH\n\
     join-sketches   bucket-product join estimate from two sketch files\n\
         --left PATH --right PATH\n\
     skim-sketch     build a full skimmed sketch file from a trace\n\
         --trace PATH --tables N --buckets N --seed S --dyadic BOOL --out PATH\n\
     join-skimmed    ESTSKIMJOINSIZE from two skimmed-sketch files\n\
         --left PATH --right PATH\n\
     serve           run the TCP serving layer (stops when stdin closes)\n\
         --addr HOST:PORT                  listen address (127.0.0.1:7878)\n\
         --domain-log2 N                   log2 of the value domain (16)\n\
         --tables N --buckets N --seed S   synopsis shape (7/512/42)\n\
         --dyadic true|false               extraction strategy (false)\n\
         --handlers N --workers N          thread counts (4 / 2)\n\
         --queue-depth N --max-batch N     backpressure knobs (8 / 65536)\n\
         --wal-dir PATH                    write-ahead log + crash recovery (off)\n\
         --wal-segment-bytes N             segment rotation size (64 MiB)\n\
         --wal-snapshot-every N            batches between snapshots (4096)\n\
         --wal-fsync true|false            fsync every append (false)\n\
         --slow-query-ms N                 slow-query log threshold (100; 0 logs all)\n\
         --slow-log N                      slow-query entries retained (64)\n\
         --audit-shift N|off               accuracy-audit sampling: keep 2^-N of keys (6)\n\
         --postmortem-dir PATH             flight-recorder dumps on panic/halt (off)\n\
         --shard true|false                shard role: serve SHARD_QUERY to routers (false)\n\
         --follower-of HOST:PORT           replicate from that primary's WAL; refuse client\n\
                                           writes until PROMOTEd (needs --wal-dir)\n\
     route           run a cluster router over shard servers (stops when stdin closes)\n\
         --addr HOST:PORT                  listen address (127.0.0.1:7979)\n\
         --shards A:P,B:P,...              shard addresses in partition order (required)\n\
         --followers A:P,-,...             follower per shard ('-' = none); enables\n\
                                           heartbeat failure detection + auto-failover\n\
         --heartbeat-ms N                  heartbeat probe interval (150)\n\
         --heartbeat-misses N              consecutive misses before failover (3)\n\
         --wal-segment-bytes N             shards' WAL segment size, for lag estimates (64 MiB)\n\
         --partition-seed S                partitioning hash seed (pinned default)\n\
         --handlers N                      connection-handler threads (4)\n\
         --retry-budget N                  shard attempts before degraded replies (5)\n\
     cluster-join    shard map + merged join estimate from a cluster router\n\
         --addr HOST:PORT\n\
         --left PATH --right PATH          optional traces to stream first\n\
         --chunk N                         updates per UPDATE_BATCH (8192)\n\
         --client-id N                     nonzero: sequenced, dedup-protected streaming (0)\n\
     remote-join     stream two traces to a server and query the join\n\
         --addr HOST:PORT --left PATH --right PATH\n\
         --chunk N                         updates per UPDATE_BATCH (8192)\n\
         --client-id N                     nonzero: sequenced + reconnect-resumable (0)\n\
     remote-query    query a running server's join estimate (no streaming)\n\
         --addr HOST:PORT\n\
     top             one-shot INSPECT snapshot of a running server\n\
                     (adds one row per shard — with replica + lag — when\n\
                     --addr is a cluster router)\n\
         --addr HOST:PORT\n\
         --events N                        recent flight-recorder events shown (8)\n\
         --slow N                          slow-query entries shown (16)\n\
     trace           traced requests + merged client/server trace export\n\
         --addr HOST:PORT\n\
         --queries N                       traced QUERY_JOIN round trips (1)\n\
         --updates N                       synthetic updates per stream first (0)\n\
         --chunk N                         updates per UPDATE_BATCH (8192)\n\
         --chrome PATH                     write merged Chrome trace JSON\n\
         --jsonl PATH                      write merged JSON-lines events\n\
     help            this text\n"
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    let result: Result<(), CliError> = (|| {
        let args = cli::Args::parse(rest)?;
        match cmd.as_str() {
            "generate" => commands::generate(&args)?,
            "stats" => commands::stats(&args)?,
            "exact" => commands::exact(&args)?,
            "join" => commands::join(&args)?,
            "hh" => commands::heavy_hitters(&args)?,
            "sketch" => commands::sketch(&args)?,
            "skim-sketch" => commands::skim_sketch(&args)?,
            "join-skimmed" => commands::join_skimmed(&args)?,
            "join-sketches" => commands::join_sketches(&args)?,
            "serve" => commands::serve(&args)?,
            "route" => commands::route(&args)?,
            "cluster-join" => commands::cluster_join(&args)?,
            "remote-join" => commands::remote_join(&args)?,
            "remote-query" => commands::remote_query(&args)?,
            "top" => commands::top(&args)?,
            "trace" => commands::trace(&args)?,
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => {
                return Err(CliError(format!(
                    "unknown command '{other}'\n\n{}",
                    usage()
                )))
            }
        }
        args.finish()
    })();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
