//! Event exporters: Chrome trace JSON (`chrome://tracing` / Perfetto's
//! legacy loader) and plain JSON lines. Hand-rolled serialisation — the
//! event model is flat and fixed, and the build environment is offline,
//! so no JSON dependency is warranted.
//!
//! Both exporters are compiled in every feature configuration: an
//! uninstrumented client still renders events it received over INSPECT
//! from an instrumented server.

use crate::{EventKind, Phase, TraceEvent};

/// Escapes `s` as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nanoseconds → Chrome's microsecond timestamps, with the sub-µs part
/// kept as decimals so event order survives the unit change.
fn micros(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

fn event_args(e: &TraceEvent) -> String {
    format!(
        "{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\"arg\":{}}}",
        e.trace_id, e.span_id, e.parent_id, e.arg
    )
}

/// Renders named event groups as one Chrome trace JSON document (the
/// "JSON array format"). Each `(label, events)` pair becomes one
/// process in the viewer — e.g. `[("client", …), ("server", …)]` for a
/// merged end-to-end trace — with recorder threads as tracks.
pub fn chrome_trace_json(parts: &[(&str, &[TraceEvent])]) -> String {
    let mut items: Vec<String> = Vec::new();
    for (pid0, (label, events)) in parts.iter().enumerate() {
        let pid = pid0 + 1;
        items.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json_string(label)
        ));
        for e in *events {
            let name = json_string(Phase::from_code(e.phase).name());
            let ts = micros(e.ts_ns);
            let tid = e.thread;
            let item = match EventKind::from_code(e.kind) {
                EventKind::Begin => format!(
                    "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":{name},\"args\":{}}}",
                    event_args(e)
                ),
                EventKind::End => format!(
                    "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":{name}}}"
                ),
                EventKind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":{name},\"s\":\"t\",\"args\":{}}}",
                    event_args(e)
                ),
            };
            items.push(item);
        }
    }
    format!("[{}]", items.join(",\n"))
}

/// Renders events as JSON lines: one flat object per event, ids in hex
/// (JSON numbers lose precision past 2⁵³), oldest first. This is the
/// post-mortem dump format and the `ssketch trace --jsonl` output.
pub fn json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match EventKind::from_code(e.kind) {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        out.push_str(&format!(
            "{{\"ts_ns\":{},\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\
             \"phase\":{},\"kind\":\"{}\",\"thread\":{},\"arg\":{}}}\n",
            e.ts_ns,
            e.trace_id,
            e.span_id,
            e.parent_id,
            json_string(Phase::from_code(e.phase).name()),
            kind,
            e.thread,
            e.arg
        ));
    }
    out
}
