//! # ss-trace
//!
//! The flight recorder behind the serving layer's causal request
//! tracing. Each thread that records events owns a fixed-size ring
//! buffer of typed span events ([`TraceEvent`]): begin/end pairs and
//! instants carrying a trace id, parent span id, a [`Phase`] tag, and a
//! nanosecond timestamp on a process-wide monotonic epoch. Recording
//! costs a handful of atomic stores and never blocks; readers
//! ([`recent_events`], the INSPECT handler, post-mortem dumps) detect
//! concurrently overwritten slots with a per-slot sequence word and drop
//! them instead of observing torn events.
//!
//! ## Memory bound
//!
//! A ring holds [`RING_EVENTS`] events of [`SLOT_WORDS`] 8-byte words:
//! 4096 × 7 × 8 = 224 KiB per recording thread, allocated lazily on the
//! thread's first event and never resized. A process with `h` handler
//! threads and `w` ingest workers tops out at `(h + w + 2) × 224 KiB`
//! of recorder memory regardless of uptime or event rate.
//!
//! ## Feature gating
//!
//! With the `enabled` feature off (the workspace's
//! `--no-default-features` configuration) every recording entry point is
//! an inline empty function, [`SpanGuard`] is a zero-sized type, and no
//! ring is ever allocated — the contract test asserts the sizes. The
//! event model and the exporters ([`chrome_trace_json`],
//! [`json_lines`]) remain available so an uninstrumented client can
//! still render events served by an instrumented peer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod export;
mod recorder;

pub use export::{chrome_trace_json, json_lines};
pub use recorder::{
    instant, new_trace_id, now_ns, postmortem, recent_events, set_postmortem_path, span, SpanGuard,
};

/// `true` when the crate was built with the `enabled` feature, i.e.
/// recording is compiled in. Callers branch on this `const` to let the
/// optimizer delete whole traced paths in uninstrumented builds.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Events per thread ring. Power of two; oldest events are overwritten.
pub const RING_EVENTS: usize = 4096;

/// 8-byte words per ring slot (sequence word + 6 event fields).
pub const SLOT_WORDS: usize = 7;

/// What a span event describes. Stored as a `u8` code on the wire and
/// in the ring; unknown codes survive round trips as [`Phase::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Anything this build cannot name (forward compatibility).
    Other = 0,
    /// A client-side request, from first byte written to reply decoded.
    Request = 1,
    /// A server handler processing one request frame.
    Handler = 2,
    /// Hand-off of a batch chunk into the ingest pool (instant).
    Queue = 3,
    /// An ingest worker applying a chunk to its local sketch.
    Ingest = 4,
    /// Appending a batch record to the write-ahead log.
    WalAppend = 5,
    /// Acquiring linearizable sketch snapshots for a query.
    Snapshot = 6,
    /// A worker cloning its local sketch for a snapshot.
    SnapshotClone = 7,
    /// Running the join/self-join estimator over the snapshots.
    Estimate = 8,
    /// Encoding and writing a reply frame.
    Encode = 9,
    /// The online accuracy audit pass.
    Audit = 10,
}

impl Phase {
    /// The wire/ring code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a code, mapping unknown values to [`Phase::Other`].
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => Phase::Request,
            2 => Phase::Handler,
            3 => Phase::Queue,
            4 => Phase::Ingest,
            5 => Phase::WalAppend,
            6 => Phase::Snapshot,
            7 => Phase::SnapshotClone,
            8 => Phase::Estimate,
            9 => Phase::Encode,
            10 => Phase::Audit,
            _ => Phase::Other,
        }
    }

    /// Stable lowercase name, used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::Request => "request",
            Phase::Handler => "handler",
            Phase::Queue => "queue",
            Phase::Ingest => "ingest",
            Phase::WalAppend => "wal_append",
            Phase::Snapshot => "snapshot",
            Phase::SnapshotClone => "snapshot_clone",
            Phase::Estimate => "estimate",
            Phase::Encode => "encode",
            Phase::Audit => "audit",
        }
    }
}

/// Event kind codes: `0` span begin, `1` span end, `2` instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened.
    Begin = 0,
    /// A span closed.
    End = 1,
    /// A point-in-time marker.
    Instant = 2,
}

impl EventKind {
    /// Decodes a code; unknown codes read as instants (harmless in both
    /// exporters).
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => EventKind::Begin,
            1 => EventKind::End,
            _ => EventKind::Instant,
        }
    }
}

/// One recorded event. Plain data in both feature configurations —
/// INSPECT replies are converted into this type for export regardless
/// of whether the local build records anything itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process recorder epoch.
    pub ts_ns: u64,
    /// The trace this event belongs to (0 = untraced background work).
    pub trace_id: u64,
    /// The event's own span id (for instants: the enclosing span).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// [`Phase`] code.
    pub phase: u8,
    /// [`EventKind`] code.
    pub kind: u8,
    /// Recorder thread index (registration order within the process).
    pub thread: u32,
    /// Free-form argument: batch length, payload bytes, …
    pub arg: u64,
}
