//! The recording half: per-thread seqlock rings, span guards, trace-id
//! allocation, and post-mortem dumps. Everything here compiles to
//! inline no-ops (and zero-sized types) without the `enabled` feature.

#[cfg(feature = "enabled")]
pub use enabled::*;

#[cfg(not(feature = "enabled"))]
pub use disabled::*;

#[cfg(feature = "enabled")]
mod enabled {
    use crate::{EventKind, Phase, TraceEvent, RING_EVENTS, SLOT_WORDS};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// One thread's ring. The owning thread is the only writer; any
    /// thread may read. Each slot is a miniature seqlock: the sequence
    /// word is `2·idx + 1` while the slot is being written and
    /// `2·idx + 2` once stable, where `idx` is the global event index —
    /// a reader that sees an odd word, a mismatched pair, or a zero
    /// skips the slot, so overwritten slots are dropped rather than
    /// read torn.
    struct Ring {
        thread: u32,
        /// Next event index; written only by the owner, read by anyone.
        cursor: AtomicU64,
        /// `RING_EVENTS × SLOT_WORDS` words: per slot
        /// `[seq, ts, trace, span, parent, phase|kind|thread, arg]`.
        words: Box<[AtomicU64]>,
    }

    impl Ring {
        fn new(thread: u32) -> Self {
            let mut words = Vec::with_capacity(RING_EVENTS * SLOT_WORDS);
            words.resize_with(RING_EVENTS * SLOT_WORDS, || AtomicU64::new(0));
            Ring {
                thread,
                cursor: AtomicU64::new(0),
                words: words.into_boxed_slice(),
            }
        }

        /// Packs phase, kind, and thread into one word.
        fn meta(&self, phase: Phase, kind: EventKind) -> u64 {
            u64::from(phase.code()) | (u64::from(kind as u8) << 8) | (u64::from(self.thread) << 32)
        }

        fn record(&self, ev: &TraceEvent, kind: EventKind) {
            // ordering: single-writer counter; the Release store below
            // publishes the slot, the cursor itself needs no edge here.
            let idx = self.cursor.load(Ordering::Relaxed);
            let base = (idx as usize % RING_EVENTS) * SLOT_WORDS;
            let Some([seq, ts, trace, span, parent, meta, arg]) =
                self.words.get(base..base + SLOT_WORDS)
            else {
                return;
            };
            // ordering: mark the slot in-flight before the field stores;
            // readers only need to *detect* the overlap, not order it —
            // the stable-store below carries the Release edge.
            seq.store(idx * 2 + 1, Ordering::Relaxed);
            // ordering: field stores are published by the Release on the
            // sequence word; readers re-check it after loading them.
            ts.store(ev.ts_ns, Ordering::Relaxed);
            // ordering: see `ts` above.
            trace.store(ev.trace_id, Ordering::Relaxed);
            // ordering: see `ts` above.
            span.store(ev.span_id, Ordering::Relaxed);
            // ordering: see `ts` above.
            parent.store(ev.parent_id, Ordering::Relaxed);
            meta.store(
                self.meta(Phase::from_code(ev.phase), kind),
                Ordering::Relaxed, // ordering: see `ts` above.
            );
            // ordering: see `ts` above.
            arg.store(ev.arg, Ordering::Relaxed);
            seq.store(idx * 2 + 2, Ordering::Release);
            // ordering: owner-only increment; publication rides the
            // Release store on the sequence word.
            self.cursor.store(idx + 1, Ordering::Relaxed);
        }

        /// Reads every stable slot into `out` (skipping slots being
        /// overwritten concurrently).
        fn collect_into(&self, out: &mut Vec<TraceEvent>) {
            // ordering: pairs with the Release publication of each slot.
            let cursor = self.cursor.load(Ordering::Acquire);
            let n = (cursor as usize).min(RING_EVENTS);
            for idx in (cursor - n as u64)..cursor {
                let base = (idx as usize % RING_EVENTS) * SLOT_WORDS;
                let Some([seq, ts, trace, span, parent, meta, arg]) =
                    self.words.get(base..base + SLOT_WORDS)
                else {
                    continue;
                };
                let s1 = seq.load(Ordering::Acquire);
                if s1 != idx * 2 + 2 {
                    continue; // overwritten or in-flight
                }
                // Acquire loads keep the field reads between the two
                // sequence-word checks.
                let m = meta.load(Ordering::Acquire);
                let event = TraceEvent {
                    ts_ns: ts.load(Ordering::Acquire),
                    trace_id: trace.load(Ordering::Acquire),
                    span_id: span.load(Ordering::Acquire),
                    parent_id: parent.load(Ordering::Acquire),
                    phase: (m & 0xFF) as u8,
                    kind: ((m >> 8) & 0xFF) as u8,
                    thread: (m >> 32) as u32,
                    arg: arg.load(Ordering::Acquire),
                };
                let s2 = seq.load(Ordering::Acquire);
                if s1 == s2 {
                    out.push(event);
                }
            }
        }
    }

    /// Registry of every ring ever created, so readers can sweep all
    /// threads. Rings are never removed: a dead thread's tail events
    /// stay inspectable, which is exactly what a post-mortem wants.
    ///
    /// The mutex guards ring *registration* (once per thread lifetime)
    /// and reader-side sweeps — the record path never touches it.
    // ss-analyze: allow(a4-blocking-hot-path) -- locked at thread registration and by inspection sweeps only; every recorded event is lock-free
    type RingRegistry = Mutex<Vec<Arc<Ring>>>;

    fn registry() -> &'static RingRegistry {
        static REGISTRY: OnceLock<RingRegistry> = OnceLock::new();
        REGISTRY.get_or_init(Default::default)
    }

    thread_local! {
        static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    }

    fn with_ring<F: FnOnce(&Ring)>(f: F) {
        RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                // Taken once per thread lifetime, at ring registration;
                // every recorded event thereafter is lock-free.
                let mut regs = registry().lock().unwrap_or_else(|p| p.into_inner());
                let ring = Arc::new(Ring::new(regs.len() as u32));
                regs.push(Arc::clone(&ring));
                ring
            });
            f(ring);
        });
    }

    fn epoch() -> &'static Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now)
    }

    /// Nanoseconds since the process recorder epoch (the first call in
    /// the process). Shared by every thread, so per-thread events
    /// interleave on one timeline.
    pub fn now_ns() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    /// SplitMix64 finalizer: decorrelates sequential counter values
    /// into well-spread ids.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn id_seed() -> u64 {
        static SEED: OnceLock<u64> = OnceLock::new();
        *SEED.get_or_init(|| {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            mix(t ^ (u64::from(std::process::id()) << 32))
        })
    }

    /// Allocates a fresh id: unique within the process by a counter,
    /// decorrelated across processes by a per-process seed, and odd so
    /// it can never collide with the reserved 0 ("no trace" / "root").
    fn next_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        // ordering: uniqueness only; no data is published through this.
        mix(id_seed() ^ NEXT.fetch_add(1, Ordering::Relaxed)) | 1
    }

    /// Allocates a fresh trace id (odd, never 0).
    pub fn new_trace_id() -> u64 {
        next_id()
    }

    /// RAII span: records a begin event now and the matching end event
    /// on drop. Obtain via [`span`].
    pub struct SpanGuard {
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        phase: Phase,
    }

    impl SpanGuard {
        /// The span's id — the parent for child spans and for the
        /// trace context stamped on outgoing frames.
        pub fn id(&self) -> u64 {
            self.span_id
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            record(
                self.phase,
                EventKind::End,
                self.trace_id,
                self.span_id,
                self.parent_id,
                0,
            );
        }
    }

    fn record(
        phase: Phase,
        kind: EventKind,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        arg: u64,
    ) {
        let ev = TraceEvent {
            ts_ns: now_ns(),
            trace_id,
            span_id,
            parent_id,
            phase: phase.code(),
            kind: kind as u8,
            thread: 0, // stamped by the ring
            arg,
        };
        with_ring(|ring| ring.record(&ev, kind));
    }

    /// Opens a span: records a begin event and returns the guard whose
    /// drop records the end. `parent_id = 0` starts a root span.
    pub fn span(phase: Phase, trace_id: u64, parent_id: u64, arg: u64) -> SpanGuard {
        let span_id = next_id();
        record(phase, EventKind::Begin, trace_id, span_id, parent_id, arg);
        SpanGuard {
            trace_id,
            span_id,
            parent_id,
            phase,
        }
    }

    /// Records a point-in-time event inside `span_id`.
    pub fn instant(phase: Phase, trace_id: u64, span_id: u64, arg: u64) {
        record(phase, EventKind::Instant, trace_id, span_id, 0, arg);
    }

    /// Sweeps every thread ring and returns the most recent events,
    /// oldest first. `limit = 0` means "everything still buffered".
    pub fn recent_events(limit: usize) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = {
            // Reader-side sweep (INSPECT / post-mortem), never on the
            // record path.
            let regs = registry().lock().unwrap_or_else(|p| p.into_inner());
            regs.clone()
        };
        let mut out = Vec::new();
        for ring in rings {
            ring.collect_into(&mut out);
        }
        out.sort_by_key(|e| e.ts_ns);
        if limit > 0 && out.len() > limit {
            out.drain(..out.len() - limit);
        }
        out
    }

    // ss-analyze: allow(a4-blocking-hot-path) -- configuration cell, written once at server start and read only when a dump fires
    static POSTMORTEM_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

    /// Configures where [`postmortem`] writes its dump. Unset by
    /// default, in which case dumps are skipped.
    pub fn set_postmortem_path(path: &Path) {
        let mut slot = POSTMORTEM_PATH.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(path.to_path_buf());
    }

    /// Dumps the flight recorder to the configured post-mortem file
    /// (JSON lines: one `{"postmortem": reason, …}` header, then the
    /// buffered events) and returns the path written. Appends, so
    /// repeated dumps — say, several supervised worker panics —
    /// accumulate with their headers instead of clobbering each other.
    /// Returns `None` when no path is configured or the write fails:
    /// the dump is best-effort and must never turn a crash path into a
    /// second crash.
    pub fn postmortem(reason: &str) -> Option<PathBuf> {
        let path = {
            let slot = POSTMORTEM_PATH.lock().unwrap_or_else(|p| p.into_inner());
            slot.clone()?
        };
        let events = recent_events(0);
        let mut doc = format!(
            "{{\"postmortem\":{},\"ts_ns\":{},\"events\":{}}}\n",
            crate::export::json_string(reason),
            now_ns(),
            events.len()
        );
        doc.push_str(&crate::export::json_lines(&events));
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()?;
        f.write_all(doc.as_bytes()).ok()?;
        f.flush().ok()?;
        Some(path)
    }
}

#[cfg(not(feature = "enabled"))]
mod disabled {
    use crate::{Phase, TraceEvent};
    use std::path::{Path, PathBuf};

    /// Zero-sized stand-in for the recording span guard.
    pub struct SpanGuard;

    impl SpanGuard {
        /// Always 0 ("no span") in uninstrumented builds.
        #[inline(always)]
        pub fn id(&self) -> u64 {
            0
        }
    }

    // Both configurations expose the same drop-to-end-span contract, so
    // callers can `drop(guard)` without config-dependent lint noise.
    impl Drop for SpanGuard {
        #[inline(always)]
        fn drop(&mut self) {}
    }

    /// No-op: uninstrumented builds have no timeline.
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Always 0 ("no trace"): callers gate stamping on [`crate::ENABLED`].
    #[inline(always)]
    pub fn new_trace_id() -> u64 {
        0
    }

    /// No-op span.
    #[inline(always)]
    pub fn span(_phase: Phase, _trace_id: u64, _parent_id: u64, _arg: u64) -> SpanGuard {
        SpanGuard
    }

    /// No-op instant.
    #[inline(always)]
    pub fn instant(_phase: Phase, _trace_id: u64, _span_id: u64, _arg: u64) {}

    /// Always empty: nothing records.
    #[inline(always)]
    pub fn recent_events(_limit: usize) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// No-op: there is no recorder to dump.
    #[inline(always)]
    pub fn set_postmortem_path(_path: &Path) {}

    /// Always `None`: there is no recorder to dump.
    #[inline(always)]
    pub fn postmortem(_reason: &str) -> Option<PathBuf> {
        None
    }
}
