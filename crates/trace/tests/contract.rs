//! The feature contract: with `enabled` off every recording type is a
//! ZST and every entry point a no-op; with it on, events land in the
//! ring, sweep out in order, and export as valid JSON.

use ss_trace::{EventKind, Phase, TraceEvent};

/// Minimal JSON syntax checker: validates one value (object / array /
/// string / number / literal) and that nothing trails it. Enough to
/// prove the hand-rolled exporters emit structurally valid documents.
fn check_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    ws(b, i);
                    string(b, i)?;
                    ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    *i += 1;
                    value(b, i)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                Ok(())
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if b[*i..].starts_with(lit.as_bytes()) {
                        *i += lit.len();
                        return Ok(());
                    }
                }
                Err(format!("unexpected byte at {i}"))
            }
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }
    value(b, &mut i)?;
    ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at {i}"));
    }
    Ok(())
}

fn sample_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent {
            ts_ns: 1000,
            trace_id: 0xAB,
            span_id: 1,
            parent_id: 0,
            phase: Phase::Request.code(),
            kind: EventKind::Begin as u8,
            thread: 0,
            arg: 64,
        },
        TraceEvent {
            ts_ns: 1500,
            trace_id: 0xAB,
            span_id: 2,
            parent_id: 1,
            phase: Phase::Queue.code(),
            kind: EventKind::Instant as u8,
            thread: 1,
            arg: 0,
        },
        TraceEvent {
            ts_ns: 2000,
            trace_id: 0xAB,
            span_id: 1,
            parent_id: 0,
            phase: Phase::Request.code(),
            kind: EventKind::End as u8,
            thread: 0,
            arg: 0,
        },
    ]
}

#[test]
fn chrome_export_is_valid_json_in_both_configs() {
    let events = sample_events();
    let doc = ss_trace::chrome_trace_json(&[("client", &events), ("server", &[])]);
    check_json(&doc).expect("chrome trace JSON must parse");
    assert!(doc.contains("\"ph\":\"B\""));
    assert!(doc.contains("\"ph\":\"E\""));
    assert!(doc.contains("\"ph\":\"i\""));
    assert!(doc.contains("process_name"));
}

#[test]
fn json_lines_are_each_valid_json() {
    let events = sample_events();
    let lines = ss_trace::json_lines(&events);
    let mut n = 0;
    for line in lines.lines() {
        check_json(line).expect("each event line must parse");
        n += 1;
    }
    assert_eq!(n, events.len());
}

#[test]
fn phase_codes_round_trip() {
    for phase in [
        Phase::Other,
        Phase::Request,
        Phase::Handler,
        Phase::Queue,
        Phase::Ingest,
        Phase::WalAppend,
        Phase::Snapshot,
        Phase::SnapshotClone,
        Phase::Estimate,
        Phase::Encode,
        Phase::Audit,
    ] {
        assert_eq!(Phase::from_code(phase.code()), phase);
        assert!(!phase.name().is_empty());
    }
    assert_eq!(Phase::from_code(255), Phase::Other);
}

#[cfg(not(feature = "enabled"))]
mod disabled {
    #[test]
    fn recording_types_are_zero_sized() {
        // The ratchet the CI no-telemetry job relies on: traced code
        // paths carry provably zero data when compiled out.
        assert_eq!(std::mem::size_of::<ss_trace::SpanGuard>(), 0);
        assert_eq!(u8::from(ss_trace::ENABLED), 0, "feature gate must be off");
    }

    #[test]
    fn entry_points_are_inert() {
        assert_eq!(ss_trace::new_trace_id(), 0);
        assert_eq!(ss_trace::now_ns(), 0);
        let guard = ss_trace::span(ss_trace::Phase::Handler, 1, 0, 0);
        assert_eq!(guard.id(), 0);
        ss_trace::instant(ss_trace::Phase::Queue, 1, 0, 0);
        drop(guard);
        assert!(ss_trace::recent_events(0).is_empty());
        assert_eq!(ss_trace::postmortem("test"), None);
    }
}

#[cfg(feature = "enabled")]
mod enabled {
    use ss_trace::{EventKind, Phase};

    #[test]
    fn spans_record_begin_end_pairs_with_causality() {
        assert_eq!(u8::from(ss_trace::ENABLED), 1, "feature gate must be on");
        let trace = ss_trace::new_trace_id();
        assert_ne!(trace, 0);
        let root = ss_trace::span(Phase::Request, trace, 0, 42);
        let root_id = root.id();
        assert_ne!(root_id, 0);
        let child = ss_trace::span(Phase::Handler, trace, root_id, 0);
        let child_id = child.id();
        ss_trace::instant(Phase::Queue, trace, child_id, 7);
        drop(child);
        drop(root);

        let events: Vec<_> = ss_trace::recent_events(0)
            .into_iter()
            .filter(|e| e.trace_id == trace)
            .collect();
        assert_eq!(events.len(), 5, "2 begins + 2 ends + 1 instant");
        // Oldest-first and monotone.
        for pair in events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
        let child_begin = events
            .iter()
            .find(|e| e.span_id == child_id && e.kind == EventKind::Begin as u8)
            .expect("child begin recorded");
        assert_eq!(child_begin.parent_id, root_id, "causal parent preserved");
        let root_begin = events
            .iter()
            .find(|e| e.span_id == root_id && e.kind == EventKind::Begin as u8)
            .expect("root begin recorded");
        assert_eq!(root_begin.arg, 42);
        assert_eq!(root_begin.parent_id, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_bounds_memory() {
        let trace = ss_trace::new_trace_id();
        // Overfill the ring from this thread; the sweep must return at
        // most RING_EVENTS events and the newest must survive.
        for i in 0..(ss_trace::RING_EVENTS + 100) {
            ss_trace::instant(Phase::Ingest, trace, 0, i as u64);
        }
        let events: Vec<_> = ss_trace::recent_events(0)
            .into_iter()
            .filter(|e| e.trace_id == trace)
            .collect();
        assert!(events.len() <= ss_trace::RING_EVENTS);
        let newest = events.last().expect("ring retains the newest events");
        assert_eq!(newest.arg, (ss_trace::RING_EVENTS + 100 - 1) as u64);
    }

    #[test]
    fn recent_events_honours_the_limit() {
        let trace = ss_trace::new_trace_id();
        for i in 0..10 {
            ss_trace::instant(Phase::Audit, trace, 0, i);
        }
        let capped = ss_trace::recent_events(3);
        assert!(capped.len() <= 3);
    }

    #[test]
    fn threads_get_distinct_recorder_indices() {
        let trace = ss_trace::new_trace_id();
        ss_trace::instant(Phase::Handler, trace, 0, 0);
        let t2 = std::thread::spawn(move || {
            ss_trace::instant(Phase::Ingest, trace, 0, 0);
        });
        t2.join().unwrap();
        let events: Vec<_> = ss_trace::recent_events(0)
            .into_iter()
            .filter(|e| e.trace_id == trace)
            .collect();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].thread, events[1].thread);
    }

    #[test]
    fn postmortem_appends_dumps_to_the_configured_file() {
        let dir = std::env::temp_dir().join(format!("ss-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("postmortem.jsonl");
        let _ = std::fs::remove_file(&path);
        ss_trace::set_postmortem_path(&path);
        let trace = ss_trace::new_trace_id();
        ss_trace::instant(Phase::Handler, trace, 0, 1);
        let written = ss_trace::postmortem("first").expect("dump path configured");
        assert_eq!(written, path);
        ss_trace::postmortem("second").expect("second dump");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"postmortem\":\"first\""));
        assert!(text.contains("\"postmortem\":\"second\""), "dumps append");
        assert!(text.contains(&format!("{trace:016x}")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
