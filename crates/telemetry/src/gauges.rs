//! Scalar metrics: monotone counters and instantaneous gauges.
//!
//! All three types are a single atomic word updated with `Relaxed`
//! ordering — readers get a consistent *per-metric* value, and snapshot
//! consistency across metrics is explicitly not promised (it is
//! monitoring data, not a linearizable view).

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    bits: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            bits: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, as counters do after ~10¹⁹ events).
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        // ordering: Relaxed — atomicity alone keeps the count exact; no other
        // memory is published with it, so no happens-before edge is needed.
        self.bits.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current count (0 when telemetry is disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed — a monitoring read; staleness is acceptable
            // and per-metric atomicity is all that is promised.
            self.bits.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// An instantaneous signed value (queue depths, dense-value counts).
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    bits: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            bits: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        // ordering: Relaxed — the gauge value is self-contained; readers never
        // infer other state from it, so no release edge is required.
        self.bits.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Adds `delta` (negative to decrement).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(feature = "enabled")]
        // ordering: Relaxed — atomic RMW keeps the sum exact; monitoring
        // readers need no synchronizes-with edge.
        self.bits.fetch_add(delta, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = delta;
    }

    /// Current value (0 when telemetry is disabled).
    #[inline]
    pub fn get(&self) -> i64 {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed — a monitoring read; staleness is acceptable
            // and per-metric atomicity is all that is promised.
            self.bits.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// An instantaneous floating-point value (residual L2 mass, error
/// bounds), stored as the `f64` bit pattern in one atomic word.
#[derive(Debug, Default)]
pub struct FloatGauge {
    #[cfg(feature = "enabled")]
    bits: AtomicU64,
}

impl FloatGauge {
    /// A gauge at 0.0.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "enabled")]
        // ordering: Relaxed — single-word bit pattern, self-contained; no
        // other memory is published through this store.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current value (0.0 when telemetry is disabled).
    #[inline]
    pub fn get(&self) -> f64 {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed — monitoring read of a self-contained word.
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            0.0
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_concurrent_increments_from_many_threads() {
        // 8 threads × 100k increments: no update may be lost.
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 800_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn gauge_concurrent_inc_dec_balances() {
        let g = std::sync::Arc::new(Gauge::new());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..50_000 {
                        g.add(if i % 2 == 0 { 1 } else { -1 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn float_gauge_round_trips() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1234.5678);
        assert_eq!(g.get(), 1234.5678);
        g.set(-0.25);
        assert_eq!(g.get(), -0.25);
    }
}
