//! Metric registration and snapshot rendering.
//!
//! A [`Registry`] maps `(name, labels)` pairs to shared metric handles.
//! Registration is idempotent — asking for an existing pair returns the
//! same handle — and takes a mutex, which is fine because it happens on
//! cold paths (constructors, `OnceLock` initialisers). The handles
//! themselves are lock-free.
//!
//! Snapshots render in registration order, deterministically, in two
//! formats: JSON-lines (one object per metric, machine-diffable) and the
//! Prometheus text exposition format (histograms as `summary` families
//! with `quantile` labels plus `_sum`/`_count`/`_max` series).

use crate::{Counter, FloatGauge, Gauge, Histogram};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// How a histogram's raw `u64` observations map to exported numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Raw counts (batch sizes, candidate counts).
    Count,
    /// Nanoseconds, exported as seconds (span timers).
    Nanos,
    /// 1e-6 fixed point recorded via [`Histogram::record_f64`], exported
    /// as the original float (ratio errors).
    Scaled1e6,
}

impl Unit {
    fn export(self, raw: u64) -> f64 {
        match self {
            Unit::Count => raw as f64,
            Unit::Nanos => raw as f64 / 1e9,
            Unit::Scaled1e6 => raw as f64 / crate::F64_SCALE,
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Float(Arc<FloatGauge>),
    Histogram(Arc<Histogram>, Unit),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) | Handle::Float(_) => "gauge",
            Handle::Histogram(..) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A set of named metrics that renders consistent snapshots.
///
/// Production code uses the process-wide [`crate::global`] registry;
/// tests construct their own for deterministic golden output.
#[derive(Debug, Default)]
pub struct Registry {
    // ss-analyze: allow(a4-blocking-hot-path) -- taken at metric *registration* (process start) and when rendering a snapshot, never on the per-update record path: handles are plain `&'static` atomics once registered
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        // ss-analyze: allow(a10-reachable-panic) -- lock poisoning only follows a panic already in flight; propagating is correct
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return e.handle.clone();
        }
        let handle = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or retrieves) an unlabelled counter.
    ///
    /// # Panics
    /// If the pair is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Registers (or retrieves) a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        if !crate::ENABLED {
            return Arc::new(Counter::new());
        }
        match self.register(name, labels, || Handle::Counter(Arc::new(Counter::new()))) {
            Handle::Counter(c) => c,
            // ss-analyze: allow(a10-reachable-panic) -- name/kind collision is a startup programming error; documented `# Panics` contract
            h => panic!("{name} already registered as a {}", h.kind()),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Registers (or retrieves) a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        if !crate::ENABLED {
            return Arc::new(Gauge::new());
        }
        match self.register(name, labels, || Handle::Gauge(Arc::new(Gauge::new()))) {
            Handle::Gauge(g) => g,
            // ss-analyze: allow(a10-reachable-panic) -- name/kind collision is a startup programming error; documented `# Panics` contract
            h => panic!("{name} already registered as a {}", h.kind()),
        }
    }

    /// Registers (or retrieves) an unlabelled floating-point gauge.
    pub fn float_gauge(&self, name: &str) -> Arc<FloatGauge> {
        self.float_gauge_with(name, &[])
    }

    /// Registers (or retrieves) a labelled floating-point gauge.
    pub fn float_gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        if !crate::ENABLED {
            return Arc::new(FloatGauge::new());
        }
        match self.register(name, labels, || Handle::Float(Arc::new(FloatGauge::new()))) {
            Handle::Float(g) => g,
            h => panic!("{name} already registered as a {}", h.kind()),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram.
    pub fn histogram(&self, name: &str, unit: Unit) -> Arc<Histogram> {
        self.histogram_with(name, &[], unit)
    }

    /// Registers (or retrieves) a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Arc<Histogram> {
        if !crate::ENABLED {
            return Arc::new(Histogram::new());
        }
        match self.register(name, labels, || {
            Handle::Histogram(Arc::new(Histogram::new()), unit)
        }) {
            Handle::Histogram(h, _) => h,
            // ss-analyze: allow(a10-reachable-panic) -- name/kind collision is a startup programming error; documented `# Panics` contract
            h => panic!("{name} already registered as a {}", h.kind()),
        }
    }

    /// Renders one JSON object per metric, one per line, in registration
    /// order. Histograms export `count`, `sum`, `p50`/`p95`/`p99`, and
    /// `max` in their unit's terms. Empty when telemetry is disabled.
    pub fn render_json_lines(&self) -> String {
        // ss-analyze: allow(a10-reachable-panic) -- lock poisoning only follows a panic already in flight; propagating is correct
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        for e in entries.iter() {
            let labels = if e.labels.is_empty() {
                String::new()
            } else {
                let body: Vec<String> = e
                    .labels
                    .iter()
                    .map(|(k, v)| format!("\"{k}\":\"{v}\""))
                    .collect();
                format!(",\"labels\":{{{}}}", body.join(","))
            };
            let line = match &e.handle {
                Handle::Counter(c) => format!(
                    "{{\"metric\":\"{}\",\"type\":\"counter\"{labels},\"value\":{}}}",
                    e.name,
                    c.get()
                ),
                Handle::Gauge(g) => format!(
                    "{{\"metric\":\"{}\",\"type\":\"gauge\"{labels},\"value\":{}}}",
                    e.name,
                    g.get()
                ),
                Handle::Float(g) => format!(
                    "{{\"metric\":\"{}\",\"type\":\"gauge\"{labels},\"value\":{}}}",
                    e.name,
                    fmt_f64(g.get())
                ),
                Handle::Histogram(h, unit) => {
                    // Quantiles of zero observations are undefined, not
                    // zero: a dashboard must be able to tell "no latency
                    // samples yet" apart from "p99 of 0 seconds".
                    let q = |p: f64| {
                        if h.count() == 0 {
                            "null".to_string()
                        } else {
                            fmt_f64(unit.export(h.quantile(p)))
                        }
                    };
                    format!(
                        "{{\"metric\":\"{}\",\"type\":\"histogram\"{labels},\"count\":{},\"sum\":{},\
                         \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                        e.name,
                        h.count(),
                        fmt_f64(unit.export(h.sum())),
                        q(0.5),
                        q(0.95),
                        q(0.99),
                        fmt_f64(unit.export(h.max())),
                    )
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders the Prometheus text exposition format: counters and gauges
    /// verbatim, histograms as `summary` families. Empty when telemetry
    /// is disabled.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut typed: HashSet<&str> = HashSet::new();
        for e in entries.iter() {
            if typed.insert(e.name.as_str()) {
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    e.name,
                    match &e.handle {
                        Handle::Counter(_) => "counter",
                        Handle::Gauge(_) | Handle::Float(_) => "gauge",
                        Handle::Histogram(..) => "summary",
                    }
                ));
            }
            match &e.handle {
                Handle::Counter(c) => out.push_str(&format!(
                    "{}{} {}\n",
                    e.name,
                    prom_labels(&e.labels, &[]),
                    c.get()
                )),
                Handle::Gauge(g) => out.push_str(&format!(
                    "{}{} {}\n",
                    e.name,
                    prom_labels(&e.labels, &[]),
                    g.get()
                )),
                Handle::Float(g) => out.push_str(&format!(
                    "{}{} {}\n",
                    e.name,
                    prom_labels(&e.labels, &[]),
                    fmt_f64(g.get())
                )),
                Handle::Histogram(h, unit) => {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        // Prometheus summaries export undefined quantiles
                        // as NaN, never a fake zero.
                        let rendered = if h.count() == 0 {
                            "NaN".to_string()
                        } else {
                            fmt_f64(unit.export(h.quantile(q)))
                        };
                        out.push_str(&format!(
                            "{}{} {rendered}\n",
                            e.name,
                            prom_labels(&e.labels, &[("quantile", label)])
                        ));
                    }
                    let plain = prom_labels(&e.labels, &[]);
                    out.push_str(&format!(
                        "{}_sum{plain} {}\n",
                        e.name,
                        fmt_f64(unit.export(h.sum()))
                    ));
                    out.push_str(&format!("{}_count{plain} {}\n", e.name, h.count()));
                    out.push_str(&format!(
                        "{}_max{plain} {}\n",
                        e.name,
                        fmt_f64(unit.export(h.max()))
                    ));
                }
            }
        }
        out
    }
}

/// Renders a Prometheus label set: the entry's own labels plus `extra`
/// (e.g. `quantile`), or the empty string when there are none.
fn prom_labels(own: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if own.is_empty() && extra.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = own
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .chain(extra.iter().map(|&(k, v)| format!("{k}=\"{v}\"")))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Deterministic f64 formatting: integers without a trailing `.0` would
/// be valid JSON but ambiguous to diff, so keep Rust's shortest
/// round-trip formatting and only special-case non-finite values.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter_with("hits_total", &[("worker", "0")]);
        let b = r.counter_with("hits_total", &[("worker", "0")]);
        let c = r.counter_with("hits_total", &[("worker", "1")]);
        a.inc();
        assert_eq!(b.get(), 1, "same pair must share storage");
        assert_eq!(c.get(), 0, "different labels are a different series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("thing");
        let _ = r.gauge("thing");
    }
}
