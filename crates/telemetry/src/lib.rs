//! # stream-telemetry
//!
//! Hand-rolled, zero-dependency runtime telemetry for the skimmed-sketch
//! workspace: lock-free [`Counter`]s, [`Gauge`]s and [`FloatGauge`]s,
//! log-scaled latency [`Histogram`]s with RAII [`Span`] timers, and a
//! [`Registry`] that renders consistent snapshots as JSON-lines and
//! Prometheus text exposition format.
//!
//! Every recording operation is a handful of `Relaxed` atomic
//! read-modify-writes — no locks, no allocation — so instrumentation can
//! sit directly inside the batched update kernels and the skim pipeline.
//! Registration (name → handle) takes a mutex, but it happens once per
//! metric on a cold path; hot paths cache the returned `Arc` handles.
//!
//! ## The `enabled` feature
//!
//! With the (default) `enabled` feature off, the entire API keeps its
//! shape but compiles to inline no-ops: counters hold no storage,
//! histograms allocate no buckets, span timers never read the clock, and
//! [`ENABLED`] is `false` so call sites can skip even the cost of
//! computing the values they would have recorded:
//!
//! ```
//! use stream_telemetry as telemetry;
//! if telemetry::ENABLED {
//!     // compute-and-record path, dead-code-eliminated when disabled
//! }
//! ```
//!
//! ## Example
//!
//! ```
//! use stream_telemetry::{Registry, Unit};
//!
//! let registry = Registry::new();
//! let ingested = registry.counter("demo_updates_total");
//! let latency = registry.histogram("demo_phase_seconds", Unit::Nanos);
//! {
//!     let _span = latency.start_span(); // records on drop
//!     ingested.add(512);
//! }
//! let text = registry.render_prometheus();
//! if stream_telemetry::ENABLED {
//!     assert!(text.contains("demo_updates_total 512"));
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod gauges;
mod histogram;
mod registry;

pub use gauges::{Counter, FloatGauge, Gauge};
pub use histogram::{Histogram, Span, F64_SCALE};
pub use registry::{Registry, Unit};

/// Whether telemetry is compiled in. `false` means every operation in
/// this crate is an inline no-op; call sites use this constant to skip
/// computing values that would only feed telemetry.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// The process-wide registry that the workspace's instrumentation points
/// register into. Lazily initialised; cheap to call (one atomic load
/// after the first call).
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
