//! Log-scaled histograms and RAII span timers.
//!
//! The bucket layout is the HDR-style "log₂ groups × linear sub-buckets"
//! scheme: values below 2⁵ land in exact unit buckets; above that, each
//! power-of-two group is split into 32 linear sub-buckets, so every
//! recorded value is off by at most one part in 32 (≈ 3% relative error)
//! while the whole u64 range fits in 1920 buckets (15 KiB of atomics).
//! Recording is one `fetch_add` per bucket plus count/sum/max updates —
//! lock-free and allocation-free, safe inside hot kernels.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two group splits into `2^SUB_BITS`
/// linear buckets.
#[cfg(any(feature = "enabled", test))]
const SUB_BITS: u32 = 5;
/// Sub-buckets per group.
#[cfg(any(feature = "enabled", test))]
const SUB: usize = 1 << SUB_BITS;
/// Groups: one for the exact `[0, 32)` range, then one per leading bit.
#[cfg(any(feature = "enabled", test))]
const GROUPS: usize = 64 - SUB_BITS as usize + 1;
/// Total buckets (1920).
#[cfg(feature = "enabled")]
const BUCKETS: usize = SUB * GROUPS;

/// Fixed-point scale used by [`Histogram::record_f64`]: floats are stored
/// in units of 1e-6, giving micro-resolution for ratio errors and other
/// O(1)-magnitude observations.
pub const F64_SCALE: f64 = 1e6;

/// Bucket index of `v`.
#[cfg(any(feature = "enabled", test))]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let group = msb - SUB_BITS as usize + 1;
        let sub = ((v >> (msb - SUB_BITS as usize)) - SUB as u64) as usize;
        group * SUB + sub
    }
}

/// Representative value reported for bucket `i` (lower bound plus half
/// the bucket width; exact for values below 64).
#[cfg(any(feature = "enabled", test))]
fn bucket_value(i: usize) -> u64 {
    let (group, sub) = (i / SUB, i % SUB);
    if group == 0 {
        sub as u64
    } else {
        let width = 1u64 << (group - 1);
        ((SUB + sub) as u64) * width + (width >> 1)
    }
}

/// A lock-free log-scaled histogram over `u64` observations.
///
/// Tracks count, sum, exact max, and ~3%-accurate quantiles. Time spans
/// are recorded in nanoseconds via [`Histogram::start_span`]; floating
/// observations (e.g. ratio errors) via [`Histogram::record_f64`].
#[derive(Debug)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    sum: AtomicU64,
    #[cfg(feature = "enabled")]
    max: AtomicU64,
    #[cfg(feature = "enabled")]
    buckets: Box<[AtomicU64]>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            count: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            sum: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            max: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed on all four words — each is independently
            // exact under atomic RMW; readers tolerate observing them at
            // slightly different instants (count/sum/max may momentarily
            // disagree), which is the documented monitoring contract.
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed); // ordering: see block above
            self.sum.fetch_add(v, Ordering::Relaxed); // ordering: see block above
            self.max.fetch_max(v, Ordering::Relaxed); // ordering: see block above
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Records a non-negative floating observation in 1e-6 fixed point
    /// (see [`F64_SCALE`]); negative or NaN observations record as 0.
    #[inline]
    pub fn record_f64(&self, x: f64) {
        let scaled = (x * F64_SCALE).round();
        self.record(if scaled.is_finite() && scaled > 0.0 {
            scaled as u64
        } else {
            0
        });
    }

    /// Starts an RAII span: the elapsed wall time in nanoseconds is
    /// recorded when the returned guard drops. When telemetry is
    /// disabled the guard is a no-op that never reads the clock.
    #[inline]
    pub fn start_span(&self) -> Span<'_> {
        Span {
            #[cfg(feature = "enabled")]
            histogram: self,
            #[cfg(feature = "enabled")]
            start: std::time::Instant::now(),
            #[cfg(not(feature = "enabled"))]
            _histogram: std::marker::PhantomData,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed — monitoring read; staleness is fine.
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Sum of observations (wrapping).
    pub fn sum(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed — monitoring read; staleness is fine.
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Largest observation, exactly.
    pub fn max(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            // ordering: Relaxed — monitoring read; staleness is fine.
            self.max.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank over the bucket
    /// counts: accurate to one part in 32 of the returned value.
    /// `quantile(1.0)` returns the exact max; an empty histogram
    /// returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        #[cfg(feature = "enabled")]
        {
            let count = self.count();
            if count == 0 {
                return 0;
            }
            if q >= 1.0 {
                return self.max();
            }
            let rank = ((q.max(0.0) * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, b) in self.buckets.iter().enumerate() {
                // ordering: Relaxed — bucket counts race with writers by
                // design; the quantile is advisory monitoring data.
                seen += b.load(Ordering::Relaxed);
                if seen >= rank {
                    return bucket_value(i).min(self.max());
                }
            }
            self.max()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = q;
            0
        }
    }

    /// [`Histogram::quantile`] mapped back through the [`F64_SCALE`]
    /// fixed point, for histograms fed by [`Histogram::record_f64`].
    pub fn quantile_f64(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / F64_SCALE
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII timer guard from [`Histogram::start_span`]: records the elapsed
/// nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct Span<'a> {
    #[cfg(feature = "enabled")]
    histogram: &'a Histogram,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
    #[cfg(not(feature = "enabled"))]
    _histogram: std::marker::PhantomData<&'a Histogram>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        self.histogram
            .record(self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_64() {
        // Group 0 is unit buckets; group 1 has width 1 too, so every
        // value below 64 maps to its own bucket and back exactly.
        for v in 0..64u64 {
            assert_eq!(bucket_value(bucket_index(v)), v, "v={v}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_continuous_at_group_edges() {
        for &v in &[31u64, 32, 33, 63, 64, 65, 127, 128, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            if v > 0 {
                let prev = bucket_index(v - 1);
                assert!(prev == i || prev + 1 == i, "v={v} i={i} prev={prev}");
            }
        }
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32); // first bucket of group 1
        assert_eq!(bucket_index(u64::MAX), SUB * GROUPS - 1); // last bucket
    }

    #[test]
    fn representative_value_is_within_one_part_in_32() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let rep = bucket_value(bucket_index(v));
            let err = rep.abs_diff(v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} rep={rep} err={err}");
            v = v.wrapping_mul(3) + 1;
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn count_sum_max_are_exact() {
        let h = Histogram::new();
        for v in [1u64, 5, 1000, 123_456_789] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1 + 5 + 1000 + 123_456_789);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn quantiles_exact_on_small_values() {
        // 1..=20 are all below 64, hence bucketed exactly.
        let h = Histogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.95), 19);
        assert_eq!(h.quantile(1.0), 20);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantiles_track_large_values_within_resolution() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1_000); // 1k..1M
        }
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50={p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99={p99}");
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn f64_round_trip_through_fixed_point() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record_f64(0.125);
        }
        assert!((h.quantile_f64(0.5) - 0.125).abs() < 0.01);
        // Negative and NaN observations clamp to zero instead of panicking.
        h.record_f64(-3.0);
        h.record_f64(f64::NAN);
        assert_eq!(h.count(), 12);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let h = Histogram::new();
        {
            let _span = h.start_span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 2_000_000, "max={}", h.max());
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..100_000u64 {
                        h.record(t * 7 + i % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 400_000);
    }
}
