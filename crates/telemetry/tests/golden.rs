//! Golden snapshot-rendering tests: both export formats are diffed
//! against exact expected strings, so any accidental format drift (field
//! order, float formatting, label quoting) fails loudly.
#![cfg(feature = "enabled")]

use stream_telemetry::{Registry, Unit};

/// Builds a registry with one metric of every kind, deterministically
/// populated.
fn populated() -> Registry {
    let r = Registry::new();
    let c = r.counter_with("ingest_worker_updates_total", &[("worker", "0")]);
    c.add(4096);
    let g = r.gauge("ingest_queue_depth");
    g.set(3);
    let f = r.float_gauge_with("skim_residual_l2", &[("side", "f")]);
    f.set(1234.5);
    let h = r.histogram("skim_phase_batch_size", Unit::Count);
    for v in 1..=20u64 {
        h.record(v);
    }
    r
}

#[test]
fn json_lines_golden() {
    let expected = "\
{\"metric\":\"ingest_worker_updates_total\",\"type\":\"counter\",\"labels\":{\"worker\":\"0\"},\"value\":4096}\n\
{\"metric\":\"ingest_queue_depth\",\"type\":\"gauge\",\"value\":3}\n\
{\"metric\":\"skim_residual_l2\",\"type\":\"gauge\",\"labels\":{\"side\":\"f\"},\"value\":1234.5}\n\
{\"metric\":\"skim_phase_batch_size\",\"type\":\"histogram\",\"count\":20,\"sum\":210,\"p50\":10,\"p95\":19,\"p99\":20,\"max\":20}\n";
    assert_eq!(populated().render_json_lines(), expected);
}

#[test]
fn prometheus_golden() {
    let expected = "\
# TYPE ingest_worker_updates_total counter\n\
ingest_worker_updates_total{worker=\"0\"} 4096\n\
# TYPE ingest_queue_depth gauge\n\
ingest_queue_depth 3\n\
# TYPE skim_residual_l2 gauge\n\
skim_residual_l2{side=\"f\"} 1234.5\n\
# TYPE skim_phase_batch_size summary\n\
skim_phase_batch_size{quantile=\"0.5\"} 10\n\
skim_phase_batch_size{quantile=\"0.95\"} 19\n\
skim_phase_batch_size{quantile=\"0.99\"} 20\n\
skim_phase_batch_size_sum 210\n\
skim_phase_batch_size_count 20\n\
skim_phase_batch_size_max 20\n";
    assert_eq!(populated().render_prometheus(), expected);
}

#[test]
fn empty_histogram_quantiles_render_as_null_and_nan() {
    let r = Registry::new();
    let _ = r.histogram_with(
        "server_request_seconds",
        &[("kind", "snapshot")],
        Unit::Nanos,
    );
    let json = r.render_json_lines();
    assert_eq!(
        json,
        "{\"metric\":\"server_request_seconds\",\"type\":\"histogram\",\
         \"labels\":{\"kind\":\"snapshot\"},\"count\":0,\"sum\":0,\
         \"p50\":null,\"p95\":null,\"p99\":null,\"max\":0}\n",
        "undefined quantiles must be JSON null, not 0"
    );
    let prom = r.render_prometheus();
    let expected = "\
# TYPE server_request_seconds summary\n\
server_request_seconds{kind=\"snapshot\",quantile=\"0.5\"} NaN\n\
server_request_seconds{kind=\"snapshot\",quantile=\"0.95\"} NaN\n\
server_request_seconds{kind=\"snapshot\",quantile=\"0.99\"} NaN\n\
server_request_seconds_sum{kind=\"snapshot\"} 0\n\
server_request_seconds_count{kind=\"snapshot\"} 0\n\
server_request_seconds_max{kind=\"snapshot\"} 0\n";
    assert_eq!(prom, expected);
    // One observation flips every quantile back to a real number.
    let h = r.histogram_with(
        "server_request_seconds",
        &[("kind", "snapshot")],
        Unit::Nanos,
    );
    h.record(1_000_000_000);
    assert!(!r.render_json_lines().contains("null"));
    assert!(!r.render_prometheus().contains("NaN"));
}

#[test]
fn nanos_histograms_export_seconds() {
    let r = Registry::new();
    let h = r.histogram("phase_seconds", Unit::Nanos);
    h.record(2_000_000_000); // exactly 2s
    let json = r.render_json_lines();
    assert!(json.contains("\"max\":2"), "json={json}");
    let prom = r.render_prometheus();
    assert!(prom.contains("phase_seconds_max 2\n"), "prom={prom}");
}

#[test]
fn scaled_histograms_export_the_original_float() {
    let r = Registry::new();
    let h = r.histogram("estimator_ratio_error", Unit::Scaled1e6);
    h.record_f64(0.25);
    assert!((h.quantile_f64(1.0) - 0.25).abs() < 1e-9);
    let prom = r.render_prometheus();
    assert!(
        prom.contains("estimator_ratio_error_max 0.25\n"),
        "prom={prom}"
    );
}
