//! The telemetry-off contract: with `--no-default-features` the API
//! keeps its shape but records nothing, reads as zero, and renders
//! empty snapshots. These tests pin that contract so the disabled
//! configuration cannot rot.
#![cfg(not(feature = "enabled"))]

use stream_telemetry::{global, Registry, Unit};

#[test]
fn enabled_constant_reports_off() {
    // Deliberately a constant assertion: the test pins the value of the
    // compile-time switch in this build configuration.
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(!stream_telemetry::ENABLED);
    }
}

#[test]
fn all_metric_kinds_are_inert() {
    let r = Registry::new();
    let c = r.counter("c_total");
    c.inc();
    c.add(100);
    assert_eq!(c.get(), 0);

    let g = r.gauge("g");
    g.set(7);
    g.add(3);
    assert_eq!(g.get(), 0);

    let f = r.float_gauge("f");
    f.set(2.5);
    assert_eq!(f.get(), 0.0);

    let h = r.histogram("h_seconds", Unit::Nanos);
    h.record(123);
    h.record_f64(0.5);
    {
        let _span = h.start_span();
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.quantile(0.5), 0);
}

#[test]
fn snapshots_render_empty() {
    let r = Registry::new();
    let _ = r.counter("something_total");
    assert_eq!(r.render_json_lines(), "");
    assert_eq!(r.render_prometheus(), "");
    assert_eq!(global().render_prometheus(), "");
}
