//! Property-based contract of the wire codec.
//!
//! Two invariants, mirroring the trace-file tests in
//! `stream-model::io`:
//!
//! * **identity** — `decode(encode(frame)) == frame` for every frame
//!   type, across the full value ranges of every field;
//! * **rejection** — no single-byte corruption and no truncation of a
//!   valid frame ever decodes successfully. Every byte of a frame is
//!   covered by either the header CRC or the payload CRC, so a flipped
//!   bit must surface as an error, never as a silently different frame.

use proptest::prelude::*;
use stream_model::update::Update;
use stream_wire::{ErrorCode, Frame, ServerInfo, StreamId, WireError, DEFAULT_MAX_PAYLOAD};

fn arb_stream(sel: u8) -> StreamId {
    if sel & 1 == 0 {
        StreamId::F
    } else {
        StreamId::G
    }
}

fn arb_updates(max_len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (any::<u64>(), any::<i64>()).prop_map(|(value, weight)| Update { value, weight }),
        0..max_len,
    )
}

fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max_len)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

/// Encode → decode → exact equality, plus exact consumed-length report.
fn assert_round_trip(frame: &Frame) -> Result<(), proptest::TestCaseError> {
    let bytes = frame.encode();
    match Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD) {
        Ok((back, n)) => {
            prop_assert_eq!(&back, frame);
            prop_assert_eq!(n, bytes.len());
            Ok(())
        }
        Err(e) => {
            prop_assert!(false, "decode failed for {:?}: {}", frame, e);
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_round_trips(protocol in any::<u16>(), client in ascii_string(48)) {
        assert_round_trip(&Frame::Hello { protocol, client })?;
    }

    #[test]
    fn hello_ack_round_trips(
        shape in (any::<u16>(), any::<bool>(), any::<u32>(), any::<u32>()),
        limits in (any::<u64>(), any::<u32>(), any::<u32>()),
    ) {
        let (domain_log2, dyadic, tables, buckets) = shape;
        let (seed, max_batch, queue_limit) = limits;
        assert_round_trip(&Frame::HelloAck(ServerInfo {
            domain_log2, dyadic, tables, buckets, seed, max_batch, queue_limit,
        }))?;
    }

    #[test]
    fn update_batch_round_trips(
        sel in any::<u8>(),
        client_id in any::<u64>(),
        seq in any::<u64>(),
        updates in arb_updates(200),
    ) {
        assert_round_trip(&Frame::UpdateBatch { stream: arb_stream(sel), client_id, seq, updates })?;
    }

    #[test]
    fn resume_round_trips(client_id in any::<u64>(), last_f in any::<u64>(), last_g in any::<u64>()) {
        assert_round_trip(&Frame::Resume { client_id })?;
        assert_round_trip(&Frame::ResumeAck { last_seq_f: last_f, last_seq_g: last_g })?;
    }

    #[test]
    fn ack_and_throttle_round_trip(
        accepted in any::<u64>(),
        pending in any::<u64>(),
        limit in any::<u64>(),
    ) {
        assert_round_trip(&Frame::BatchAck { accepted })?;
        assert_round_trip(&Frame::Throttle { pending, limit })?;
    }

    #[test]
    fn answer_round_trips(
        terms in (-1e18f64..1e18, -1e18f64..1e18, -1e18f64..1e18, -1e18f64..1e18),
        rest in (-1e18f64..1e18, any::<u64>(), any::<u64>()),
    ) {
        let (estimate, dense_dense, dense_sparse, sparse_dense) = terms;
        let (sparse_sparse, dense_f, dense_g) = rest;
        assert_round_trip(&Frame::Answer {
            estimate, dense_dense, dense_sparse, sparse_dense, sparse_sparse, dense_f, dense_g,
        })?;
    }

    #[test]
    fn queries_and_snapshots_round_trip(
        sel in any::<u8>(),
        sketch in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let stream = arb_stream(sel);
        assert_round_trip(&Frame::QueryJoin)?;
        assert_round_trip(&Frame::QuerySelfJoin { stream })?;
        assert_round_trip(&Frame::Snapshot { stream })?;
        assert_round_trip(&Frame::SnapshotReply { stream, sketch })?;
        assert_round_trip(&Frame::Goodbye)?;
    }

    #[test]
    fn error_round_trips(code in any::<u16>(), message in ascii_string(64)) {
        assert_round_trip(&Frame::Error {
            code: ErrorCode::from_u16(code),
            message,
        })?;
    }

    /// A single flipped bit anywhere in a frame must be rejected: the
    /// header CRC covers bytes 0..16, the header-CRC field is
    /// self-verifying, and the payload CRC covers the rest.
    #[test]
    fn single_bit_corruption_is_rejected(
        sel in any::<u8>(),
        updates in arb_updates(64),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::UpdateBatch { stream: arb_stream(sel), client_id: 9, seq: 1, updates };
        let mut bytes = frame.encode();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).is_err(),
            "flip at byte {} bit {} decoded successfully", idx, bit
        );
    }

    /// Any strict prefix of a valid frame must fail loudly (never hang,
    /// never decode): empty → Closed, otherwise Truncated/Io.
    #[test]
    fn truncation_is_rejected(sel in any::<u8>(), updates in arb_updates(64), cut in any::<u64>()) {
        let frame = Frame::UpdateBatch { stream: arb_stream(sel), client_id: 9, seq: 1, updates };
        let bytes = frame.encode();
        let cut = (cut % bytes.len() as u64) as usize;
        let err = Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
        if cut == 0 {
            prop_assert!(matches!(err, WireError::Closed), "{}", err);
        } else {
            prop_assert!(matches!(err, WireError::Truncated), "{}", err);
        }
    }

    /// Back-to-back frames on one stream decode in sequence — the length
    /// prefix alone delimits them.
    #[test]
    fn concatenated_frames_stay_framed(updates in arb_updates(64), accepted in any::<u64>()) {
        let first = Frame::UpdateBatch { stream: StreamId::F, client_id: 3, seq: 2, updates };
        let second = Frame::BatchAck { accepted };
        let mut bytes = first.encode();
        bytes.extend_from_slice(&second.encode());
        let mut cursor = &bytes[..];
        let (a, _) = Frame::read_from(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        let (b, _) = Frame::read_from(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(a, first);
        prop_assert_eq!(b, second);
        prop_assert!(cursor.is_empty());
    }
}
