//! Property-based contract of the wire codec.
//!
//! Two invariants, mirroring the trace-file tests in
//! `stream-model::io`:
//!
//! * **identity** — `decode(encode(frame)) == frame` for every frame
//!   type, across the full value ranges of every field;
//! * **rejection** — no single-byte corruption and no truncation of a
//!   valid frame ever decodes successfully. Every byte of a frame is
//!   covered by either the header CRC or the payload CRC, so a flipped
//!   bit must surface as an error, never as a silently different frame.

use proptest::prelude::*;
use stream_model::update::Update;
use stream_wire::{
    AuditSummary, ErrorCode, Frame, InspectReport, ServerInfo, SlowQueryEntry, StreamId,
    TraceContext, WireError, WireSpanEvent, DEFAULT_MAX_PAYLOAD,
};

fn arb_stream(sel: u8) -> StreamId {
    if sel & 1 == 0 {
        StreamId::F
    } else {
        StreamId::G
    }
}

fn arb_updates(max_len: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (any::<u64>(), any::<i64>()).prop_map(|(value, weight)| Update { value, weight }),
        0..max_len,
    )
}

fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max_len)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_span_events(max_len: usize) -> impl Strategy<Value = Vec<WireSpanEvent>> {
    prop::collection::vec(
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u8>(), any::<u8>(), any::<u32>(), any::<u64>()),
        )
            .prop_map(|(ids, rest)| {
                let (ts_ns, trace_id, span_id, parent_id) = ids;
                let (phase, kind, thread, arg) = rest;
                WireSpanEvent {
                    ts_ns,
                    trace_id,
                    span_id,
                    parent_id,
                    phase,
                    kind,
                    thread,
                    arg,
                }
            }),
        0..max_len,
    )
}

fn arb_slow_entries(max_len: usize) -> impl Strategy<Value = Vec<SlowQueryEntry>> {
    prop::collection::vec(
        (
            (any::<u64>(), any::<u64>(), any::<u8>()),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(|(head, ns)| {
                let (ts_ns, trace_id, kind) = head;
                let (total_ns, snapshot_ns, estimate_ns, encode_ns) = ns;
                SlowQueryEntry {
                    ts_ns,
                    trace_id,
                    kind,
                    total_ns,
                    snapshot_ns,
                    estimate_ns,
                    encode_ns,
                }
            }),
        0..max_len,
    )
}

fn arb_audit() -> impl Strategy<Value = Option<AuditSummary>> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
        (0f64..1e12, 0f64..1e12),
        (0f64..1e12, 0f64..1e12, 0f64..1e12),
    )
        .prop_map(|(head, lo, hi)| {
            let (sampled_keys, comparisons, worst_value, present) = head;
            let (mean_ratio_error, p50) = lo;
            let (p95, p99, max) = hi;
            present.then_some(AuditSummary {
                sampled_keys,
                comparisons,
                mean_ratio_error,
                p50,
                p95,
                p99,
                max,
                worst_value,
            })
        })
}

/// Encode → decode → exact equality, plus exact consumed-length report.
fn assert_round_trip(frame: &Frame) -> Result<(), proptest::TestCaseError> {
    let bytes = frame.encode();
    match Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD) {
        Ok((back, n)) => {
            prop_assert_eq!(&back, frame);
            prop_assert_eq!(n, bytes.len());
            Ok(())
        }
        Err(e) => {
            prop_assert!(false, "decode failed for {:?}: {}", frame, e);
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_round_trips(protocol in any::<u16>(), client in ascii_string(48)) {
        assert_round_trip(&Frame::Hello { protocol, client })?;
    }

    #[test]
    fn hello_ack_round_trips(
        shape in (any::<u16>(), any::<bool>(), any::<u32>(), any::<u32>()),
        limits in (any::<u64>(), any::<u32>(), any::<u32>()),
    ) {
        let (domain_log2, dyadic, tables, buckets) = shape;
        let (seed, max_batch, queue_limit) = limits;
        assert_round_trip(&Frame::HelloAck(ServerInfo {
            domain_log2, dyadic, tables, buckets, seed, max_batch, queue_limit,
        }))?;
    }

    #[test]
    fn update_batch_round_trips(
        sel in any::<u8>(),
        client_id in any::<u64>(),
        seq in any::<u64>(),
        updates in arb_updates(200),
    ) {
        assert_round_trip(&Frame::UpdateBatch { stream: arb_stream(sel), client_id, seq, updates })?;
    }

    #[test]
    fn resume_round_trips(client_id in any::<u64>(), last_f in any::<u64>(), last_g in any::<u64>()) {
        assert_round_trip(&Frame::Resume { client_id })?;
        assert_round_trip(&Frame::ResumeAck { last_seq_f: last_f, last_seq_g: last_g })?;
    }

    #[test]
    fn ack_and_throttle_round_trip(
        accepted in any::<u64>(),
        pending in any::<u64>(),
        limit in any::<u64>(),
    ) {
        assert_round_trip(&Frame::BatchAck { accepted })?;
        assert_round_trip(&Frame::Throttle { pending, limit })?;
    }

    #[test]
    fn answer_round_trips(
        terms in (-1e18f64..1e18, -1e18f64..1e18, -1e18f64..1e18, -1e18f64..1e18),
        rest in (-1e18f64..1e18, any::<u64>(), any::<u64>()),
    ) {
        let (estimate, dense_dense, dense_sparse, sparse_dense) = terms;
        let (sparse_sparse, dense_f, dense_g) = rest;
        assert_round_trip(&Frame::Answer {
            estimate, dense_dense, dense_sparse, sparse_dense, sparse_sparse, dense_f, dense_g,
        })?;
    }

    #[test]
    fn queries_and_snapshots_round_trip(
        sel in any::<u8>(),
        sketch in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let stream = arb_stream(sel);
        assert_round_trip(&Frame::QueryJoin)?;
        assert_round_trip(&Frame::QuerySelfJoin { stream })?;
        assert_round_trip(&Frame::Snapshot { stream })?;
        assert_round_trip(&Frame::SnapshotReply { stream, sketch })?;
        assert_round_trip(&Frame::Goodbye)?;
    }

    #[test]
    fn error_round_trips(code in any::<u16>(), message in ascii_string(64)) {
        assert_round_trip(&Frame::Error {
            code: ErrorCode::from_u16(code),
            message,
        })?;
    }

    /// A single flipped bit anywhere in a frame must be rejected: the
    /// header CRC covers bytes 0..16, the header-CRC field is
    /// self-verifying, and the payload CRC covers the rest.
    #[test]
    fn single_bit_corruption_is_rejected(
        sel in any::<u8>(),
        updates in arb_updates(64),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::UpdateBatch { stream: arb_stream(sel), client_id: 9, seq: 1, updates };
        let mut bytes = frame.encode();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).is_err(),
            "flip at byte {} bit {} decoded successfully", idx, bit
        );
    }

    /// Any strict prefix of a valid frame must fail loudly (never hang,
    /// never decode): empty → Closed, otherwise Truncated/Io.
    #[test]
    fn truncation_is_rejected(sel in any::<u8>(), updates in arb_updates(64), cut in any::<u64>()) {
        let frame = Frame::UpdateBatch { stream: arb_stream(sel), client_id: 9, seq: 1, updates };
        let bytes = frame.encode();
        let cut = (cut % bytes.len() as u64) as usize;
        let err = Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
        if cut == 0 {
            prop_assert!(matches!(err, WireError::Closed), "{}", err);
        } else {
            prop_assert!(matches!(err, WireError::Truncated), "{}", err);
        }
    }

    /// INSPECT requests and their full replies round-trip across the
    /// value ranges of every section.
    #[test]
    fn inspect_frames_round_trip(
        sections in any::<u8>(),
        last_events in any::<u32>(),
        slow_limit in any::<u32>(),
        uptime_ns in any::<u64>(),
        metrics_json in ascii_string(256),
        events in arb_span_events(16),
        slow in arb_slow_entries(8),
        audit in arb_audit(),
    ) {
        assert_round_trip(&Frame::Inspect { sections, last_events, slow_limit })?;
        assert_round_trip(&Frame::InspectReply(Box::new(InspectReport {
            uptime_ns, metrics_json, events, slow, audit,
        })))?;
    }

    /// The trace extension is a pure envelope: any frame encoded with a
    /// context decodes to the same frame plus the same context, and the
    /// plain (v2) decode path still recovers the frame while discarding
    /// the envelope.
    #[test]
    fn traced_frames_round_trip_with_their_context(
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        sel in any::<u8>(),
        updates in arb_updates(64),
        sections in any::<u8>(),
    ) {
        let ctx = TraceContext { trace_id, span_id };
        for frame in [
            Frame::UpdateBatch { stream: arb_stream(sel), client_id: 7, seq: 3, updates },
            Frame::QueryJoin,
            Frame::Inspect { sections, last_events: 4, slow_limit: 4 },
            Frame::Goodbye,
        ] {
            let bytes = frame.encode_traced(Some(ctx));
            let (back, n, got) = Frame::decode_traced(&bytes, DEFAULT_MAX_PAYLOAD)
                .expect("traced frame decodes");
            prop_assert_eq!(&back, &frame);
            prop_assert_eq!(n, bytes.len());
            prop_assert_eq!(got, Some(ctx));
            // A decoder that never asks for the context sees the same
            // frame: the extension cannot change v2 semantics.
            let (plain, m) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .expect("plain decode path accepts traced frames");
            prop_assert_eq!(&plain, &frame);
            prop_assert_eq!(m, bytes.len());
            // The envelope costs exactly its 16-byte context, nothing else.
            prop_assert_eq!(bytes.len(), frame.encode().len() + 16);
        }
    }

    /// An untraced sender is bit-identical to a pre-extension v2 peer:
    /// `ctx = None` must leave no fingerprint on the wire, on either the
    /// contiguous or the vectored write path.
    #[test]
    fn untraced_encoding_is_bit_identical_to_v2(
        sel in any::<u8>(),
        client_id in any::<u64>(),
        seq in any::<u64>(),
        updates in arb_updates(64),
    ) {
        let frame = Frame::UpdateBatch { stream: arb_stream(sel), client_id, seq, updates };
        let v2 = frame.encode();
        prop_assert_eq!(frame.encode_traced(None), v2.clone());
        let mut vectored = Vec::new();
        frame.write_to_traced(&mut vectored, None).expect("write");
        prop_assert_eq!(vectored, v2);
    }

    /// Corruption coverage for the extended envelope: a flipped bit
    /// anywhere in a traced frame — header, trace context, or payload —
    /// must be rejected, exactly as for plain frames.
    #[test]
    fn traced_single_bit_corruption_is_rejected(
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        events in arb_span_events(8),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::InspectReply(Box::new(InspectReport {
            uptime_ns: 1, metrics_json: String::new(), events, slow: Vec::new(), audit: None,
        }));
        let mut bytes = frame.encode_traced(Some(TraceContext { trace_id, span_id }));
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            Frame::decode_traced(&bytes, DEFAULT_MAX_PAYLOAD).is_err(),
            "flip at byte {} bit {} decoded successfully", idx, bit
        );
    }

    /// Truncation coverage for INSPECT_REPLY, the largest variable frame.
    #[test]
    fn inspect_reply_truncation_is_rejected(
        events in arb_span_events(8),
        slow in arb_slow_entries(4),
        cut in any::<u64>(),
    ) {
        let frame = Frame::InspectReply(Box::new(InspectReport {
            uptime_ns: 9, metrics_json: "x".repeat(32), events, slow, audit: None,
        }));
        let bytes = frame.encode();
        let cut = (cut % bytes.len() as u64) as usize;
        let err = Frame::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
        if cut == 0 {
            prop_assert!(matches!(err, WireError::Closed), "{}", err);
        } else {
            prop_assert!(matches!(err, WireError::Truncated), "{}", err);
        }
    }

    /// Back-to-back frames on one stream decode in sequence — the length
    /// prefix alone delimits them.
    #[test]
    fn concatenated_frames_stay_framed(updates in arb_updates(64), accepted in any::<u64>()) {
        let first = Frame::UpdateBatch { stream: StreamId::F, client_id: 3, seq: 2, updates };
        let second = Frame::BatchAck { accepted };
        let mut bytes = first.encode();
        bytes.extend_from_slice(&second.encode());
        let mut cursor = &bytes[..];
        let (a, _) = Frame::read_from(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        let (b, _) = Frame::read_from(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(a, first);
        prop_assert_eq!(b, second);
        prop_assert!(cursor.is_empty());
    }
}
