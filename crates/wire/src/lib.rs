//! # stream-wire
//!
//! The versioned, length-prefixed binary protocol of the skimmed-sketch
//! serving layer. Zero dependencies beyond `std` and the `stream-model`
//! update type: the build (and deployment) environment is offline, so the
//! whole protocol — framing, checksums, payload codecs — is hand-rolled
//! here, reusing the varint/zigzag conventions of the trace codec
//! (`stream-model::io`) and the sketch codec (`stream-sketches::codec`).
//!
//! ## Frame grammar
//!
//! ```text
//! frame       := header payload
//! header      := magic "SSWF"          (4 bytes)
//!                version u16-le        (= 2, the frame-format version)
//!                kind    u8            (frame tag, 1..=23)
//!                flags   u8            (bit 0 = trace ctx, rest reserved 0)
//!                payload_len u32-le
//!                payload_crc u32-le    (CRC-32/IEEE of payload)
//!                header_crc  u32-le    (CRC-32/IEEE of bytes 0..16)
//! payload     := [trace_ctx]? body     (≤ the reader's max_payload)
//! trace_ctx   := trace_id u64-le span_id u64-le   (iff flags bit 0)
//! body        := kind-specific (see `Frame`)
//! ```
//!
//! The header CRC makes desynchronisation loud: a reader that lands
//! mid-stream sees `BadMagic`/`HeaderCrc` immediately instead of
//! interpreting garbage as a length and stalling. The payload CRC catches
//! corruption that TCP's 16-bit checksum can miss on long-haul links.
//!
//! ## Session shape
//!
//! ```text
//! client                                server
//!   | ------------- HELLO ------------->  |
//!   | <----------- HELLO_ACK -----------  |   (schema + limits)
//!   | ------------- RESUME ------------>  |   (optional, after reconnect)
//!   | <----------- RESUME_ACK ----------  |   (last applied seq per stream)
//!   | --------- UPDATE_BATCH ---------->  |   (client_id + seq for dedup)
//!   | <--- BATCH_ACK | THROTTLE | ERROR   |
//!   | ---- QUERY_JOIN / QUERY_SELF_JOIN / SNAPSHOT ---> |
//!   | <--- ANSWER / SNAPSHOT_REPLY / ERROR ------------ |
//!   | ------------ GOODBYE ------------>  |
//!   | <----------- GOODBYE -------------  |   (drained close)
//! ```
//!
//! Strictly one request in flight per connection; every request gets
//! exactly one reply. THROTTLE is a *negative acknowledgement*: the batch
//! was not queued and the producer owns the retry.
//!
//! Version 2 added `client_id`/`seq` to UPDATE_BATCH and the
//! RESUME/RESUME_ACK pair: sequenced batches are idempotent at the
//! server (a replayed `(client_id, stream, seq)` is acknowledged without
//! being re-applied), so a client that loses a connection — or a server
//! that crashes and replays its write-ahead log — can never double-count
//! a batch.
//!
//! ## Trace extension (still version 2)
//!
//! Flags bit 0 ([`FLAG_TRACE`]) marks a 16-byte causal trace context
//! (`trace_id`, `span_id`) prefixed to the payload. The extension is
//! strictly opt-in per frame: a frame written without a context is
//! byte-identical to a pre-extension writer's output, so traced and
//! untraced peers interoperate. A server only stamps the context on
//! replies to requests that carried it, which is how it knows the peer
//! understands the bit. INSPECT/INSPECT_REPLY (kinds 15/16) serve live
//! introspection snapshots — metrics, flight-recorder events, the
//! slow-query log, and the online accuracy audit.
//!
//! ## Protocol version 3: cluster frames
//!
//! The *frame format* above is unchanged (headers still stamp `2`), but
//! HELLO now negotiates a *protocol* version: the session's vocabulary
//! of frame kinds. A client offers its [`PROTOCOL_VERSION`] in
//! `Frame::Hello.protocol`; a server accepts any offer in
//! `[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]` and rejects the rest with
//! the typed [`ErrorCode::UnsupportedVersion`] — mixed fleets fail loud
//! at the handshake, not deep in a session. Version 3 adds the cluster
//! vocabulary, legal only on sessions that negotiated ≥ 3:
//!
//! * SHARD_MAP (kind 17) — request/reply for the router's versioned
//!   [`ShardMapInfo`] cluster manifest (a request is a `ShardMapInfo`
//!   with `version == 0` and no shards).
//! * SHARD_QUERY / SHARD_QUERY_REPLY (kinds 18/19) — fetch a shard
//!   server's raw encoded sketch state for the requested streams (see
//!   [`SHARD_STREAM_F`]/[`SHARD_STREAM_G`]) in one round trip, so the
//!   router can merge per-shard sketches by linearity and answer joins
//!   bit-identically to a single node.
//!
//! Plain v2 clients still interoperate with v3 servers (single-node or
//! shard): they offer 2, the server accepts, and no cluster frame ever
//! appears on the session.
//!
//! ## Protocol version 3: replication frames
//!
//! The replication vocabulary is more v3 frame kinds (no new protocol
//! version: v3 sessions simply grew new verbs, and nothing sends them to
//! a peer that did not negotiate ≥ 3):
//!
//! * REPLICATE (kind 20) — a chunk of the primary's WAL byte stream
//!   (verbatim `Frame::encode` records cut at a frame boundary), or a
//!   snapshot blob bootstrapping a follower whose requested position was
//!   pruned. Carries the sender's fencing epoch and the primary's
//!   durable frontier.
//! * REPLICATE_ACK (kind 21) — the follower's durable replication
//!   frontier `(segment, offset)`; doubles as the long-poll request for
//!   the next chunk from that position.
//! * HEARTBEAT (kind 22) — liveness probe; the reply carries the
//!   responder's epoch, role, and durable WAL frontier for the router's
//!   failure detector and replica-lag gauges.
//! * PROMOTE (kind 23) — router → follower: assume the primary role
//!   under a strictly-greater fencing epoch; echoed back as the ack.
//!
//! Fencing: every REPLICATE is checked against the receiver's adopted
//! epoch and a stale sender gets the typed [`ErrorCode::Fenced`], so an
//! ex-primary that missed its own demotion cannot split-brain. Client
//! writes that reach a follower get [`ErrorCode::NotPrimary`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod crc;
mod frame;

pub use crc::crc32;
pub use frame::{
    encode_update_batch, write_update_batch, write_update_batch_traced, AuditSummary, ErrorCode,
    Frame, InspectReport, ServerInfo, ShardEntry, ShardMapInfo, SlowQueryEntry, StreamId,
    TraceContext, WireSpanEvent, FLAG_TRACE, INSPECT_ALL, INSPECT_AUDIT, INSPECT_EVENTS,
    INSPECT_METRICS, INSPECT_SLOW, SHARD_STREAM_BOTH, SHARD_STREAM_F, SHARD_STREAM_G,
};

use std::io;

/// Header magic: "Skimmed-Sketch Wire Frame".
pub const MAGIC: &[u8; 4] = b"SSWF";

/// Frame-format version stamped in every header. This is the *framing*
/// version (layout of the 20-byte header, CRC discipline); the
/// session's *vocabulary* is negotiated separately via
/// [`PROTOCOL_VERSION`] in HELLO.
pub const VERSION: u16 = 2;

/// Newest protocol (frame-vocabulary) version this build speaks; offered
/// by clients in HELLO. Version 3 adds the cluster frames
/// (SHARD_MAP/SHARD_QUERY/SHARD_QUERY_REPLY).
pub const PROTOCOL_VERSION: u16 = 3;

/// Oldest protocol version a server still accepts in HELLO. Offers
/// outside `[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]` are rejected with
/// [`ErrorCode::UnsupportedVersion`].
pub const MIN_PROTOCOL_VERSION: u16 = 2;

/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 20;

/// Default cap on a single frame's payload (16 MiB) — far above any
/// sensible batch, far below "attacker controls allocation".
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 << 20;

/// Errors reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// Underlying I/O failure (including mid-frame timeouts).
    Io(io::Error),
    /// The read timed out before the first header byte: the connection is
    /// idle at a frame boundary and the read may simply be retried.
    Idle,
    /// Clean EOF at a frame boundary: the peer closed the connection.
    Closed,
    /// Header magic mismatch.
    BadMagic,
    /// Header CRC mismatch.
    HeaderCrc,
    /// Payload CRC mismatch.
    PayloadCrc,
    /// Unsupported protocol version.
    BadVersion(u16),
    /// Unknown frame kind tag.
    BadKind(u8),
    /// Non-zero reserved flags.
    BadFlags(u8),
    /// Frame ended before its payload was complete.
    Truncated,
    /// Declared payload exceeds the reader's limit.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The reader's limit.
        max: u32,
    },
    /// Payload decoded cleanly but left unread bytes.
    TrailingBytes,
    /// Structurally invalid payload content.
    BadPayload(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Idle => write!(f, "idle: no frame before read timeout"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::HeaderCrc => write!(f, "frame header crc mismatch"),
            WireError::PayloadCrc => write!(f, "frame payload crc mismatch"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadFlags(x) => write!(f, "non-zero reserved flags {x:#04x}"),
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds limit {max}")
            }
            WireError::TrailingBytes => write!(f, "payload has trailing bytes"),
            WireError::BadPayload(what) => write!(f, "bad payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_model::update::Update;

    #[test]
    fn header_layout_is_twenty_bytes() {
        let bytes = Frame::QueryJoin.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(&bytes[0..4], MAGIC);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
    }

    #[test]
    fn batch_round_trips() {
        let frame = Frame::UpdateBatch {
            stream: StreamId::G,
            client_id: 0xD1CE_F00D,
            seq: 41,
            updates: vec![
                Update::insert(7),
                Update::delete(9),
                Update::insert(1 << 40),
            ],
        };
        let bytes = frame.encode();
        let (back, n) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, frame);
        assert_eq!(n, bytes.len());
    }

    #[test]
    fn encode_update_batch_matches_frame_encode() {
        // The server WAL-logs batches via `encode_update_batch` without
        // materialising a `Frame`; recovery decodes them as frames, so
        // the two encoders must agree byte for byte.
        let updates = vec![
            Update::insert(7),
            Update::delete(9),
            Update::insert(1 << 40),
        ];
        let direct = encode_update_batch(StreamId::G, 0xD1CE_F00D, 41, &updates);
        let via_frame = Frame::UpdateBatch {
            stream: StreamId::G,
            client_id: 0xD1CE_F00D,
            seq: 41,
            updates,
        }
        .encode();
        assert_eq!(direct, via_frame);
    }

    #[test]
    fn resume_round_trips() {
        for frame in [
            Frame::Resume {
                client_id: u64::MAX,
            },
            Frame::ResumeAck {
                last_seq_f: 7,
                last_seq_g: 0,
            },
        ] {
            let bytes = frame.encode();
            let (back, n) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(back, frame);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn idle_and_close_are_distinguished() {
        // An empty reader is a clean close…
        let err = Frame::decode(&[], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::Closed), "{err}");
        // …while a cut-off frame is truncation.
        let bytes = Frame::QueryJoin.encode();
        let err = Frame::decode(&bytes[..HEADER_LEN - 3], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::Truncated), "{err}");
    }

    #[test]
    fn shard_frames_round_trip() {
        for frame in [
            // A manifest request: version 0, no shards.
            Frame::ShardMap(ShardMapInfo {
                version: 0,
                seed: 0,
                shards: vec![],
            }),
            Frame::ShardMap(ShardMapInfo {
                version: 3,
                seed: 0xFEED_5EED,
                shards: vec![
                    ShardEntry {
                        addr: "127.0.0.1:7401".into(),
                        healthy: true,
                        follower: "127.0.0.1:7501".into(),
                        lag_bytes: 4096,
                    },
                    ShardEntry {
                        addr: "127.0.0.1:7402".into(),
                        healthy: false,
                        follower: String::new(),
                        lag_bytes: 0,
                    },
                ],
            }),
            Frame::ShardQuery {
                streams: SHARD_STREAM_F,
            },
            Frame::ShardQuery {
                streams: SHARD_STREAM_BOTH,
            },
            Frame::ShardQueryReply {
                streams: SHARD_STREAM_BOTH,
                sketch_f: vec![1, 2, 3],
                sketch_g: vec![9; 100],
            },
            Frame::ShardQueryReply {
                streams: SHARD_STREAM_G,
                sketch_f: vec![],
                sketch_g: vec![7, 7],
            },
        ] {
            let bytes = frame.encode();
            let (back, n) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(back, frame);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn shard_query_rejects_bad_stream_masks() {
        // An empty or out-of-range mask is a structural error, not a
        // silently-empty query.
        let mut bytes = Frame::ShardQuery {
            streams: SHARD_STREAM_F,
        }
        .encode();
        let payload_at = HEADER_LEN;
        for bad in [0u8, 0x04, 0xFF] {
            bytes[payload_at] = bad;
            let crc = crc32(&bytes[payload_at..]);
            bytes[12..16].copy_from_slice(&crc.to_le_bytes());
            // The header CRC covers the payload-CRC field just patched.
            let hcrc = crc32(&bytes[..16]);
            bytes[16..20].copy_from_slice(&hcrc.to_le_bytes());
            let err = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(matches!(err, WireError::BadPayload(_)), "{bad:#04x}: {err}");
        }
    }

    #[test]
    fn version_error_codes_round_trip_typed() {
        for (code, raw) in [
            (ErrorCode::UnsupportedVersion, 6),
            (ErrorCode::ShardUnavailable, 7),
            (ErrorCode::NotPrimary, 8),
            (ErrorCode::Fenced, 9),
        ] {
            assert_eq!(code.as_u16(), raw);
            assert_eq!(ErrorCode::from_u16(raw), code);
            let frame = Frame::Error {
                code,
                message: "partition 1 (127.0.0.1:7402) unreachable".into(),
            };
            let bytes = frame.encode();
            let (back, _) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn replication_frames_round_trip() {
        for frame in [
            Frame::Replicate {
                epoch: 2,
                segment: 5,
                offset: 1 << 20,
                snapshot: false,
                frontier_segment: 6,
                frontier_offset: 512,
                bytes: Frame::QueryJoin.encode(),
            },
            // Snapshot bootstrap chunk.
            Frame::Replicate {
                epoch: 1,
                segment: 9,
                offset: 0,
                snapshot: true,
                frontier_segment: 9,
                frontier_offset: 0,
                bytes: vec![0xAB; 300],
            },
            // Caught-up poll reply: empty chunk.
            Frame::Replicate {
                epoch: 1,
                segment: 0,
                offset: 0,
                snapshot: false,
                frontier_segment: 0,
                frontier_offset: 0,
                bytes: vec![],
            },
            Frame::ReplicateAck {
                epoch: u64::MAX,
                segment: 3,
                offset: 77,
            },
            Frame::Heartbeat {
                epoch: 0,
                primary: false,
                segment: 0,
                offset: 0,
            },
            Frame::Heartbeat {
                epoch: 4,
                primary: true,
                segment: 12,
                offset: 4096,
            },
            Frame::Promote { epoch: 2 },
        ] {
            let bytes = frame.encode();
            let (back, n) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(back, frame);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn replicate_rejects_bad_tags_and_trailing_bytes() {
        // A bad snapshot-presence tag is a structural error.
        let mut bytes = Frame::Replicate {
            epoch: 1,
            segment: 1,
            offset: 1,
            snapshot: false,
            frontier_segment: 1,
            frontier_offset: 1,
            bytes: vec![],
        }
        .encode();
        // payload = epoch, segment, offset (1 varint byte each), then tag.
        let tag_at = HEADER_LEN + 3;
        bytes[tag_at] = 7;
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        let hcrc = crc32(&bytes[..16]);
        bytes[16..20].copy_from_slice(&hcrc.to_le_bytes());
        let err = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::BadPayload(_)), "{err}");

        // A chunk whose declared length stops short of the payload tail
        // leaves trailing bytes, which the decoder rejects.
        let mut ack = Frame::ReplicateAck {
            epoch: 1,
            segment: 1,
            offset: 1,
        }
        .encode();
        ack.push(0x00);
        let len = (ack.len() - HEADER_LEN) as u32;
        ack[8..12].copy_from_slice(&len.to_le_bytes());
        let crc = crc32(&ack[HEADER_LEN..]);
        ack[12..16].copy_from_slice(&crc.to_le_bytes());
        let hcrc = crc32(&ack[..16]);
        ack[16..20].copy_from_slice(&hcrc.to_le_bytes());
        let err = Frame::decode(&ack, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes), "{err}");
    }

    #[test]
    fn protocol_version_range_is_sane() {
        const { assert!(MIN_PROTOCOL_VERSION <= PROTOCOL_VERSION) }
        // The frame format itself did not change with protocol v3.
        assert_eq!(VERSION, 2);
    }

    #[test]
    fn oversize_is_rejected_before_allocation() {
        let frame = Frame::SnapshotReply {
            stream: StreamId::F,
            sketch: vec![0xAB; 4096],
        };
        let bytes = frame.encode();
        let err = Frame::decode(&bytes, 16).unwrap_err();
        assert!(matches!(err, WireError::Oversize { max: 16, .. }), "{err}");
    }
}
