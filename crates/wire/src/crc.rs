//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every frame header and payload on the wire.
//!
//! Hand-rolled because the build environment is offline; a single
//! compile-time table keeps the per-byte cost at one XOR, one shift and
//! one lookup, which is noise next to the TCP stack.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // ss-analyze: allow(a2-panic-free) -- const-evaluated table build: `i < 256` is the loop bound, and a const-eval panic is a compile error, not a runtime one
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (standard init `!0`, final complement).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        // ss-analyze: allow(a2-panic-free) -- index is masked `& 0xFF` into a 256-entry table, provably in bounds
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"skimmed sketches on the wire".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at byte {i} bit {bit}");
            }
        }
    }
}
