//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every frame header and payload on the wire.
//!
//! Hand-rolled because the build environment is offline. The kernel is
//! slice-by-8: eight compile-time tables let one iteration fold eight
//! payload bytes with eight independent lookups, breaking the serial
//! one-lookup-per-byte dependency chain of the classic table CRC. On the
//! ~128 KiB batch payloads the server streams, that chain was the single
//! largest cost on the wire path (each payload is checksummed twice —
//! once on encode, once on verify).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry tables, built at compile time.
///
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][i]`
/// advances `TABLES[k-1][i]` by one more zero byte, so the eight lookups
/// of one slice-by-8 step each account for a byte at a distinct offset.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // ss-analyze: allow(a2-panic-free) -- const-evaluated table build: `i < 256` is the loop bound, and a const-eval panic is a compile error, not a runtime one
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            // ss-analyze: allow(a2-panic-free) -- const-evaluated table build: `k < 8` and `i < 256` bound every index, and a const-eval panic is a compile error, not a runtime one
            let prev = tables[k - 1][i];
            // ss-analyze: allow(a2-panic-free) -- const-evaluated table build: `k < 8` and `i < 256` bound every index, and a const-eval panic is a compile error, not a runtime one
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// One slice-by-8 lookup: table `K`, row `i`. The only indexing on the
/// hot path, provably in bounds by type (`K` is a compile-time constant
/// below 8, `i` is a `u8` widened into a 256-entry row).
#[inline(always)]
fn tab<const K: usize>(i: u8) -> u32 {
    // ss-analyze: allow(a2-panic-free) -- `K < 8` at every call site and `i` is a `u8` into a 256-entry row, provably in bounds
    TABLES[K][i as usize]
}

/// Fold one byte into the running (pre-complement) CRC.
#[inline]
fn step(crc: u32, b: u8) -> u32 {
    // ss-analyze: allow(a2-panic-free) -- index is masked `& 0xFF` into a 256-entry table, provably in bounds
    (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize]
}

/// CRC-32 of `bytes` (standard init `!0`, final complement).
///
/// Bit-identical to the textbook byte-at-a-time CRC for every input;
/// `agrees_with_the_byte_at_a_time_reference` below pins that.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        // `chunks_exact(8)` guarantees 8 bytes; the fallback is unreachable.
        let v = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8]));
        let x = crc ^ (v as u32);
        let hi = (v >> 32) as u32;
        crc = tab::<7>(x as u8)
            ^ tab::<6>((x >> 8) as u8)
            ^ tab::<5>((x >> 16) as u8)
            ^ tab::<4>((x >> 24) as u8)
            ^ tab::<3>(hi as u8)
            ^ tab::<2>((hi >> 8) as u8)
            ^ tab::<1>((hi >> 16) as u8)
            ^ tab::<0>((hi >> 24) as u8);
    }
    for &b in chunks.remainder() {
        crc = step(crc, b);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::{crc32, step};

    /// The classic one-lookup-per-byte CRC the slice-by-8 kernel replaced.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = step(crc, b);
        }
        !crc
    }

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn agrees_with_the_byte_at_a_time_reference() {
        // Deterministic pseudo-random payloads at every length across a
        // few slice-by-8 block boundaries, plus a batch-sized one.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut bytes = Vec::new();
        for len in 0..64usize {
            bytes.clear();
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((state >> 56) as u8);
            }
            assert_eq!(crc32(&bytes), crc32_reference(&bytes), "length {len}");
        }
        let big: Vec<u8> = (0..131_072u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        assert_eq!(crc32(&big), crc32_reference(&big));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"skimmed sketches on the wire".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at byte {i} bit {bit}");
            }
        }
    }
}
