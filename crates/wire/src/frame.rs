//! Frame types and their payload codecs.
//!
//! Every frame is a 20-byte CRC-checked header followed by a payload
//! whose layout depends on the frame kind (see the crate docs for the
//! full grammar). Integers are little-endian; counts and values use the
//! same varint/zigzag conventions as the trace codec in
//! `stream-model::trace` and the sketch codec in `stream-sketches`.

use crate::crc::crc32;
use crate::{WireError, HEADER_LEN, MAGIC, VERSION};
use std::io::{self, Read, Write};
use stream_model::update::Update;

/// Which of the server's two update streams a frame refers to.
///
/// The paper's estimand is `COUNT(F ⋈ G)`: the server maintains one
/// skimmed sketch per side of the join and update/query frames address
/// them by this tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StreamId {
    /// The left join input `F`.
    F = 0,
    /// The right join input `G`.
    G = 1,
}

impl StreamId {
    /// Both stream tags, in wire order.
    pub const ALL: [StreamId; 2] = [StreamId::F, StreamId::G];

    /// Decodes a wire tag.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(StreamId::F),
            1 => Ok(StreamId::G),
            _ => Err(WireError::BadPayload("unknown stream id")),
        }
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamId::F => write!(f, "F"),
            StreamId::G => write!(f, "G"),
        }
    }
}

/// Error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or unexpected frame (e.g. a request before HELLO).
    Protocol,
    /// A stream tag the server does not serve.
    UnknownStream,
    /// UPDATE_BATCH larger than the advertised `max_batch`.
    BatchTooLarge,
    /// The server is draining; reconnect later.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
    /// A code this build does not know (forward compatibility).
    Other(u16),
}

impl ErrorCode {
    /// Wire representation.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::UnknownStream => 2,
            ErrorCode::BatchTooLarge => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::Internal => 5,
            ErrorCode::Other(c) => c,
        }
    }

    /// Decodes a wire code; unknown codes are preserved, not rejected.
    pub fn from_u16(c: u16) -> Self {
        match c {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownStream,
            3 => ErrorCode::BatchTooLarge,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Internal,
            other => ErrorCode::Other(other),
        }
    }
}

/// The schema and limits a server advertises in [`Frame::HelloAck`].
///
/// Carrying the full synopsis shape in the handshake means a client can
/// rebuild an identical local `SkimmedSchema` — required both to decode
/// SNAPSHOT replies and to reason about what the server's estimates mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// `log2` of the value domain size.
    pub domain_log2: u16,
    /// `true` when the server skims via dyadic levels, `false` for the
    /// naive-scan strategy.
    pub dyadic: bool,
    /// Hash tables per sketch (`s1`).
    pub tables: u32,
    /// Buckets per table (`b`).
    pub buckets: u32,
    /// Root seed of the hash families.
    pub seed: u64,
    /// Largest number of updates accepted in one UPDATE_BATCH.
    pub max_batch: u32,
    /// The ingest pool's queue capacity in chunks; once `pending` reaches
    /// this, batches bounce with THROTTLE.
    pub queue_limit: u32,
}

/// A protocol frame.
///
/// The request/response pairing is strict: every client request receives
/// exactly one reply frame (possibly [`Frame::Throttle`] or
/// [`Frame::Error`]), so a connection never has more than one request in
/// flight and framing errors cannot silently desynchronise the two sides.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: opens a session. `protocol` is the highest wire
    /// version the client speaks; `client` is a free-form name for logs.
    Hello {
        /// Highest protocol version the client understands.
        protocol: u16,
        /// Client name recorded in server logs/telemetry.
        client: String,
    },
    /// Server → client: accepts the session and advertises the synopsis
    /// schema plus serving limits.
    HelloAck(ServerInfo),
    /// Client → server: a chunk of updates for one stream.
    ///
    /// `client_id`/`seq` make batches **idempotent**: a server that has
    /// already applied `(client_id, stream, seq)` acknowledges a resend
    /// without applying it again, so a client that lost a BATCH_ACK to a
    /// crash or disconnect can safely replay. `client_id = 0` opts out of
    /// sequencing (the server applies unconditionally and keeps no state).
    UpdateBatch {
        /// Which join input the updates belong to.
        stream: StreamId,
        /// Stable producer identity for dedup; `0` = unsequenced.
        client_id: u64,
        /// Per-`(client_id, stream)` batch sequence number, starting at 1
        /// and incremented only after the batch is acknowledged.
        seq: u64,
        /// The updates, in stream order.
        updates: Vec<Update>,
    },
    /// Server → client: the batch was queued for ingestion.
    BatchAck {
        /// Number of updates accepted (echo of the batch length).
        accepted: u64,
    },
    /// Client → server: estimate `COUNT(F ⋈ G)` from linearizable
    /// snapshots of both sketches.
    QueryJoin,
    /// Client → server: estimate the self-join size (second moment) of
    /// one stream.
    QuerySelfJoin {
        /// The stream to estimate.
        stream: StreamId,
    },
    /// Server → client: an estimate, with the ESTSKIMJOINSIZE sub-join
    /// anatomy (zeros where a sub-join does not apply, e.g. self-joins).
    Answer {
        /// The estimate itself.
        estimate: f64,
        /// Exact dense⋈dense term.
        dense_dense: f64,
        /// Estimated dense⋈sparse term.
        dense_sparse: f64,
        /// Estimated sparse⋈dense term.
        sparse_dense: f64,
        /// Estimated sparse⋈sparse term.
        sparse_sparse: f64,
        /// Dense values skimmed from `F`.
        dense_f: u64,
        /// Dense values skimmed from `G`.
        dense_g: u64,
    },
    /// Client → server: ship a linearizable snapshot of one stream's full
    /// skimmed sketch.
    Snapshot {
        /// The stream to snapshot.
        stream: StreamId,
    },
    /// Server → client: the encoded sketch (the `skimmed-sketch` codec's
    /// self-describing format, opaque at this layer).
    SnapshotReply {
        /// The snapshotted stream.
        stream: StreamId,
        /// `encode_skimmed` bytes.
        sketch: Vec<u8>,
    },
    /// Server → client: the ingest queue is full; the batch was **not**
    /// queued. Resend after backing off.
    Throttle {
        /// Chunks pending in the pool when the batch bounced.
        pending: u64,
        /// The pool's queue capacity in chunks.
        limit: u64,
    },
    /// Either direction: a terminal error for the current request or, for
    /// protocol-level failures, the session.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
    /// Client → server: clean session end. The server echoes it back
    /// after its last reply so the client can confirm a drained close.
    Goodbye,
    /// Client → server: after a reconnect, ask how far the server has
    /// durably applied this producer's sequenced batches, so the client
    /// can replay from the first unacknowledged batch instead of either
    /// resending everything or losing the tail.
    Resume {
        /// The producer identity whose progress is being queried.
        client_id: u64,
    },
    /// Server → client: the highest applied sequence number per stream
    /// for the queried `client_id` (`0` = nothing applied / unknown
    /// client — replay from the start).
    ResumeAck {
        /// Highest applied `seq` for stream `F`.
        last_seq_f: u64,
        /// Highest applied `seq` for stream `G`.
        last_seq_g: u64,
    },
}

/// Wire tags for [`Frame`] kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Hello = 1,
    HelloAck = 2,
    UpdateBatch = 3,
    BatchAck = 4,
    QueryJoin = 5,
    QuerySelfJoin = 6,
    Answer = 7,
    Snapshot = 8,
    SnapshotReply = 9,
    Throttle = 10,
    Error = 11,
    Goodbye = 12,
    Resume = 13,
    ResumeAck = 14,
}

impl Kind {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => Kind::Hello,
            2 => Kind::HelloAck,
            3 => Kind::UpdateBatch,
            4 => Kind::BatchAck,
            5 => Kind::QueryJoin,
            6 => Kind::QuerySelfJoin,
            7 => Kind::Answer,
            8 => Kind::Snapshot,
            9 => Kind::SnapshotReply,
            10 => Kind::Throttle,
            11 => Kind::Error,
            12 => Kind::Goodbye,
            13 => Kind::Resume,
            14 => Kind::ResumeAck,
            other => return Err(WireError::BadKind(other)),
        })
    }
}

// ---------------------------------------------------------------------
// payload primitives
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn zigzag(w: i64) -> u64 {
    ((w << 1) ^ (w >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Sequential reader over a payload slice; every accessor fails with
/// [`WireError::Truncated`] instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// `take` as a fixed array; the length mismatch arm is statically
    /// dead (`take(N)` returns exactly `N` bytes) but stays a typed
    /// error rather than a panic.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut x = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            x |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
        }
        Err(WireError::BadPayload("malformed varint"))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload("invalid utf-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// frame codec
// ---------------------------------------------------------------------

/// Serialises the UPDATE_BATCH payload body (shared between
/// [`Frame::encode`] and [`encode_update_batch`], so the two are
/// byte-identical by construction).
fn update_batch_payload(
    out: &mut Vec<u8>,
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
) {
    out.push(stream as u8);
    put_varint(out, client_id);
    put_varint(out, seq);
    put_varint(out, updates.len() as u64);
    for u in updates {
        put_varint(out, u.value);
        put_varint(out, zigzag(u.weight));
    }
}

/// Builds the 20-byte dual-CRC header for a finished payload.
/// Panic-free by construction: every byte lands by destructuring and
/// array literals, with no index expression anywhere.
fn header_bytes(kind: Kind, payload: &[u8]) -> [u8; HEADER_LEN] {
    let [m0, m1, m2, m3] = *MAGIC;
    let [v0, v1] = VERSION.to_le_bytes();
    let [l0, l1, l2, l3] = (payload.len() as u32).to_le_bytes();
    let [p0, p1, p2, p3] = crc32(payload).to_le_bytes();
    // The 16 bytes the header CRC covers (flags byte reserved as 0).
    let checked = [
        m0, m1, m2, m3, v0, v1, kind as u8, 0, l0, l1, l2, l3, p0, p1, p2, p3,
    ];
    let [h0, h1, h2, h3] = crc32(&checked).to_le_bytes();
    let [m0, m1, m2, m3, v0, v1, k, f, l0, l1, l2, l3, p0, p1, p2, p3] = checked;
    [
        m0, m1, m2, m3, v0, v1, k, f, l0, l1, l2, l3, p0, p1, p2, p3, h0, h1, h2, h3,
    ]
}

/// Wraps a finished payload in the dual-CRC frame header.
fn assemble(kind: Kind, payload: Vec<u8>) -> Vec<u8> {
    let header = header_bytes(kind, &payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(&payload);
    out
}

/// Encodes an UPDATE_BATCH frame from borrowed parts — byte-identical
/// to `Frame::UpdateBatch { .. }.encode()` without taking ownership of
/// the updates. The serving layer uses this to write the WAL record and
/// then hand the same vector to ingest without a clone.
pub fn encode_update_batch(
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
) -> Vec<u8> {
    let mut payload = Vec::new();
    update_batch_payload(&mut payload, stream, client_id, seq, updates);
    assemble(Kind::UpdateBatch, payload)
}

/// Writes an UPDATE_BATCH frame from borrowed parts straight to `w` —
/// byte-identical on the wire to `Frame::UpdateBatch { .. }.write_to(w)`
/// without taking ownership of (or cloning) the updates. The client's
/// batch send path uses this so each batch is serialised exactly once.
pub fn write_update_batch<W: Write>(
    w: &mut W,
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
) -> io::Result<usize> {
    let mut payload = Vec::new();
    update_batch_payload(&mut payload, stream, client_id, seq, updates);
    write_frame_vectored(w, Kind::UpdateBatch, &payload)
}

/// One vectored write of header + payload (short writes completed, EINTR
/// retried), returning the total wire length.
fn write_frame_vectored<W: Write>(w: &mut W, kind: Kind, payload: &[u8]) -> io::Result<usize> {
    let header = header_bytes(kind, payload);
    let total = HEADER_LEN + payload.len();
    let mut written = 0usize;
    while written < total {
        let res = if written < HEADER_LEN {
            w.write_vectored(&[
                // ss-analyze: allow(a2-panic-free) -- `written < HEADER_LEN` in this branch, so the range start is within the 20-byte header
                io::IoSlice::new(&header[written..]),
                io::IoSlice::new(payload),
            ])
        } else {
            // ss-analyze: allow(a2-panic-free) -- loop invariant `written < total = HEADER_LEN + payload.len()` puts `written - HEADER_LEN` within the payload
            w.write(&payload[written - HEADER_LEN..])
        };
        match res {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

impl Frame {
    fn kind(&self) -> Kind {
        match self {
            Frame::Hello { .. } => Kind::Hello,
            Frame::HelloAck(_) => Kind::HelloAck,
            Frame::UpdateBatch { .. } => Kind::UpdateBatch,
            Frame::BatchAck { .. } => Kind::BatchAck,
            Frame::QueryJoin => Kind::QueryJoin,
            Frame::QuerySelfJoin { .. } => Kind::QuerySelfJoin,
            Frame::Answer { .. } => Kind::Answer,
            Frame::Snapshot { .. } => Kind::Snapshot,
            Frame::SnapshotReply { .. } => Kind::SnapshotReply,
            Frame::Throttle { .. } => Kind::Throttle,
            Frame::Error { .. } => Kind::Error,
            Frame::Goodbye => Kind::Goodbye,
            Frame::Resume { .. } => Kind::Resume,
            Frame::ResumeAck { .. } => Kind::ResumeAck,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { protocol, client } => {
                out.extend_from_slice(&protocol.to_le_bytes());
                put_string(&mut out, client);
            }
            Frame::HelloAck(info) => {
                out.extend_from_slice(&info.domain_log2.to_le_bytes());
                out.push(info.dyadic as u8);
                out.extend_from_slice(&info.tables.to_le_bytes());
                out.extend_from_slice(&info.buckets.to_le_bytes());
                out.extend_from_slice(&info.seed.to_le_bytes());
                out.extend_from_slice(&info.max_batch.to_le_bytes());
                out.extend_from_slice(&info.queue_limit.to_le_bytes());
            }
            Frame::UpdateBatch {
                stream,
                client_id,
                seq,
                updates,
            } => update_batch_payload(&mut out, *stream, *client_id, *seq, updates),
            Frame::BatchAck { accepted } => put_varint(&mut out, *accepted),
            Frame::QueryJoin | Frame::Goodbye => {}
            Frame::QuerySelfJoin { stream } | Frame::Snapshot { stream } => {
                out.push(*stream as u8);
            }
            Frame::Answer {
                estimate,
                dense_dense,
                dense_sparse,
                sparse_dense,
                sparse_sparse,
                dense_f,
                dense_g,
            } => {
                for v in [
                    estimate,
                    dense_dense,
                    dense_sparse,
                    sparse_dense,
                    sparse_sparse,
                ] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                put_varint(&mut out, *dense_f);
                put_varint(&mut out, *dense_g);
            }
            Frame::SnapshotReply { stream, sketch } => {
                out.push(*stream as u8);
                put_varint(&mut out, sketch.len() as u64);
                out.extend_from_slice(sketch);
            }
            Frame::Throttle { pending, limit } => {
                put_varint(&mut out, *pending);
                put_varint(&mut out, *limit);
            }
            Frame::Error { code, message } => {
                out.extend_from_slice(&code.as_u16().to_le_bytes());
                put_string(&mut out, message);
            }
            Frame::Resume { client_id } => put_varint(&mut out, *client_id),
            Frame::ResumeAck {
                last_seq_f,
                last_seq_g,
            } => {
                put_varint(&mut out, *last_seq_f);
                put_varint(&mut out, *last_seq_g);
            }
        }
        out
    }

    fn decode_payload(kind: Kind, payload: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(payload);
        let frame = match kind {
            Kind::Hello => Frame::Hello {
                protocol: r.u16()?,
                client: r.string()?,
            },
            Kind::HelloAck => Frame::HelloAck(ServerInfo {
                domain_log2: r.u16()?,
                dyadic: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadPayload("bad strategy tag")),
                },
                tables: r.u32()?,
                buckets: r.u32()?,
                seed: r.u64()?,
                max_batch: r.u32()?,
                queue_limit: r.u32()?,
            }),
            Kind::UpdateBatch => {
                let stream = StreamId::from_u8(r.u8()?)?;
                let client_id = r.varint()?;
                let seq = r.varint()?;
                let count = r.varint()? as usize;
                // Every update needs ≥ 2 payload bytes; a declared count
                // beyond that is truncation, caught before allocating.
                if count > r.buf.len() {
                    return Err(WireError::Truncated);
                }
                let mut updates = Vec::with_capacity(count);
                for _ in 0..count {
                    let value = r.varint()?;
                    let weight = unzigzag(r.varint()?);
                    updates.push(Update { value, weight });
                }
                Frame::UpdateBatch {
                    stream,
                    client_id,
                    seq,
                    updates,
                }
            }
            Kind::BatchAck => Frame::BatchAck {
                accepted: r.varint()?,
            },
            Kind::QueryJoin => Frame::QueryJoin,
            Kind::QuerySelfJoin => Frame::QuerySelfJoin {
                stream: StreamId::from_u8(r.u8()?)?,
            },
            Kind::Answer => Frame::Answer {
                estimate: r.f64()?,
                dense_dense: r.f64()?,
                dense_sparse: r.f64()?,
                sparse_dense: r.f64()?,
                sparse_sparse: r.f64()?,
                dense_f: r.varint()?,
                dense_g: r.varint()?,
            },
            Kind::Snapshot => Frame::Snapshot {
                stream: StreamId::from_u8(r.u8()?)?,
            },
            Kind::SnapshotReply => {
                let stream = StreamId::from_u8(r.u8()?)?;
                let len = r.varint()? as usize;
                let sketch = r.take(len)?.to_vec();
                Frame::SnapshotReply { stream, sketch }
            }
            Kind::Throttle => Frame::Throttle {
                pending: r.varint()?,
                limit: r.varint()?,
            },
            Kind::Error => Frame::Error {
                code: ErrorCode::from_u16(r.u16()?),
                message: r.string()?,
            },
            Kind::Goodbye => Frame::Goodbye,
            Kind::Resume => Frame::Resume {
                client_id: r.varint()?,
            },
            Kind::ResumeAck => Frame::ResumeAck {
                last_seq_f: r.varint()?,
                last_seq_g: r.varint()?,
            },
        };
        r.finish()?;
        Ok(frame)
    }

    /// Encodes the frame into its complete wire representation
    /// (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        assemble(self.kind(), self.encode_payload())
    }

    /// Writes the frame to `w` with a single vectored write of the
    /// stack-resident header plus the payload, returning the number of
    /// wire bytes.
    ///
    /// Compared to encoding into one contiguous buffer this skips the
    /// header+payload concatenation copy (and its allocation) on every
    /// frame; the kernel still sees both pieces in one syscall. Partial
    /// vectored writes (short `writev`) are completed with `write_all` on
    /// the remainder.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        let payload = self.encode_payload();
        write_frame_vectored(w, self.kind(), &payload)
    }

    /// Reads one frame from `r`, returning it with its wire length.
    ///
    /// `max_payload` bounds the declared payload length **before** any
    /// allocation, so a hostile or corrupt header cannot make the reader
    /// buffer unbounded memory.
    ///
    /// Timeout semantics (the serving layer's idle loop relies on this):
    /// if the *first* header byte is not available before the reader's
    /// timeout, no bytes have been consumed and [`WireError::Idle`] is
    /// returned — the caller may simply retry. A timeout anywhere later
    /// is a mid-frame stall and surfaces as [`WireError::Io`]; the stream
    /// is no longer at a frame boundary and must be closed.
    pub fn read_from<R: Read>(r: &mut R, max_payload: u32) -> Result<(Frame, usize), WireError> {
        Frame::read_from_with_scratch(r, max_payload, &mut Vec::new())
    }

    /// [`Frame::read_from`] with a caller-owned payload scratch buffer.
    ///
    /// The payload bytes are read into `scratch` (grown once to the
    /// largest frame seen, then reused), so a handler loop that receives
    /// many frames — the server's UPDATE_BATCH ingest path — stops paying
    /// one payload allocation per frame. The buffer's contents are
    /// meaningless between calls; only its capacity is reused.
    pub fn read_from_with_scratch<R: Read>(
        r: &mut R,
        max_payload: u32,
        scratch: &mut Vec<u8>,
    ) -> Result<(Frame, usize), WireError> {
        let mut header = [0u8; HEADER_LEN];
        {
            // First byte separately: distinguishes idle (retryable) and
            // clean close (no data) from a stall inside a frame.
            let (first, rest) = header.split_at_mut(1);
            loop {
                match r.read(first) {
                    Ok(0) => return Err(WireError::Closed),
                    Ok(_) => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Err(WireError::Idle)
                    }
                    Err(e) => return Err(WireError::Io(e)),
                }
            }
            r.read_exact(rest).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    WireError::Truncated
                } else {
                    WireError::Io(e)
                }
            })?;
        }
        // Destructure the fixed-size header once; every field access
        // below is a binding, not an index.
        let [m0, m1, m2, m3, v0, v1, kind_byte, flags, l0, l1, l2, l3, p0, p1, p2, p3, h0, h1, h2, h3] =
            header;
        if [m0, m1, m2, m3] != *MAGIC {
            return Err(WireError::BadMagic);
        }
        let stored_header_crc = u32::from_le_bytes([h0, h1, h2, h3]);
        let (checked, _stored) = header.split_at(16);
        if crc32(checked) != stored_header_crc {
            return Err(WireError::HeaderCrc);
        }
        let version = u16::from_le_bytes([v0, v1]);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = Kind::from_u8(kind_byte)?;
        if flags != 0 {
            return Err(WireError::BadFlags(flags));
        }
        let payload_len = u32::from_le_bytes([l0, l1, l2, l3]);
        if payload_len > max_payload {
            return Err(WireError::Oversize {
                len: payload_len,
                max: max_payload,
            });
        }
        let stored_payload_crc = u32::from_le_bytes([p0, p1, p2, p3]);
        let need = payload_len as usize;
        if scratch.len() < need {
            // Zero-fill only on growth; `read_exact` overwrites the prefix
            // actually used on every call.
            scratch.resize(need, 0);
        }
        // ss-analyze: allow(a2-panic-free) -- the resize above guarantees `scratch.len() >= need`
        let payload = &mut scratch[..need];
        r.read_exact(payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        if crc32(payload) != stored_payload_crc {
            return Err(WireError::PayloadCrc);
        }
        let frame = Frame::decode_payload(kind, payload)?;
        Ok((frame, HEADER_LEN + need))
    }

    /// Decodes one frame from the front of `buf` (slice form of
    /// [`Frame::read_from`], used by tests and fuzz-style suites).
    pub fn decode(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), WireError> {
        let mut cursor = buf;
        Frame::read_from(&mut cursor, max_payload)
    }
}
