//! Frame types and their payload codecs.
//!
//! Every frame is a 20-byte CRC-checked header followed by a payload
//! whose layout depends on the frame kind (see the crate docs for the
//! full grammar). Integers are little-endian; counts and values use the
//! same varint/zigzag conventions as the trace codec in
//! `stream-model::trace` and the sketch codec in `stream-sketches`.

use crate::crc::crc32;
use crate::{WireError, HEADER_LEN, MAGIC, VERSION};
use std::io::{self, Read, Write};
use stream_model::update::Update;

/// Which of the server's two update streams a frame refers to.
///
/// The paper's estimand is `COUNT(F ⋈ G)`: the server maintains one
/// skimmed sketch per side of the join and update/query frames address
/// them by this tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StreamId {
    /// The left join input `F`.
    F = 0,
    /// The right join input `G`.
    G = 1,
}

impl StreamId {
    /// Both stream tags, in wire order.
    pub const ALL: [StreamId; 2] = [StreamId::F, StreamId::G];

    /// Decodes a wire tag.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(StreamId::F),
            1 => Ok(StreamId::G),
            _ => Err(WireError::BadPayload("unknown stream id")),
        }
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamId::F => write!(f, "F"),
            StreamId::G => write!(f, "G"),
        }
    }
}

/// Flags-byte bit: the payload is prefixed by a 16-byte trace context
/// ([`TraceContext`]) — `trace_id u64-le` then `span_id u64-le` — before
/// the kind-specific payload body. Both CRCs cover the prefix. Readers
/// that predate the extension reject the bit with
/// [`WireError::BadFlags`]; writers therefore only set it when the peer
/// is known to understand it (for a server: when the request carried it).
pub const FLAG_TRACE: u8 = 0x01;

/// All flag bits this build understands; anything else is `BadFlags`.
const KNOWN_FLAGS: u8 = FLAG_TRACE;

/// The causal trace context a frame may carry (see [`FLAG_TRACE`]).
///
/// `trace_id` names the end-to-end request trace; `span_id` is the
/// sender's span at the moment the frame was written, which the receiver
/// uses as the parent of the spans it records while handling the frame.
/// Plain data at this layer — the semantics live in `ss-trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// End-to-end trace identity (non-zero by convention).
    pub trace_id: u64,
    /// The sender's current span, parent for the receiver's spans.
    pub span_id: u64,
}

impl TraceContext {
    const WIRE_LEN: usize = 16;

    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.span_id.to_le_bytes());
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceContext {
            trace_id: r.u64()?,
            span_id: r.u64()?,
        })
    }
}

/// Section bits for [`Frame::Inspect`]: metrics + histogram snapshot.
pub const INSPECT_METRICS: u8 = 0x01;
/// Section bits for [`Frame::Inspect`]: recent flight-recorder events.
pub const INSPECT_EVENTS: u8 = 0x02;
/// Section bits for [`Frame::Inspect`]: the slow-query log.
pub const INSPECT_SLOW: u8 = 0x04;
/// Section bits for [`Frame::Inspect`]: the online accuracy audit.
pub const INSPECT_AUDIT: u8 = 0x08;
/// All sections, the common client default.
pub const INSPECT_ALL: u8 = INSPECT_METRICS | INSPECT_EVENTS | INSPECT_SLOW | INSPECT_AUDIT;

/// One flight-recorder event as carried by [`Frame::InspectReply`].
///
/// `phase` and `kind` are opaque codes at this layer (`ss-trace` defines
/// the enums); the wire only promises to carry them faithfully so a
/// client can merge server events with its own and export Chrome trace
/// JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSpanEvent {
    /// Nanoseconds since the recorder's epoch (per-process monotonic).
    pub ts_ns: u64,
    /// Trace this event belongs to (0 = untraced background work).
    pub trace_id: u64,
    /// The event's own span id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Phase code (`ss-trace::Phase`).
    pub phase: u8,
    /// Event kind code: 0 = span begin, 1 = span end, 2 = instant.
    pub kind: u8,
    /// Recorder thread index the event was written from.
    pub thread: u32,
    /// Free-form argument (batch length, payload bytes, …).
    pub arg: u64,
}

/// One slow-query log entry carried by [`Frame::InspectReply`]: the
/// per-phase latency anatomy of a request that exceeded the server's
/// configured threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Nanoseconds since server start when the request finished.
    pub ts_ns: u64,
    /// Trace id if the request carried one, else 0.
    pub trace_id: u64,
    /// The request's frame-kind tag (e.g. 5 = QUERY_JOIN).
    pub kind: u8,
    /// End-to-end handler time.
    pub total_ns: u64,
    /// Time acquiring linearizable sketch snapshots.
    pub snapshot_ns: u64,
    /// Time in the estimator (skim + sub-join sum).
    pub estimate_ns: u64,
    /// Time encoding and writing the reply.
    pub encode_ns: u64,
}

/// The online §5.1 accuracy audit summary carried by
/// [`Frame::InspectReply`]: exact counts of a deterministic key sample
/// vs the skimmed sketch's point estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditSummary {
    /// Distinct sampled keys currently tracked.
    pub sampled_keys: u64,
    /// Estimate/exact comparisons performed in this audit pass.
    pub comparisons: u64,
    /// Mean absolute ratio error over the comparisons.
    pub mean_ratio_error: f64,
    /// Median ratio error.
    pub p50: f64,
    /// 95th-percentile ratio error.
    pub p95: f64,
    /// 99th-percentile ratio error.
    pub p99: f64,
    /// Worst ratio error observed in this pass.
    pub max: f64,
    /// The key with the worst ratio error.
    pub worst_value: u64,
}

/// The full introspection snapshot carried by [`Frame::InspectReply`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InspectReport {
    /// Nanoseconds the server has been up.
    pub uptime_ns: u64,
    /// The telemetry registry rendered as JSON lines (empty when the
    /// server was built with telemetry compiled out or the section was
    /// not requested).
    pub metrics_json: String,
    /// Most recent flight-recorder events, oldest first.
    pub events: Vec<WireSpanEvent>,
    /// Slow-query log entries, oldest first.
    pub slow: Vec<SlowQueryEntry>,
    /// Online accuracy audit, when requested and enabled.
    pub audit: Option<AuditSummary>,
}

/// Error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or unexpected frame (e.g. a request before HELLO).
    Protocol,
    /// A stream tag the server does not serve.
    UnknownStream,
    /// UPDATE_BATCH larger than the advertised `max_batch`.
    BatchTooLarge,
    /// The server is draining; reconnect later.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
    /// HELLO offered a protocol version outside the server's accepted
    /// range. Terminal for the session; the message names both sides'
    /// versions so mixed v2/v3 fleets fail loud during rollout.
    UnsupportedVersion,
    /// A cluster query cannot be answered completely: a shard is down
    /// past the router's retry budget. The message names the missing
    /// partition. Returned *instead of* a silently under-counted answer.
    ShardUnavailable,
    /// A client write (UPDATE_BATCH) reached a replication follower.
    /// Followers apply only replicated records; the message names the
    /// primary the client should talk to (via the router's manifest).
    NotPrimary,
    /// A replication write carried a stale fencing epoch: the sender is
    /// an ex-primary that was failed over past. Terminal for the
    /// sender's replication session — it must not retry under that
    /// epoch.
    Fenced,
    /// A code this build does not know (forward compatibility).
    Other(u16),
}

impl ErrorCode {
    /// Wire representation.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::UnknownStream => 2,
            ErrorCode::BatchTooLarge => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::Internal => 5,
            ErrorCode::UnsupportedVersion => 6,
            ErrorCode::ShardUnavailable => 7,
            ErrorCode::NotPrimary => 8,
            ErrorCode::Fenced => 9,
            ErrorCode::Other(c) => c,
        }
    }

    /// Decodes a wire code; unknown codes are preserved, not rejected.
    pub fn from_u16(c: u16) -> Self {
        match c {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownStream,
            3 => ErrorCode::BatchTooLarge,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Internal,
            6 => ErrorCode::UnsupportedVersion,
            7 => ErrorCode::ShardUnavailable,
            8 => ErrorCode::NotPrimary,
            9 => ErrorCode::Fenced,
            other => ErrorCode::Other(other),
        }
    }
}

/// One shard in a [`ShardMapInfo`] manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard server's address, as the router dials it.
    pub addr: String,
    /// Whether the router currently considers the shard healthy (its
    /// last interaction succeeded within the retry budget).
    pub healthy: bool,
    /// The shard's standby follower address (empty = no follower
    /// configured for this partition).
    pub follower: String,
    /// Approximate replication lag of the follower in WAL bytes, from
    /// the router's last heartbeat round (0 when no follower, or when
    /// the follower is fully caught up).
    pub lag_bytes: u64,
}

/// The router's versioned cluster manifest, served via
/// [`Frame::ShardMap`].
///
/// Keys are assigned to shard `i` iff the 2^61−1 pairwise hash family
/// seeded with `seed` buckets them to `i` over range `shards.len()` —
/// carrying `seed` in the manifest lets any client recompute the
/// partition function. `version` starts at 1 and increments whenever
/// the shard set changes; a request frame carries `version == 0` and an
/// empty shard list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMapInfo {
    /// Manifest version (`0` marks a request).
    pub version: u64,
    /// Seed of the partitioning hash.
    pub seed: u64,
    /// The shard set, in partition order (index = partition id).
    pub shards: Vec<ShardEntry>,
}

/// [`Frame::ShardQuery`] stream-selection bit: include stream `F`.
pub const SHARD_STREAM_F: u8 = 0x01;
/// [`Frame::ShardQuery`] stream-selection bit: include stream `G`.
pub const SHARD_STREAM_G: u8 = 0x02;
/// Both streams in one SHARD_QUERY round trip.
pub const SHARD_STREAM_BOTH: u8 = SHARD_STREAM_F | SHARD_STREAM_G;

/// The schema and limits a server advertises in [`Frame::HelloAck`].
///
/// Carrying the full synopsis shape in the handshake means a client can
/// rebuild an identical local `SkimmedSchema` — required both to decode
/// SNAPSHOT replies and to reason about what the server's estimates mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// `log2` of the value domain size.
    pub domain_log2: u16,
    /// `true` when the server skims via dyadic levels, `false` for the
    /// naive-scan strategy.
    pub dyadic: bool,
    /// Hash tables per sketch (`s1`).
    pub tables: u32,
    /// Buckets per table (`b`).
    pub buckets: u32,
    /// Root seed of the hash families.
    pub seed: u64,
    /// Largest number of updates accepted in one UPDATE_BATCH.
    pub max_batch: u32,
    /// The ingest pool's queue capacity in chunks; once `pending` reaches
    /// this, batches bounce with THROTTLE.
    pub queue_limit: u32,
}

/// A protocol frame.
///
/// The request/response pairing is strict: every client request receives
/// exactly one reply frame (possibly [`Frame::Throttle`] or
/// [`Frame::Error`]), so a connection never has more than one request in
/// flight and framing errors cannot silently desynchronise the two sides.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: opens a session. `protocol` is the highest wire
    /// version the client speaks; `client` is a free-form name for logs.
    Hello {
        /// Highest protocol version the client understands.
        protocol: u16,
        /// Client name recorded in server logs/telemetry.
        client: String,
    },
    /// Server → client: accepts the session and advertises the synopsis
    /// schema plus serving limits.
    HelloAck(ServerInfo),
    /// Client → server: a chunk of updates for one stream.
    ///
    /// `client_id`/`seq` make batches **idempotent**: a server that has
    /// already applied `(client_id, stream, seq)` acknowledges a resend
    /// without applying it again, so a client that lost a BATCH_ACK to a
    /// crash or disconnect can safely replay. `client_id = 0` opts out of
    /// sequencing (the server applies unconditionally and keeps no state).
    UpdateBatch {
        /// Which join input the updates belong to.
        stream: StreamId,
        /// Stable producer identity for dedup; `0` = unsequenced.
        client_id: u64,
        /// Per-`(client_id, stream)` batch sequence number, starting at 1
        /// and incremented only after the batch is acknowledged.
        seq: u64,
        /// The updates, in stream order.
        updates: Vec<Update>,
    },
    /// Server → client: the batch was queued for ingestion.
    BatchAck {
        /// Number of updates accepted (echo of the batch length).
        accepted: u64,
    },
    /// Client → server: estimate `COUNT(F ⋈ G)` from linearizable
    /// snapshots of both sketches.
    QueryJoin,
    /// Client → server: estimate the self-join size (second moment) of
    /// one stream.
    QuerySelfJoin {
        /// The stream to estimate.
        stream: StreamId,
    },
    /// Server → client: an estimate, with the ESTSKIMJOINSIZE sub-join
    /// anatomy (zeros where a sub-join does not apply, e.g. self-joins).
    Answer {
        /// The estimate itself.
        estimate: f64,
        /// Exact dense⋈dense term.
        dense_dense: f64,
        /// Estimated dense⋈sparse term.
        dense_sparse: f64,
        /// Estimated sparse⋈dense term.
        sparse_dense: f64,
        /// Estimated sparse⋈sparse term.
        sparse_sparse: f64,
        /// Dense values skimmed from `F`.
        dense_f: u64,
        /// Dense values skimmed from `G`.
        dense_g: u64,
    },
    /// Client → server: ship a linearizable snapshot of one stream's full
    /// skimmed sketch.
    Snapshot {
        /// The stream to snapshot.
        stream: StreamId,
    },
    /// Server → client: the encoded sketch (the `skimmed-sketch` codec's
    /// self-describing format, opaque at this layer).
    SnapshotReply {
        /// The snapshotted stream.
        stream: StreamId,
        /// `encode_skimmed` bytes.
        sketch: Vec<u8>,
    },
    /// Server → client: the ingest queue is full; the batch was **not**
    /// queued. Resend after backing off.
    Throttle {
        /// Chunks pending in the pool when the batch bounced.
        pending: u64,
        /// The pool's queue capacity in chunks.
        limit: u64,
    },
    /// Either direction: a terminal error for the current request or, for
    /// protocol-level failures, the session.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
    /// Client → server: clean session end. The server echoes it back
    /// after its last reply so the client can confirm a drained close.
    Goodbye,
    /// Client → server: after a reconnect, ask how far the server has
    /// durably applied this producer's sequenced batches, so the client
    /// can replay from the first unacknowledged batch instead of either
    /// resending everything or losing the tail.
    Resume {
        /// The producer identity whose progress is being queried.
        client_id: u64,
    },
    /// Server → client: the highest applied sequence number per stream
    /// for the queried `client_id` (`0` = nothing applied / unknown
    /// client — replay from the start).
    ResumeAck {
        /// Highest applied `seq` for stream `F`.
        last_seq_f: u64,
        /// Highest applied `seq` for stream `G`.
        last_seq_g: u64,
    },
    /// Client → server: ask for a live introspection snapshot.
    Inspect {
        /// Bitmask of sections to include (`INSPECT_*`).
        sections: u8,
        /// Cap on flight-recorder events returned (0 = server default).
        last_events: u32,
        /// Cap on slow-query entries returned (0 = server default).
        slow_limit: u32,
    },
    /// Server → client: the introspection snapshot (boxed: the report is
    /// much larger than any other frame body).
    InspectReply(Box<InspectReport>),
    /// Both directions (protocol ≥ 3): the cluster manifest. A client
    /// sends a request (`version == 0`, no shards) to a router; the
    /// router replies with its current versioned [`ShardMapInfo`].
    ShardMap(ShardMapInfo),
    /// Router → shard (protocol ≥ 3): fetch the shard's raw encoded
    /// sketch state for the selected streams in one round trip.
    ShardQuery {
        /// Bitmask of streams to ship ([`SHARD_STREAM_F`] |
        /// [`SHARD_STREAM_G`]).
        streams: u8,
    },
    /// Shard → router (protocol ≥ 3): the linearizable encoded sketches
    /// for the streams requested. A stream whose bit is clear in
    /// `streams` has an empty byte vector here and must be ignored.
    ShardQueryReply {
        /// Echo of the request's stream bitmask.
        streams: u8,
        /// `encode_skimmed` bytes for stream `F` (empty if not asked).
        sketch_f: Vec<u8>,
        /// `encode_skimmed` bytes for stream `G` (empty if not asked).
        sketch_g: Vec<u8>,
    },
    /// Primary → follower (protocol ≥ 3): a chunk of the primary's WAL
    /// byte stream starting at `(segment, offset)`. `bytes` holds
    /// verbatim `Frame::encode` WAL records cut at a frame boundary —
    /// or, when `snapshot` is set, one encoded snapshot blob that
    /// bootstraps a follower whose requested position was pruned
    /// (`segment` then names the snapshot id, `offset` is 0, and the
    /// follower resumes the byte stream at `(segment, 0)`).
    /// `frontier_segment`/`frontier_offset` carry the primary's durable
    /// frontier at send time so the follower can compute its lag. An
    /// empty `bytes` with `snapshot` clear means "caught up". Sent as a
    /// poll reply to [`Frame::ReplicateAck`], and checked against the
    /// receiver's fencing epoch in both directions.
    Replicate {
        /// Sender's fencing epoch.
        epoch: u64,
        /// WAL segment id this chunk starts in (or the snapshot id).
        segment: u64,
        /// Byte offset within `segment` this chunk starts at.
        offset: u64,
        /// `true`: `bytes` is a snapshot blob, not WAL records.
        snapshot: bool,
        /// Primary's durable frontier: active segment id.
        frontier_segment: u64,
        /// Primary's durable frontier: active segment length.
        frontier_offset: u64,
        /// The chunk itself.
        bytes: Vec<u8>,
    },
    /// Follower → primary (protocol ≥ 3): the follower's durable
    /// replication frontier — everything strictly before
    /// `(segment, offset)` in the primary's WAL byte stream is applied
    /// and fsync-visible on the follower. Doubles as the poll request
    /// for the next [`Frame::Replicate`] chunk from that position.
    ReplicateAck {
        /// Follower's fencing epoch (the highest it has adopted).
        epoch: u64,
        /// Next WAL segment id the follower needs.
        segment: u64,
        /// Next byte offset within `segment` the follower needs.
        offset: u64,
    },
    /// Both directions (protocol ≥ 3): liveness probe. The request
    /// carries the sender's epoch and zeros; the reply carries the
    /// responder's epoch, role, and durable WAL frontier, which the
    /// router's failure detector and replica-lag gauges feed on.
    Heartbeat {
        /// Sender's fencing epoch (requests may send 0 = unknown).
        epoch: u64,
        /// `true` when the responder is serving as primary.
        primary: bool,
        /// Responder's durable frontier: active segment id.
        segment: u64,
        /// Responder's durable frontier: active segment length.
        offset: u64,
    },
    /// Router → follower (protocol ≥ 3): assume the primary role under
    /// the given fencing epoch (strictly greater than any epoch the
    /// follower has seen). The follower seals its WAL, verifies its
    /// replication frontier, starts accepting writes, and echoes the
    /// frame back as the acknowledgement.
    Promote {
        /// The new fencing epoch the promoted primary serves under.
        epoch: u64,
    },
}

/// Wire tags for [`Frame`] kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Hello = 1,
    HelloAck = 2,
    UpdateBatch = 3,
    BatchAck = 4,
    QueryJoin = 5,
    QuerySelfJoin = 6,
    Answer = 7,
    Snapshot = 8,
    SnapshotReply = 9,
    Throttle = 10,
    Error = 11,
    Goodbye = 12,
    Resume = 13,
    ResumeAck = 14,
    Inspect = 15,
    InspectReply = 16,
    ShardMap = 17,
    ShardQuery = 18,
    ShardQueryReply = 19,
    Replicate = 20,
    ReplicateAck = 21,
    Heartbeat = 22,
    Promote = 23,
}

impl Kind {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => Kind::Hello,
            2 => Kind::HelloAck,
            3 => Kind::UpdateBatch,
            4 => Kind::BatchAck,
            5 => Kind::QueryJoin,
            6 => Kind::QuerySelfJoin,
            7 => Kind::Answer,
            8 => Kind::Snapshot,
            9 => Kind::SnapshotReply,
            10 => Kind::Throttle,
            11 => Kind::Error,
            12 => Kind::Goodbye,
            13 => Kind::Resume,
            14 => Kind::ResumeAck,
            15 => Kind::Inspect,
            16 => Kind::InspectReply,
            17 => Kind::ShardMap,
            18 => Kind::ShardQuery,
            19 => Kind::ShardQueryReply,
            20 => Kind::Replicate,
            21 => Kind::ReplicateAck,
            22 => Kind::Heartbeat,
            23 => Kind::Promote,
            other => return Err(WireError::BadKind(other)),
        })
    }
}

// ---------------------------------------------------------------------
// payload primitives
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn zigzag(w: i64) -> u64 {
    ((w << 1) ^ (w >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Sequential reader over a payload slice; every accessor fails with
/// [`WireError::Truncated`] instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// `take` as a fixed array; the length mismatch arm is statically
    /// dead (`take(N)` returns exactly `N` bytes) but stays a typed
    /// error rather than a panic.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut x = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            x |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
        }
        Err(WireError::BadPayload("malformed varint"))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload("invalid utf-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// frame codec
// ---------------------------------------------------------------------

/// Serialises the UPDATE_BATCH payload body (shared between
/// [`Frame::encode`] and [`encode_update_batch`], so the two are
/// byte-identical by construction).
fn update_batch_payload(
    out: &mut Vec<u8>,
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
) {
    out.push(stream as u8);
    put_varint(out, client_id);
    put_varint(out, seq);
    put_varint(out, updates.len() as u64);
    for u in updates {
        put_varint(out, u.value);
        put_varint(out, zigzag(u.weight));
    }
}

/// Serialises the INSPECT_REPLY payload body.
fn inspect_report_payload(out: &mut Vec<u8>, report: &InspectReport) {
    put_varint(out, report.uptime_ns);
    put_string(out, &report.metrics_json);
    put_varint(out, report.events.len() as u64);
    for e in &report.events {
        put_varint(out, e.ts_ns);
        out.extend_from_slice(&e.trace_id.to_le_bytes());
        out.extend_from_slice(&e.span_id.to_le_bytes());
        out.extend_from_slice(&e.parent_id.to_le_bytes());
        out.push(e.phase);
        out.push(e.kind);
        put_varint(out, e.thread as u64);
        put_varint(out, e.arg);
    }
    put_varint(out, report.slow.len() as u64);
    for s in &report.slow {
        put_varint(out, s.ts_ns);
        out.extend_from_slice(&s.trace_id.to_le_bytes());
        out.push(s.kind);
        put_varint(out, s.total_ns);
        put_varint(out, s.snapshot_ns);
        put_varint(out, s.estimate_ns);
        put_varint(out, s.encode_ns);
    }
    match &report.audit {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            put_varint(out, a.sampled_keys);
            put_varint(out, a.comparisons);
            for v in [a.mean_ratio_error, a.p50, a.p95, a.p99, a.max] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            put_varint(out, a.worst_value);
        }
    }
}

/// Decodes the INSPECT_REPLY payload body. Declared counts are bounded
/// by the remaining payload before any allocation (every element needs
/// at least one byte), mirroring the UPDATE_BATCH guard.
fn decode_inspect_report(r: &mut Reader<'_>) -> Result<InspectReport, WireError> {
    let uptime_ns = r.varint()?;
    let metrics_json = r.string()?;
    let n_events = r.varint()? as usize;
    if n_events > r.buf.len() {
        return Err(WireError::Truncated);
    }
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(WireSpanEvent {
            ts_ns: r.varint()?,
            trace_id: r.u64()?,
            span_id: r.u64()?,
            parent_id: r.u64()?,
            phase: r.u8()?,
            kind: r.u8()?,
            thread: u32::try_from(r.varint()?)
                .map_err(|_| WireError::BadPayload("event thread index overflows u32"))?,
            arg: r.varint()?,
        });
    }
    let n_slow = r.varint()? as usize;
    if n_slow > r.buf.len() {
        return Err(WireError::Truncated);
    }
    let mut slow = Vec::with_capacity(n_slow);
    for _ in 0..n_slow {
        slow.push(SlowQueryEntry {
            ts_ns: r.varint()?,
            trace_id: r.u64()?,
            kind: r.u8()?,
            total_ns: r.varint()?,
            snapshot_ns: r.varint()?,
            estimate_ns: r.varint()?,
            encode_ns: r.varint()?,
        });
    }
    let audit = match r.u8()? {
        0 => None,
        1 => Some(AuditSummary {
            sampled_keys: r.varint()?,
            comparisons: r.varint()?,
            mean_ratio_error: r.f64()?,
            p50: r.f64()?,
            p95: r.f64()?,
            p99: r.f64()?,
            max: r.f64()?,
            worst_value: r.varint()?,
        }),
        _ => return Err(WireError::BadPayload("bad audit presence tag")),
    };
    Ok(InspectReport {
        uptime_ns,
        metrics_json,
        events,
        slow,
        audit,
    })
}

/// Builds the 20-byte dual-CRC header for a finished payload.
/// Panic-free by construction: every byte lands by destructuring and
/// array literals, with no index expression anywhere.
fn header_bytes(kind: Kind, flags: u8, payload: &[u8]) -> [u8; HEADER_LEN] {
    let [m0, m1, m2, m3] = *MAGIC;
    let [v0, v1] = VERSION.to_le_bytes();
    let [l0, l1, l2, l3] = (payload.len() as u32).to_le_bytes();
    let [p0, p1, p2, p3] = crc32(payload).to_le_bytes();
    // The 16 bytes the header CRC covers.
    let checked = [
        m0, m1, m2, m3, v0, v1, kind as u8, flags, l0, l1, l2, l3, p0, p1, p2, p3,
    ];
    let [h0, h1, h2, h3] = crc32(&checked).to_le_bytes();
    let [m0, m1, m2, m3, v0, v1, k, f, l0, l1, l2, l3, p0, p1, p2, p3] = checked;
    [
        m0, m1, m2, m3, v0, v1, k, f, l0, l1, l2, l3, p0, p1, p2, p3, h0, h1, h2, h3,
    ]
}

/// Wraps a finished payload in the dual-CRC frame header.
fn assemble(kind: Kind, flags: u8, payload: Vec<u8>) -> Vec<u8> {
    let header = header_bytes(kind, flags, &payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(&payload);
    out
}

/// Flags byte plus trace-context prefix for an outgoing payload.
fn traced_payload_prefix(ctx: Option<TraceContext>) -> (u8, Vec<u8>) {
    let mut out = Vec::new();
    match ctx {
        None => (0, out),
        Some(c) => {
            c.put(&mut out);
            (FLAG_TRACE, out)
        }
    }
}

/// Encodes an UPDATE_BATCH frame from borrowed parts — byte-identical
/// to `Frame::UpdateBatch { .. }.encode()` without taking ownership of
/// the updates. The serving layer uses this to write the WAL record and
/// then hand the same vector to ingest without a clone.
pub fn encode_update_batch(
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
) -> Vec<u8> {
    let mut payload = Vec::new();
    update_batch_payload(&mut payload, stream, client_id, seq, updates);
    assemble(Kind::UpdateBatch, 0, payload)
}

/// Writes an UPDATE_BATCH frame from borrowed parts straight to `w` —
/// byte-identical on the wire to `Frame::UpdateBatch { .. }.write_to(w)`
/// without taking ownership of (or cloning) the updates. The client's
/// batch send path uses this so each batch is serialised exactly once.
pub fn write_update_batch<W: Write>(
    w: &mut W,
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
) -> io::Result<usize> {
    write_update_batch_traced(w, stream, client_id, seq, updates, None)
}

/// [`write_update_batch`] with an optional trace context. With
/// `ctx = None` the wire bytes are identical to the untraced writer.
pub fn write_update_batch_traced<W: Write>(
    w: &mut W,
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: &[Update],
    ctx: Option<TraceContext>,
) -> io::Result<usize> {
    let (flags, mut payload) = traced_payload_prefix(ctx);
    update_batch_payload(&mut payload, stream, client_id, seq, updates);
    write_frame_vectored(w, Kind::UpdateBatch, flags, &payload)
}

/// One vectored write of header + payload (short writes completed, EINTR
/// retried), returning the total wire length.
fn write_frame_vectored<W: Write>(
    w: &mut W,
    kind: Kind,
    flags: u8,
    payload: &[u8],
) -> io::Result<usize> {
    let header = header_bytes(kind, flags, payload);
    let total = HEADER_LEN + payload.len();
    let mut written = 0usize;
    while written < total {
        let res = if written < HEADER_LEN {
            w.write_vectored(&[
                // ss-analyze: allow(a2-panic-free) -- `written < HEADER_LEN` in this branch, so the range start is within the 20-byte header
                io::IoSlice::new(&header[written..]),
                io::IoSlice::new(payload),
            ])
        } else {
            // ss-analyze: allow(a2-panic-free) -- loop invariant `written < total = HEADER_LEN + payload.len()` puts `written - HEADER_LEN` within the payload
            w.write(&payload[written - HEADER_LEN..])
        };
        match res {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

impl Frame {
    fn kind(&self) -> Kind {
        match self {
            Frame::Hello { .. } => Kind::Hello,
            Frame::HelloAck(_) => Kind::HelloAck,
            Frame::UpdateBatch { .. } => Kind::UpdateBatch,
            Frame::BatchAck { .. } => Kind::BatchAck,
            Frame::QueryJoin => Kind::QueryJoin,
            Frame::QuerySelfJoin { .. } => Kind::QuerySelfJoin,
            Frame::Answer { .. } => Kind::Answer,
            Frame::Snapshot { .. } => Kind::Snapshot,
            Frame::SnapshotReply { .. } => Kind::SnapshotReply,
            Frame::Throttle { .. } => Kind::Throttle,
            Frame::Error { .. } => Kind::Error,
            Frame::Goodbye => Kind::Goodbye,
            Frame::Resume { .. } => Kind::Resume,
            Frame::ResumeAck { .. } => Kind::ResumeAck,
            Frame::Inspect { .. } => Kind::Inspect,
            Frame::InspectReply(_) => Kind::InspectReply,
            Frame::ShardMap(_) => Kind::ShardMap,
            Frame::ShardQuery { .. } => Kind::ShardQuery,
            Frame::ShardQueryReply { .. } => Kind::ShardQueryReply,
            Frame::Replicate { .. } => Kind::Replicate,
            Frame::ReplicateAck { .. } => Kind::ReplicateAck,
            Frame::Heartbeat { .. } => Kind::Heartbeat,
            Frame::Promote { .. } => Kind::Promote,
        }
    }

    fn encode_payload_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { protocol, client } => {
                out.extend_from_slice(&protocol.to_le_bytes());
                put_string(out, client);
            }
            Frame::HelloAck(info) => {
                out.extend_from_slice(&info.domain_log2.to_le_bytes());
                out.push(info.dyadic as u8);
                out.extend_from_slice(&info.tables.to_le_bytes());
                out.extend_from_slice(&info.buckets.to_le_bytes());
                out.extend_from_slice(&info.seed.to_le_bytes());
                out.extend_from_slice(&info.max_batch.to_le_bytes());
                out.extend_from_slice(&info.queue_limit.to_le_bytes());
            }
            Frame::UpdateBatch {
                stream,
                client_id,
                seq,
                updates,
            } => update_batch_payload(out, *stream, *client_id, *seq, updates),
            Frame::BatchAck { accepted } => put_varint(out, *accepted),
            Frame::QueryJoin | Frame::Goodbye => {}
            Frame::QuerySelfJoin { stream } | Frame::Snapshot { stream } => {
                out.push(*stream as u8);
            }
            Frame::Answer {
                estimate,
                dense_dense,
                dense_sparse,
                sparse_dense,
                sparse_sparse,
                dense_f,
                dense_g,
            } => {
                for v in [
                    estimate,
                    dense_dense,
                    dense_sparse,
                    sparse_dense,
                    sparse_sparse,
                ] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                put_varint(out, *dense_f);
                put_varint(out, *dense_g);
            }
            Frame::SnapshotReply { stream, sketch } => {
                out.push(*stream as u8);
                put_varint(out, sketch.len() as u64);
                out.extend_from_slice(sketch);
            }
            Frame::Throttle { pending, limit } => {
                put_varint(out, *pending);
                put_varint(out, *limit);
            }
            Frame::Error { code, message } => {
                out.extend_from_slice(&code.as_u16().to_le_bytes());
                put_string(out, message);
            }
            Frame::Resume { client_id } => put_varint(out, *client_id),
            Frame::ResumeAck {
                last_seq_f,
                last_seq_g,
            } => {
                put_varint(out, *last_seq_f);
                put_varint(out, *last_seq_g);
            }
            Frame::Inspect {
                sections,
                last_events,
                slow_limit,
            } => {
                out.push(*sections);
                put_varint(out, *last_events as u64);
                put_varint(out, *slow_limit as u64);
            }
            Frame::InspectReply(report) => inspect_report_payload(out, report),
            Frame::ShardMap(map) => {
                put_varint(out, map.version);
                out.extend_from_slice(&map.seed.to_le_bytes());
                put_varint(out, map.shards.len() as u64);
                for shard in &map.shards {
                    put_string(out, &shard.addr);
                    out.push(shard.healthy as u8);
                    put_string(out, &shard.follower);
                    put_varint(out, shard.lag_bytes);
                }
            }
            Frame::ShardQuery { streams } => out.push(*streams),
            Frame::ShardQueryReply {
                streams,
                sketch_f,
                sketch_g,
            } => {
                out.push(*streams);
                put_varint(out, sketch_f.len() as u64);
                out.extend_from_slice(sketch_f);
                put_varint(out, sketch_g.len() as u64);
                out.extend_from_slice(sketch_g);
            }
            Frame::Replicate {
                epoch,
                segment,
                offset,
                snapshot,
                frontier_segment,
                frontier_offset,
                bytes,
            } => {
                put_varint(out, *epoch);
                put_varint(out, *segment);
                put_varint(out, *offset);
                out.push(*snapshot as u8);
                put_varint(out, *frontier_segment);
                put_varint(out, *frontier_offset);
                put_varint(out, bytes.len() as u64);
                out.extend_from_slice(bytes);
            }
            Frame::ReplicateAck {
                epoch,
                segment,
                offset,
            } => {
                put_varint(out, *epoch);
                put_varint(out, *segment);
                put_varint(out, *offset);
            }
            Frame::Heartbeat {
                epoch,
                primary,
                segment,
                offset,
            } => {
                put_varint(out, *epoch);
                out.push(*primary as u8);
                put_varint(out, *segment);
                put_varint(out, *offset);
            }
            Frame::Promote { epoch } => put_varint(out, *epoch),
        }
    }

    fn decode_payload(kind: Kind, payload: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(payload);
        let frame = match kind {
            Kind::Hello => Frame::Hello {
                protocol: r.u16()?,
                client: r.string()?,
            },
            Kind::HelloAck => Frame::HelloAck(ServerInfo {
                domain_log2: r.u16()?,
                dyadic: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadPayload("bad strategy tag")),
                },
                tables: r.u32()?,
                buckets: r.u32()?,
                seed: r.u64()?,
                max_batch: r.u32()?,
                queue_limit: r.u32()?,
            }),
            Kind::UpdateBatch => {
                let stream = StreamId::from_u8(r.u8()?)?;
                let client_id = r.varint()?;
                let seq = r.varint()?;
                let count = r.varint()? as usize;
                // Every update needs ≥ 2 payload bytes; a declared count
                // beyond that is truncation, caught before allocating.
                if count > r.buf.len() {
                    return Err(WireError::Truncated);
                }
                let mut updates = Vec::with_capacity(count);
                for _ in 0..count {
                    let value = r.varint()?;
                    let weight = unzigzag(r.varint()?);
                    updates.push(Update { value, weight });
                }
                Frame::UpdateBatch {
                    stream,
                    client_id,
                    seq,
                    updates,
                }
            }
            Kind::BatchAck => Frame::BatchAck {
                accepted: r.varint()?,
            },
            Kind::QueryJoin => Frame::QueryJoin,
            Kind::QuerySelfJoin => Frame::QuerySelfJoin {
                stream: StreamId::from_u8(r.u8()?)?,
            },
            Kind::Answer => Frame::Answer {
                estimate: r.f64()?,
                dense_dense: r.f64()?,
                dense_sparse: r.f64()?,
                sparse_dense: r.f64()?,
                sparse_sparse: r.f64()?,
                dense_f: r.varint()?,
                dense_g: r.varint()?,
            },
            Kind::Snapshot => Frame::Snapshot {
                stream: StreamId::from_u8(r.u8()?)?,
            },
            Kind::SnapshotReply => {
                let stream = StreamId::from_u8(r.u8()?)?;
                let len = r.varint()? as usize;
                let sketch = r.take(len)?.to_vec();
                Frame::SnapshotReply { stream, sketch }
            }
            Kind::Throttle => Frame::Throttle {
                pending: r.varint()?,
                limit: r.varint()?,
            },
            Kind::Error => Frame::Error {
                code: ErrorCode::from_u16(r.u16()?),
                message: r.string()?,
            },
            Kind::Goodbye => Frame::Goodbye,
            Kind::Resume => Frame::Resume {
                client_id: r.varint()?,
            },
            Kind::ResumeAck => Frame::ResumeAck {
                last_seq_f: r.varint()?,
                last_seq_g: r.varint()?,
            },
            Kind::Inspect => Frame::Inspect {
                sections: r.u8()?,
                last_events: u32::try_from(r.varint()?)
                    .map_err(|_| WireError::BadPayload("inspect event cap overflows u32"))?,
                slow_limit: u32::try_from(r.varint()?)
                    .map_err(|_| WireError::BadPayload("inspect slow cap overflows u32"))?,
            },
            Kind::InspectReply => Frame::InspectReply(Box::new(decode_inspect_report(&mut r)?)),
            Kind::ShardMap => {
                let version = r.varint()?;
                let seed = r.u64()?;
                let count = r.varint()? as usize;
                // Every shard entry needs ≥ 2 payload bytes; a declared
                // count beyond that is truncation, caught before
                // allocating.
                if count > r.buf.len() {
                    return Err(WireError::Truncated);
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    let addr = r.string()?;
                    let healthy = match r.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(WireError::BadPayload("bad shard health tag")),
                    };
                    let follower = r.string()?;
                    let lag_bytes = r.varint()?;
                    shards.push(ShardEntry {
                        addr,
                        healthy,
                        follower,
                        lag_bytes,
                    });
                }
                Frame::ShardMap(ShardMapInfo {
                    version,
                    seed,
                    shards,
                })
            }
            Kind::ShardQuery => {
                let streams = r.u8()?;
                if streams & !SHARD_STREAM_BOTH != 0 || streams == 0 {
                    return Err(WireError::BadPayload("bad shard-query stream mask"));
                }
                Frame::ShardQuery { streams }
            }
            Kind::ShardQueryReply => {
                let streams = r.u8()?;
                if streams & !SHARD_STREAM_BOTH != 0 {
                    return Err(WireError::BadPayload("bad shard-reply stream mask"));
                }
                let len_f = r.varint()? as usize;
                let sketch_f = r.take(len_f)?.to_vec();
                let len_g = r.varint()? as usize;
                let sketch_g = r.take(len_g)?.to_vec();
                Frame::ShardQueryReply {
                    streams,
                    sketch_f,
                    sketch_g,
                }
            }
            Kind::Replicate => {
                let epoch = r.varint()?;
                let segment = r.varint()?;
                let offset = r.varint()?;
                let snapshot = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadPayload("bad replicate snapshot tag")),
                };
                let frontier_segment = r.varint()?;
                let frontier_offset = r.varint()?;
                let len = r.varint()? as usize;
                let bytes = r.take(len)?.to_vec();
                Frame::Replicate {
                    epoch,
                    segment,
                    offset,
                    snapshot,
                    frontier_segment,
                    frontier_offset,
                    bytes,
                }
            }
            Kind::ReplicateAck => Frame::ReplicateAck {
                epoch: r.varint()?,
                segment: r.varint()?,
                offset: r.varint()?,
            },
            Kind::Heartbeat => {
                let epoch = r.varint()?;
                let primary = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadPayload("bad heartbeat role tag")),
                };
                Frame::Heartbeat {
                    epoch,
                    primary,
                    segment: r.varint()?,
                    offset: r.varint()?,
                }
            }
            Kind::Promote => Frame::Promote { epoch: r.varint()? },
        };
        r.finish()?;
        Ok(frame)
    }

    /// Encodes the frame into its complete wire representation
    /// (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_traced(None)
    }

    /// [`Frame::encode`] with an optional trace context. With
    /// `ctx = None` the result is byte-identical to [`Frame::encode`],
    /// so untraced peers are unaffected by this build speaking the
    /// extension.
    pub fn encode_traced(&self, ctx: Option<TraceContext>) -> Vec<u8> {
        let (flags, mut payload) = traced_payload_prefix(ctx);
        self.encode_payload_into(&mut payload);
        assemble(self.kind(), flags, payload)
    }

    /// Writes the frame to `w` with a single vectored write of the
    /// stack-resident header plus the payload, returning the number of
    /// wire bytes.
    ///
    /// Compared to encoding into one contiguous buffer this skips the
    /// header+payload concatenation copy (and its allocation) on every
    /// frame; the kernel still sees both pieces in one syscall. Partial
    /// vectored writes (short `writev`) are completed with `write_all` on
    /// the remainder.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        self.write_to_traced(w, None)
    }

    /// [`Frame::write_to`] with an optional trace context. With
    /// `ctx = None` the wire bytes are identical to [`Frame::write_to`].
    pub fn write_to_traced<W: Write>(
        &self,
        w: &mut W,
        ctx: Option<TraceContext>,
    ) -> io::Result<usize> {
        let (flags, mut payload) = traced_payload_prefix(ctx);
        self.encode_payload_into(&mut payload);
        write_frame_vectored(w, self.kind(), flags, &payload)
    }

    /// Reads one frame from `r`, returning it with its wire length.
    ///
    /// `max_payload` bounds the declared payload length **before** any
    /// allocation, so a hostile or corrupt header cannot make the reader
    /// buffer unbounded memory.
    ///
    /// Timeout semantics (the serving layer's idle loop relies on this):
    /// if the *first* header byte is not available before the reader's
    /// timeout, no bytes have been consumed and [`WireError::Idle`] is
    /// returned — the caller may simply retry. A timeout anywhere later
    /// is a mid-frame stall and surfaces as [`WireError::Io`]; the stream
    /// is no longer at a frame boundary and must be closed.
    pub fn read_from<R: Read>(r: &mut R, max_payload: u32) -> Result<(Frame, usize), WireError> {
        Frame::read_from_with_scratch(r, max_payload, &mut Vec::new())
    }

    /// [`Frame::read_from`] that also surfaces the frame's trace context
    /// when the [`FLAG_TRACE`] extension is present (`None` for plain
    /// frames, so untraced peers decode identically).
    pub fn read_traced_from<R: Read>(
        r: &mut R,
        max_payload: u32,
    ) -> Result<(Frame, usize, Option<TraceContext>), WireError> {
        Frame::read_traced_from_with_scratch(r, max_payload, &mut Vec::new())
    }

    /// [`Frame::read_from`] with a caller-owned payload scratch buffer.
    ///
    /// The payload bytes are read into `scratch` (grown once to the
    /// largest frame seen, then reused), so a handler loop that receives
    /// many frames — the server's UPDATE_BATCH ingest path — stops paying
    /// one payload allocation per frame. The buffer's contents are
    /// meaningless between calls; only its capacity is reused.
    pub fn read_from_with_scratch<R: Read>(
        r: &mut R,
        max_payload: u32,
        scratch: &mut Vec<u8>,
    ) -> Result<(Frame, usize), WireError> {
        let (frame, n, _ctx) = Frame::read_traced_from_with_scratch(r, max_payload, scratch)?;
        Ok((frame, n))
    }

    /// [`Frame::read_from_with_scratch`] that also surfaces the frame's
    /// trace context (see [`Frame::read_traced_from`]).
    pub fn read_traced_from_with_scratch<R: Read>(
        r: &mut R,
        max_payload: u32,
        scratch: &mut Vec<u8>,
    ) -> Result<(Frame, usize, Option<TraceContext>), WireError> {
        let mut header = [0u8; HEADER_LEN];
        {
            // First byte separately: distinguishes idle (retryable) and
            // clean close (no data) from a stall inside a frame.
            let (first, rest) = header.split_at_mut(1);
            loop {
                match r.read(first) {
                    Ok(0) => return Err(WireError::Closed),
                    Ok(_) => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Err(WireError::Idle)
                    }
                    Err(e) => return Err(WireError::Io(e)),
                }
            }
            r.read_exact(rest).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    WireError::Truncated
                } else {
                    WireError::Io(e)
                }
            })?;
        }
        // Destructure the fixed-size header once; every field access
        // below is a binding, not an index.
        let [m0, m1, m2, m3, v0, v1, kind_byte, flags, l0, l1, l2, l3, p0, p1, p2, p3, h0, h1, h2, h3] =
            header;
        if [m0, m1, m2, m3] != *MAGIC {
            return Err(WireError::BadMagic);
        }
        let stored_header_crc = u32::from_le_bytes([h0, h1, h2, h3]);
        let (checked, _stored) = header.split_at(16);
        if crc32(checked) != stored_header_crc {
            return Err(WireError::HeaderCrc);
        }
        let version = u16::from_le_bytes([v0, v1]);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = Kind::from_u8(kind_byte)?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(WireError::BadFlags(flags));
        }
        let payload_len = u32::from_le_bytes([l0, l1, l2, l3]);
        if payload_len > max_payload {
            return Err(WireError::Oversize {
                len: payload_len,
                max: max_payload,
            });
        }
        let stored_payload_crc = u32::from_le_bytes([p0, p1, p2, p3]);
        let need = payload_len as usize;
        if scratch.len() < need {
            // Zero-fill only on growth; `read_exact` overwrites the prefix
            // actually used on every call.
            scratch.resize(need, 0);
        }
        // ss-analyze: allow(a2-panic-free) -- the resize above guarantees `scratch.len() >= need`
        let payload = &mut scratch[..need];
        r.read_exact(payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        if crc32(payload) != stored_payload_crc {
            return Err(WireError::PayloadCrc);
        }
        let (ctx, body) = if flags & FLAG_TRACE != 0 {
            if need < TraceContext::WIRE_LEN {
                return Err(WireError::Truncated);
            }
            let (prefix, rest) = payload.split_at(TraceContext::WIRE_LEN);
            let mut pr = Reader::new(prefix);
            let ctx = TraceContext::read(&mut pr)?;
            (Some(ctx), rest)
        } else {
            (None, &*payload)
        };
        let frame = Frame::decode_payload(kind, body)?;
        Ok((frame, HEADER_LEN + need, ctx))
    }

    /// Decodes one frame from the front of `buf` (slice form of
    /// [`Frame::read_from`], used by tests and fuzz-style suites).
    pub fn decode(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), WireError> {
        let mut cursor = buf;
        Frame::read_from(&mut cursor, max_payload)
    }

    /// Slice form of [`Frame::read_traced_from`].
    pub fn decode_traced(
        buf: &[u8],
        max_payload: u32,
    ) -> Result<(Frame, usize, Option<TraceContext>), WireError> {
        let mut cursor = buf;
        Frame::read_traced_from(&mut cursor, max_payload)
    }
}
