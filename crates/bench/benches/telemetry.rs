//! Telemetry overhead A/B — the instrumented hot path vs itself with the
//! instrumentation compiled out.
//!
//! The telemetry switch is a *compile-time* feature (all gating lives in
//! `stream-telemetry`'s `enabled` feature), so the two arms are two build
//! configurations of the same benchmark:
//!
//! ```text
//! cargo bench -p ss-bench --bench telemetry                         # arm A: enabled
//! cargo bench -p ss-bench --bench telemetry --no-default-features   # arm B: disabled
//! ```
//!
//! The group names embed the active configuration
//! (`telemetry/enabled/...` vs `telemetry/disabled/...`) so Criterion
//! keeps the arms as separate series and their reports can be compared
//! directly. The guarded claim: the enabled arm stays within ~2% of the
//! disabled arm on the batched update path, and the disabled arm is
//! bit-identical to a build that never heard of telemetry (the counters
//! and spans compile to nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, Update};
use stream_sketches::{HashSketch, HashSketchSchema};

const BATCH: usize = 10_000;

fn config() -> &'static str {
    if stream_telemetry::ENABLED {
        "enabled"
    } else {
        "disabled"
    }
}

fn updates(domain: Domain) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(7);
    let z = ZipfGenerator::new(domain, 1.0, 0);
    (0..BATCH)
        .map(|_| Update::insert(z.sample(&mut rng)))
        .collect()
}

/// The instrumented batched update kernel — the hottest counter-touching
/// path in the workspace, and the one the ≤2% overhead budget is set on.
fn bench_update_path(c: &mut Criterion) {
    let domain = Domain::with_log2(18);
    let ups = updates(domain);

    let mut g = c.benchmark_group(format!("telemetry/{}/add_batch", config()));
    for &words in &[2048usize, 8192] {
        let schema = HashSketchSchema::new(8, words / 8, 2);
        let mut sk = HashSketch::new(schema);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, _| {
            b.iter(|| sk.add_batch(black_box(&ups)))
        });
    }
    g.finish();
}

/// Raw primitive costs, so a regression in the overhead budget can be
/// localized: one relaxed counter increment and one full span (two
/// `Instant` reads + a histogram record) per iteration.
fn bench_primitives(c: &mut Criterion) {
    let r = stream_telemetry::global();
    let counter = r.counter("bench_primitive_counter");
    let hist = r.histogram("bench_primitive_span", stream_telemetry::Unit::Nanos);

    let mut g = c.benchmark_group(format!("telemetry/{}/primitives", config()));
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    g.bench_function("span", |b| {
        b.iter(|| {
            let span = hist.start_span();
            black_box(&span);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_update_path, bench_primitives
}
criterion_main!(benches);
