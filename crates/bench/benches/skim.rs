//! SKIMDENSE extraction cost: the naive O(N·s1) domain scan versus the
//! dyadic O(dense·s1·log N) descent (§4.2's claim), across domain sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::skim::skim_dense_scan;
use skimmed_sketch::{DyadicHashSketch, DyadicSchema};
use std::hint::black_box;
use stream_model::gen::ZipfGenerator;
use stream_model::update::StreamSink;
use stream_model::Domain;
use stream_sketches::{HashSketch, HashSketchSchema};

fn bench_skim(c: &mut Criterion) {
    let mut scan_group = c.benchmark_group("skim/naive-scan");
    scan_group.sample_size(10);
    for &log2 in &[12u32, 14, 16, 18] {
        let domain = Domain::with_log2(log2);
        let mut rng = StdRng::seed_from_u64(1);
        let updates = ZipfGenerator::new(domain, 1.2, 0).generate(&mut rng, 100_000);
        let schema = HashSketchSchema::new(7, 512, 2);
        let mut base = HashSketch::new(schema);
        for &u in &updates {
            base.update(u);
        }
        scan_group.bench_with_input(BenchmarkId::from_parameter(log2), &log2, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut sk| black_box(skim_dense_scan(&mut sk, domain, 200)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    scan_group.finish();

    let mut dy_group = c.benchmark_group("skim/dyadic");
    dy_group.sample_size(10);
    for &log2 in &[12u32, 14, 16, 18] {
        let domain = Domain::with_log2(log2);
        let mut rng = StdRng::seed_from_u64(1);
        let updates = ZipfGenerator::new(domain, 1.2, 0).generate(&mut rng, 100_000);
        let schema = DyadicSchema::new(domain, 7, 512, 2);
        let mut base = DyadicHashSketch::new(schema);
        for &u in &updates {
            base.update(u);
        }
        dy_group.bench_with_input(BenchmarkId::from_parameter(log2), &log2, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut sk| black_box(sk.skim_dense(200, 1 << 16)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    dy_group.finish();
}

criterion_group!(benches, bench_skim);
criterion_main!(benches);
