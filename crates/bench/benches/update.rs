//! Per-element update cost — the paper's processing-time claim (§4.1, §6).
//!
//! Basic AGMS touches every one of its `s1·s2` counters per element, so its
//! update time grows linearly with the synopsis; the hash sketch touches
//! one counter per table (`O(s1)`), and the dyadic variant `O(s1·log N)` —
//! both independent of the bucket count. The groups below sweep the synopsis
//! size so the contrast is visible in the report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{DyadicHashSketch, DyadicSchema};
use std::hint::black_box;
use stream_hash::{BchKey, BchSignFamily, KWiseHash, SeedSequence, SignFamily};
use stream_model::gen::ZipfGenerator;
use stream_model::Domain;
use stream_sketches::{
    AgmsSchema, AgmsSketch, CountMinSchema, CountMinSketch, HashSketch, HashSketchSchema,
};

const BATCH: usize = 10_000;

fn values(domain: Domain) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(7);
    let z = ZipfGenerator::new(domain, 1.0, 0);
    (0..BATCH).map(|_| z.sample(&mut rng)).collect()
}

fn bench_updates(c: &mut Criterion) {
    let domain = Domain::with_log2(18);
    let vals = values(domain);

    let mut g = c.benchmark_group("update/basic-agms");
    for &words in &[512usize, 2048, 8192] {
        let schema = AgmsSchema::new(8, words / 8, 1);
        let mut sk = AgmsSketch::new(schema);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, _| {
            b.iter(|| {
                for &v in &vals {
                    sk.add_weighted(black_box(v), 1);
                }
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("update/hash-sketch");
    for &words in &[512usize, 2048, 8192] {
        let schema = HashSketchSchema::new(8, words / 8, 2);
        let mut sk = HashSketch::new(schema);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, _| {
            b.iter(|| {
                for &v in &vals {
                    sk.add_weighted(black_box(v), 1);
                }
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("update/dyadic-hash-sketch");
    for &words in &[512usize, 2048] {
        let schema = DyadicSchema::new(domain, 8, words / 8, 3);
        let mut sk = DyadicHashSketch::new(schema);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, _| {
            b.iter(|| {
                for &v in &vals {
                    sk.add_weighted(black_box(v), 1);
                }
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("update/count-min");
    let schema = CountMinSchema::new(8, 256, 4);
    let mut sk = CountMinSketch::new(schema);
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("2048", |b| {
        b.iter(|| {
            for &v in &vals {
                stream_model::StreamSink::update(
                    &mut sk,
                    stream_model::Update::insert(black_box(v)),
                );
            }
        })
    });
    g.finish();
}

/// Batched ingestion — the same sketches fed through the loop-interchanged
/// `update_batch` kernels. Contrast with the `update/*` groups above: the
/// batch path hoists each table's hash constants out of the per-element
/// loop and keeps its counter row hot, so throughput rises with no change
/// in the resulting counters.
fn bench_batched(c: &mut Criterion) {
    let domain = Domain::with_log2(18);
    let vals = values(domain);
    let updates: Vec<stream_model::Update> = vals
        .iter()
        .map(|&v| stream_model::Update::insert(v))
        .collect();

    let mut g = c.benchmark_group("update/batched/hash-sketch");
    for &words in &[512usize, 2048, 8192] {
        let schema = HashSketchSchema::new(8, words / 8, 2);
        let mut sk = HashSketch::new(schema);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, _| {
            b.iter(|| sk.add_batch(black_box(&updates)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("update/batched/basic-agms");
    for &words in &[512usize, 2048] {
        let schema = AgmsSchema::new(8, words / 8, 1);
        let mut sk = AgmsSketch::new(schema);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, _| {
            b.iter(|| sk.add_batch(black_box(&updates)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("update/batched/count-min");
    let schema = CountMinSchema::new(8, 256, 4);
    let mut sk = CountMinSketch::new(schema);
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("2048", |b| b.iter(|| sk.add_batch(black_box(&updates))));
    g.finish();

    let mut g = c.benchmark_group("update/batched/dyadic");
    let schema = DyadicSchema::new(domain, 8, 256, 3);
    let mut sk = DyadicHashSketch::new(schema);
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("2048", |b| b.iter(|| sk.add_batch(black_box(&updates))));
    g.finish();
}

/// Blocked limb-lane kernels vs the lazy-`u128` kernels, pinned
/// explicitly (bypassing the `add_batch` selector) so both are measured
/// on every host regardless of what [`stream_hash::lanes::VECTOR_KERNEL`]
/// would pick. The blocked kernel only pays off where the compiler can
/// autovectorize the 32×32→64 limb multiplies (AVX2 or wider; see
/// DESIGN.md "Counter memory layout & vectorization").
fn bench_blocked_kernels(c: &mut Criterion) {
    let domain = Domain::with_log2(18);
    let vals = values(domain);
    let updates: Vec<stream_model::Update> = vals
        .iter()
        .map(|&v| stream_model::Update::insert(v))
        .collect();

    let mut g = c.benchmark_group("update/blocked-hash-sketch");
    for &words in &[512usize, 2048, 8192] {
        let schema = HashSketchSchema::new(8, words / 8, 2);
        g.throughput(Throughput::Elements(BATCH as u64));
        let mut sk = HashSketch::new(schema.clone());
        g.bench_with_input(BenchmarkId::new("limb-lanes", words), &words, |b, _| {
            b.iter(|| sk.add_batch_limb_lanes(black_box(&updates)))
        });
        let mut sk = HashSketch::new(schema);
        g.bench_with_input(BenchmarkId::new("lazy128", words), &words, |b, _| {
            b.iter(|| sk.add_batch_lazy128(black_box(&updates)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("update/blocked-count-min");
    for &width in &[256usize, 1024] {
        let schema = CountMinSchema::new(8, width, 4);
        g.throughput(Throughput::Elements(BATCH as u64));
        let mut sk = CountMinSketch::new(schema.clone());
        g.bench_with_input(BenchmarkId::new("limb-lanes", width * 8), &width, |b, _| {
            b.iter(|| sk.add_batch_limb_lanes(black_box(&updates)))
        });
        let mut sk = CountMinSketch::new(schema);
        g.bench_with_input(BenchmarkId::new("lazy128", width * 8), &width, |b, _| {
            b.iter(|| sk.add_batch_lazy128(black_box(&updates)))
        });
    }
    g.finish();
}

/// Frame-encode cost on the wire send path: the old materialise-a-`Frame`
/// `encode()` (header + payload concatenated into one fresh `Vec`) vs the
/// vectored borrowed-parts path (`write_update_batch` into a reused
/// buffer — what the client and server actually run per batch).
fn bench_wire_encode(c: &mut Criterion) {
    use stream_wire::{Frame, StreamId};

    let domain = Domain::with_log2(18);
    let vals = values(domain);
    let updates: Vec<stream_model::Update> = vals
        .iter()
        .map(|&v| stream_model::Update::insert(v))
        .collect();

    let mut g = c.benchmark_group("wire-encode-vectored");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("frame-encode-owned", |b| {
        b.iter(|| {
            let frame = Frame::UpdateBatch {
                stream: StreamId::F,
                client_id: 7,
                seq: 1,
                updates: black_box(&updates).to_vec(),
            };
            frame.encode()
        })
    });
    let mut sink = Vec::with_capacity(1 << 20);
    g.bench_function("write-batch-vectored", |b| {
        b.iter(|| {
            sink.clear();
            stream_wire::write_update_batch(&mut sink, StreamId::F, 7, 1, black_box(&updates))
                .unwrap()
        })
    });
    g.finish();
}

/// Multi-core ingestion through the sharded pool. Each sample ingests the
/// whole stream via `ingest_parallel`, so the timing includes thread spawn
/// and the final merge — the honest end-to-end cost. Scaling beyond one
/// thread requires the host to actually have spare cores; the report notes
/// throughput either way so the trajectory is tracked per host.
fn bench_parallel(c: &mut Criterion) {
    let domain = Domain::with_log2(18);
    let mut rng = StdRng::seed_from_u64(11);
    let z = ZipfGenerator::new(domain, 1.0, 0);
    let updates: Vec<stream_model::Update> = (0..200_000)
        .map(|_| stream_model::Update::insert(z.sample(&mut rng)))
        .collect();
    let schema = HashSketchSchema::new(8, 1024, 5);

    let mut g = c.benchmark_group("update/parallel");
    g.throughput(Throughput::Elements(updates.len() as u64));
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}-threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    stream_ingest::ingest_parallel(black_box(&updates), threads, 4096, || {
                        HashSketch::new(schema.clone())
                    })
                })
            },
        );
    }
    g.finish();
}

/// Sign-family evaluation cost — the inner loop of every sketch update.
/// The BCH family amortizes its field cube across many families per key,
/// which is why the AGMS baseline uses it; the polynomial family is the
/// self-contained default of the hash sketch.
fn bench_sign_families(c: &mut Criterion) {
    const FAMILIES: usize = 512;
    let keys: Vec<u64> = (0..256u64).map(|i| i * 2654435761).collect();

    let poly: Vec<SignFamily> = (0..FAMILIES)
        .map(|i| SignFamily::from_seed(SeedSequence::new(1).fork(i as u64)))
        .collect();
    let mut g = c.benchmark_group("sign-eval");
    g.throughput(Throughput::Elements((FAMILIES * keys.len()) as u64));
    g.bench_function("poly-degree3", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &k in &keys {
                for f in &poly {
                    acc += f.sign(black_box(k));
                }
            }
            acc
        })
    });

    let bch: Vec<BchSignFamily> = (0..FAMILIES)
        .map(|i| BchSignFamily::from_seed(SeedSequence::new(2).fork(i as u64)))
        .collect();
    g.bench_function("bch-shared-cube", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &k in &keys {
                let key = BchKey::new(black_box(k));
                for f in &bch {
                    acc += f.sign_key(key);
                }
            }
            acc
        })
    });

    let kwise: Vec<KWiseHash> = (0..FAMILIES)
        .map(|i| KWiseHash::from_seed(SeedSequence::new(3).fork(i as u64), 4))
        .collect();
    g.bench_function("kwise-generic-4", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &k in &keys {
                for f in &kwise {
                    acc += f.sign(black_box(k));
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_updates, bench_batched, bench_blocked_kernels, bench_wire_encode,
        bench_parallel, bench_sign_families
}
criterion_main!(benches);
