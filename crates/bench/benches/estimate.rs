//! Estimation-time cost: ESTSKIMJOINSIZE (scan and dyadic extraction)
//! versus basic AGMS ESTJOINSIZE at equal synopsis budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_bench::JoinWorkload;
use std::hint::black_box;
use stream_model::Domain;
use stream_sketches::{AgmsSchema, AgmsSketch};

fn bench_estimate(c: &mut Criterion) {
    let domain = Domain::with_log2(14);
    let w = JoinWorkload::zipf(domain, 1.2, 50, 200_000, 3);
    let cfg = EstimatorConfig::default();

    let schema = SkimmedSchema::scanning(domain, 7, 512, 1);
    let sf = SkimmedSketch::from_frequencies(schema.clone(), w.f.nonzero());
    let sg = SkimmedSketch::from_frequencies(schema, w.g.nonzero());
    c.bench_function("estimate/skimmed-scan", |b| {
        b.iter(|| black_box(estimate_join(&sf, &sg, &cfg)))
    });

    let dschema = SkimmedSchema::dyadic(domain, 7, 512, 1);
    let df = SkimmedSketch::from_frequencies(dschema.clone(), w.f.nonzero());
    let dg = SkimmedSketch::from_frequencies(dschema, w.g.nonzero());
    c.bench_function("estimate/skimmed-dyadic", |b| {
        b.iter(|| black_box(estimate_join(&df, &dg, &cfg)))
    });

    let aschema = AgmsSchema::new(7, 512, 1);
    let af = AgmsSketch::from_frequencies(aschema.clone(), w.f.nonzero());
    let ag = AgmsSketch::from_frequencies(aschema, w.g.nonzero());
    c.bench_function("estimate/basic-agms", |b| {
        b.iter(|| black_box(af.estimate_join(&ag)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimate
}
criterion_main!(benches);
