//! Shared rendering for the figure-regeneration binaries.

use crate::grid::{sweep_spaces, JoinWorkload, SpaceComparison};
use crate::scale::Scale;
use skimmed_sketch::EstimatorConfig;
use stream_model::table::{fmt_f64, Table};

/// Runs one figure's space sweep for a set of workloads (one per curve
/// pair) and renders the combined table: one row per (workload, space),
/// columns for both estimators' mean/median/max ratio error.
pub fn run_figure(title: &str, workloads: &[JoinWorkload], scale: Scale, seed: u64) -> Table {
    let config = EstimatorConfig::default();
    let mut table = Table::new([
        "workload",
        "space_words",
        "basic_mean_err",
        "basic_median_err",
        "skim_mean_err",
        "skim_median_err",
        "improvement",
    ]);
    eprintln!("== {title} ==");
    eprintln!("{}", scale.banner());
    for w in workloads {
        eprintln!(
            "-- {} : |F|={} |G|={} J={}",
            w.label,
            w.n_f(),
            w.n_g(),
            w.actual
        );
        let rows = sweep_spaces(
            w,
            &scale.space_points(),
            &scale.s1_values(),
            scale.reps(),
            seed,
            &config,
        );
        for r in &rows {
            push_row(&mut table, &w.label, r);
        }
    }
    table
}

fn push_row(table: &mut Table, label: &str, r: &SpaceComparison) {
    let improvement = if r.skimmed.mean > 0.0 {
        r.basic.mean / r.skimmed.mean
    } else {
        f64::INFINITY
    };
    table.push_row([
        label.to_string(),
        r.space.to_string(),
        fmt_f64(r.basic.mean),
        fmt_f64(r.basic.median),
        fmt_f64(r.skimmed.mean),
        fmt_f64(r.skimmed.median),
        format!("{improvement:.1}x"),
    ]);
}

/// Prints a rendered table to stdout in both aligned and CSV form.
pub fn emit(table: &Table) {
    println!("{}", table.to_aligned());
    println!("--- CSV ---");
    println!("{}", table.to_csv());
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_model::Domain;

    #[test]
    fn figure_runner_produces_one_row_per_cell() {
        let w = vec![JoinWorkload::zipf(Domain::with_log2(10), 1.0, 10, 5_000, 1)];
        // Tiny ad-hoc scale: reuse Quick's s1 list but only via run_figure's
        // scale argument; Quick sweeps 5 spaces.
        let t = run_figure("test", &w, Scale::Quick, 3);
        assert_eq!(t.len(), Scale::Quick.space_points().len());
    }
}
