//! The experiment grid: workloads, per-configuration comparisons, and the
//! space sweep shared by every figure harness.
//!
//! Methodology follows §5.1 of the paper: for a given space budget (in
//! words of counters), both methods get exactly that budget; each space
//! point is averaged over several `(s1, s2)` splits and several independent
//! seeds; accuracy is the symmetric ratio error with its sanity bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{estimate_join, EstimatorConfig, JoinEstimate, SkimmedSchema, SkimmedSketch};
use stream_model::gen::{CensusGenerator, ZipfGenerator};
use stream_model::metrics::{ratio_error, Summary};
use stream_model::{Domain, FrequencyVector};
use stream_sketches::{AgmsSchema, AgmsSketch};

/// A fully materialized two-stream join workload with exact ground truth.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// Human-readable label for tables.
    pub label: String,
    /// Shared value domain.
    pub domain: Domain,
    /// Exact frequency vector of stream `F`.
    pub f: FrequencyVector,
    /// Exact frequency vector of stream `G`.
    pub g: FrequencyVector,
    /// Exact join size `f·g`.
    pub actual: i64,
}

impl JoinWorkload {
    fn new(label: String, domain: Domain, f: FrequencyVector, g: FrequencyVector) -> Self {
        let actual = f.join(&g);
        Self {
            label,
            domain,
            f,
            g,
            actual,
        }
    }

    /// The paper's synthetic workload: Zipf(z) joined with a right-shifted
    /// Zipf(z), `n` elements per stream.
    pub fn zipf(domain: Domain, z: f64, shift: u64, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let f_updates = ZipfGenerator::new(domain, z, 0).generate(&mut rng, n);
        let g_updates = ZipfGenerator::new(domain, z, shift).generate(&mut rng, n);
        Self::new(
            format!("zipf z={z} shift={shift}"),
            domain,
            FrequencyVector::from_updates(domain, f_updates),
            FrequencyVector::from_updates(domain, g_updates),
        )
    }

    /// The census-like workload: weekly wage ⋈ weekly overtime over
    /// `records` synthetic survey records (see DESIGN.md for the CPS
    /// substitution note).
    pub fn census(records: usize, seed: u64) -> Self {
        let gen = CensusGenerator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let recs = gen.generate(&mut rng, records);
        let (fu, gu) = CensusGenerator::attribute_streams(&recs);
        Self::new(
            format!("census-like ({records} records)"),
            gen.domain(),
            FrequencyVector::from_updates(gen.domain(), fu),
            FrequencyVector::from_updates(gen.domain(), gu),
        )
    }

    /// Stream length of `F` (sum of frequencies; insert-only workloads).
    pub fn n_f(&self) -> u64 {
        self.f.l1() as u64
    }

    /// Stream length of `G`.
    pub fn n_g(&self) -> u64 {
        self.g.l1() as u64
    }
}

/// Errors of the two estimators at one space point, summarized over all
/// `(s1, s2)` pairs × repetitions.
#[derive(Debug, Clone)]
pub struct SpaceComparison {
    /// Space budget in words.
    pub space: usize,
    /// Ratio errors of basic AGMS sketching.
    pub basic: Summary,
    /// Ratio errors of the skimmed-sketch estimator.
    pub skimmed: Summary,
}

/// Runs one `(workload, space)` comparison cell.
///
/// For each `s1 ∈ s1_values` and each repetition: basic AGMS gets an
/// `s1 × (space/s1)` synopsis per stream, the skimmed sketch `s1` hash
/// tables of `space/s1` buckets per stream — identical budgets — and both
/// estimate the same join. Returns the ratio-error summaries.
pub fn compare_at_space(
    w: &JoinWorkload,
    space: usize,
    s1_values: &[usize],
    reps: usize,
    seed: u64,
    config: &EstimatorConfig,
) -> SpaceComparison {
    assert!(space > 0 && reps > 0 && !s1_values.is_empty());
    let mut basic_errs = Vec::with_capacity(s1_values.len() * reps);
    let mut skim_errs = Vec::with_capacity(s1_values.len() * reps);
    let actual = w.actual as f64;
    for (pi, &s1) in s1_values.iter().enumerate() {
        let s2 = (space / s1).max(1);
        for rep in 0..reps {
            let run_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((pi * 1000 + rep) as u64);
            // Basic AGMS baseline.
            let schema = AgmsSchema::new(s1, s2, run_seed);
            let bf = AgmsSketch::from_frequencies(schema.clone(), w.f.nonzero());
            let bg = AgmsSketch::from_frequencies(schema, w.g.nonzero());
            basic_errs.push(ratio_error(bf.estimate_join(&bg), actual));
            // Skimmed sketch at the same budget.
            let est = skimmed_estimate(w, s1, s2, run_seed ^ 0xABCD, config);
            skim_errs.push(ratio_error(est.estimate, actual));
        }
    }
    SpaceComparison {
        space,
        basic: Summary::of(&basic_errs),
        skimmed: Summary::of(&skim_errs),
    }
}

/// Builds the skimmed-sketch pair for `w` at `tables × buckets` and runs
/// ESTSKIMJOINSIZE once.
pub fn skimmed_estimate(
    w: &JoinWorkload,
    tables: usize,
    buckets: usize,
    seed: u64,
    config: &EstimatorConfig,
) -> JoinEstimate {
    let schema = SkimmedSchema::scanning(w.domain, tables, buckets, seed);
    let sf = SkimmedSketch::from_frequencies(schema.clone(), w.f.nonzero());
    let sg = SkimmedSketch::from_frequencies(schema, w.g.nonzero());
    estimate_join(&sf, &sg, config)
}

/// Sweeps all `space_points` for one workload.
pub fn sweep_spaces(
    w: &JoinWorkload,
    space_points: &[usize],
    s1_values: &[usize],
    reps: usize,
    seed: u64,
    config: &EstimatorConfig,
) -> Vec<SpaceComparison> {
    space_points
        .iter()
        .map(|&space| compare_at_space(w, space, s1_values, reps, seed ^ space as u64, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_workload_has_positive_join() {
        let w = JoinWorkload::zipf(Domain::with_log2(10), 1.0, 50, 20_000, 1);
        assert!(w.actual > 0);
        assert_eq!(w.n_f(), 20_000);
        assert_eq!(w.n_g(), 20_000);
    }

    #[test]
    fn shift_zero_is_self_join_shaped() {
        let a = JoinWorkload::zipf(Domain::with_log2(10), 1.2, 0, 20_000, 2);
        let b = JoinWorkload::zipf(Domain::with_log2(10), 1.2, 200, 20_000, 2);
        assert!(
            a.actual > b.actual,
            "join must shrink with shift: {} vs {}",
            a.actual,
            b.actual
        );
    }

    #[test]
    fn census_workload_builds() {
        let w = JoinWorkload::census(20_000, 3);
        assert!(w.actual > 0);
        assert_eq!(w.domain.size(), 1 << 16);
    }

    #[test]
    fn comparison_produces_sane_errors_and_skim_wins_on_skew() {
        let w = JoinWorkload::zipf(Domain::with_log2(12), 1.5, 30, 60_000, 4);
        let cmp = compare_at_space(&w, 2048, &[11, 35], 2, 7, &EstimatorConfig::default());
        assert_eq!(cmp.space, 2048);
        assert!(cmp.basic.n == 4 && cmp.skimmed.n == 4);
        // The paper's headline: on high skew the skimmed estimator is far
        // more accurate than basic AGMS at equal space.
        assert!(
            cmp.skimmed.mean < cmp.basic.mean,
            "skimmed {} should beat basic {}",
            cmp.skimmed.mean,
            cmp.basic.mean
        );
        assert!(cmp.skimmed.mean < 0.2, "skimmed err {}", cmp.skimmed.mean);
    }

    #[test]
    fn sweep_covers_all_points() {
        let w = JoinWorkload::zipf(Domain::with_log2(10), 1.0, 20, 10_000, 5);
        let rows = sweep_spaces(&w, &[256, 512], &[11], 1, 9, &EstimatorConfig::default());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].space, 256);
        assert_eq!(rows[1].space, 512);
    }
}
