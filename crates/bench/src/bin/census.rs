//! Regenerates the paper's **Census experiment** (§5.1, detailed in the
//! full version): join of the *weekly wage* and *weekly wage overtime*
//! attributes over ~159K survey records, domain 2^16, basic AGMS vs.
//! skimmed at equal space. Our records are the census-like synthetic
//! substitute described in DESIGN.md (the CPS extract is not
//! redistributable); the qualitative claim under reproduction is that the
//! skimmed estimator attains roughly half (or better) the ratio error of
//! basic sketching on this moderately-skewed real-life-shaped join.
//!
//! Run: `cargo run -p ss-bench --release --bin census [--paper]`

#![forbid(unsafe_code)]

use ss_bench::{figures, JoinWorkload, Scale};

fn main() {
    let scale = Scale::from_args();
    let w = vec![JoinWorkload::census(scale.census_records(), 0xCE5505)];
    let table = figures::run_figure(
        "Census experiment: weekly wage ⋈ weekly overtime (synthetic CPS substitute)",
        &w,
        scale,
        0xF1CE,
    );
    figures::emit(&table);
}
