//! Ingestion-throughput report: scalar vs batched vs multi-core.
//!
//! Measures the element-at-a-time update path against the
//! loop-interchanged `update_batch` kernels on the hash sketch, and the
//! sharded [`stream_ingest::ingest_parallel`] pool at 1/2/4/8 workers,
//! then writes the numbers to `BENCH_update.json` in the current
//! directory so successive PRs can track the ingestion trajectory.
//!
//! Every configuration is cross-checked for bit-identical counters before
//! its timing is recorded — a fast kernel that changes the sketch would
//! be a correctness bug, not an optimisation.
//!
//! Run: `cargo run -p ss-bench --release --bin ingest_report`

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use stream_model::gen::ZipfGenerator;
use stream_model::update::StreamSink;
use stream_model::{Domain, Update};
use stream_sketches::{HashSketch, HashSketchSchema};

const N: usize = 400_000;
const REPS: usize = 5;

/// Best-of-`REPS` throughput in Melem/s for `f` ingesting `n` elements.
fn best_melem_s(n: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    n as f64 / best / 1e6
}

fn workload() -> Vec<Update> {
    let domain = Domain::with_log2(18);
    let mut rng = StdRng::seed_from_u64(7);
    let z = ZipfGenerator::new(domain, 1.0, 0);
    (0..N).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

fn main() {
    let updates = workload();
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    // --- scalar vs batched, sweeping synopsis size -----------------------
    let mut batched_rows = Vec::new();
    println!("scalar vs batched (hash sketch, {N} Zipf(1.0) elements, best of {REPS}):");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "words", "scalar Melem/s", "batch Melem/s", "speedup"
    );
    for &words in &[512usize, 2048, 8192] {
        let schema = HashSketchSchema::new(8, words / 8, 2);

        let mut scalar_sk = HashSketch::new(schema.clone());
        let mut batch_sk = HashSketch::new(schema.clone());
        scalar_sk.extend_updates(updates.iter().copied());
        batch_sk.add_batch(&updates);
        assert_eq!(
            scalar_sk.counters(),
            batch_sk.counters(),
            "batch kernel must be bit-identical at {words} words"
        );

        let mut sk = HashSketch::new(schema.clone());
        let scalar = best_melem_s(N, || {
            for &u in &updates {
                sk.update(u);
            }
        });
        let mut sk = HashSketch::new(schema.clone());
        let batched = best_melem_s(N, || sk.add_batch(&updates));
        let speedup = batched / scalar;
        println!("{words:>8} {scalar:>14.2} {batched:>14.2} {speedup:>8.2}x");
        batched_rows.push(format!(
            "    {{\"words\": {words}, \"scalar_melem_s\": {scalar:.3}, \
             \"batched_melem_s\": {batched:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- parallel pool scaling ------------------------------------------
    let schema = HashSketchSchema::new(8, 1024, 5);
    let mut reference = HashSketch::new(schema.clone());
    reference.add_batch(&updates);

    // On a 1-CPU host the thread pool time-slices one core, so the
    // "speedup" column would only report scheduler noise; mark the group
    // degenerate and omit the misleading ratio instead.
    let degenerate = host_cpus == 1;
    let mut parallel_rows = Vec::new();
    let mut base = 0.0f64;
    println!();
    println!(
        "sharded parallel ingest (hash sketch, 8192 words, chunk 4096), host cpus = {host_cpus}:"
    );
    if degenerate {
        println!("{:>8} {:>14}", "threads", "Melem/s");
    } else {
        println!("{:>8} {:>14} {:>14}", "threads", "Melem/s", "vs 1-thread");
    }
    for &threads in &[1usize, 2, 4, 8] {
        let got = stream_ingest::ingest_parallel(&updates, threads, 4096, || {
            HashSketch::new(schema.clone())
        });
        assert_eq!(
            got.counters(),
            reference.counters(),
            "parallel ingest must be bit-identical at {threads} threads"
        );
        let melem = best_melem_s(N, || {
            std::hint::black_box(stream_ingest::ingest_parallel(
                &updates,
                threads,
                4096,
                || HashSketch::new(schema.clone()),
            ));
        });
        if threads == 1 {
            base = melem;
        }
        if degenerate {
            println!("{threads:>8} {melem:>14.2}");
            parallel_rows.push(format!(
                "    {{\"threads\": {threads}, \"melem_s\": {melem:.3}}}"
            ));
        } else {
            let speedup = melem / base;
            println!("{threads:>8} {melem:>14.2} {speedup:>13.2}x");
            parallel_rows.push(format!(
                "    {{\"threads\": {threads}, \"melem_s\": {melem:.3}, \"speedup_vs_1\": {speedup:.3}}}"
            ));
        }
    }
    if host_cpus < 4 {
        println!("  (host exposes {host_cpus} cpu(s): thread scaling cannot exceed 1x here;");
        println!("   rerun on a multi-core host to see the pool's speedup)");
    }

    // --- emit ------------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"update\",\n  \"elements\": {N},\n  \"reps\": {REPS},\n  \
         \"host_cpus\": {host_cpus},\n  \"batched_hash_sketch\": [\n{}\n  ],\n  \
         \"parallel_hash_sketch_8192_words\": {{\"degenerate\": {degenerate}, \"rows\": [\n{}\n  ]}},\n  \
         \"bit_identical\": true\n}}\n",
        batched_rows.join(",\n"),
        parallel_rows.join(",\n"),
    );
    std::fs::write("BENCH_update.json", &json).expect("write BENCH_update.json");
    println!();
    println!("wrote BENCH_update.json");
}
