//! Static-analysis gate cost record (`BENCH_analysis.json`).
//!
//! The gate runs on every CI build, so its wall time is part of the
//! edit-compile-land loop the workspace pays for. This bin times the
//! full pipeline — walk, lex, item extraction, call-graph build, every
//! pass, suppression filtering — end to end over the real tree, and
//! records the finding counts per lint alongside, so a pass that
//! regresses (in speed *or* in silence) shows up in the same artifact
//! diff as a throughput regression would.
//!
//! The timed run is repeated and the median taken: the first iteration
//! additionally pays the page cache for ~130 source files, which is
//! exactly the cost a cold CI runner pays, so both cold and median
//! figures are recorded.
//!
//! ```text
//! cargo run -p ss-bench --release --bin analysis_report
//! ```

#![forbid(unsafe_code)]

use ss_analyze::findings::LINTS;
use ss_analyze::{analyze, walk, Analysis};
use std::time::Instant;

const RUNS: usize = 5;

fn main() {
    let root = walk::find_root(&std::env::current_dir().expect("cwd"))
        .expect("workspace root (run from inside the repo)");

    let mut times_ms: Vec<f64> = Vec::with_capacity(RUNS);
    let mut last: Option<Analysis> = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let analysis = analyze(&root).expect("analysis run");
        times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(analysis);
    }
    let analysis = last.expect("at least one run");
    let cold_ms = times_ms[0];
    let mut sorted = times_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ms = sorted[sorted.len() / 2];

    let per_lint: Vec<String> = LINTS
        .iter()
        .map(|l| {
            let n = analysis.findings.iter().filter(|f| f.lint == l.id).count();
            format!("    \"{}\": {n}", l.id)
        })
        .collect();

    let json = format!(
        "{{\n  \"sources\": {},\n  \"manifests\": {},\n  \"total_findings\": {},\n  \
         \"gate_wall_ms_cold\": {:.2},\n  \"gate_wall_ms_median\": {:.2},\n  \
         \"runs\": {RUNS},\n  \"per_lint\": {{\n{}\n  }}\n}}\n",
        analysis.sources,
        analysis.manifests,
        analysis.findings.len(),
        cold_ms,
        median_ms,
        per_lint.join(",\n")
    );
    std::fs::write("BENCH_analysis.json", &json).expect("write BENCH_analysis.json");
    println!("wrote BENCH_analysis.json");
    println!(
        "gate: {} sources, {} manifests, {} finding(s); cold {:.1} ms, median {:.1} ms over {RUNS} runs",
        analysis.sources,
        analysis.manifests,
        analysis.findings.len(),
        cold_ms,
        median_ms
    );
}
