//! Space-scaling validation: the paper's central asymptotic claim is that
//! the skimmed estimator needs `O(n²/(εJ))` words — error shrinking like
//! `1/space` — while basic AGMS needs the square, i.e. error shrinking
//! like `1/√space`. This harness sweeps space on a fixed workload, fits
//! the log-log slope of mean ratio error vs. words for both methods, and
//! prints the fitted exponents (expect roughly −1 vs −0.5 until either
//! estimator bottoms out at its noise floor).
//!
//! Run: `cargo run -p ss-bench --release --bin scaling [--paper]`

#![forbid(unsafe_code)]

use skimmed_sketch::EstimatorConfig;
use ss_bench::{compare_at_space, JoinWorkload, Scale};
use stream_model::table::{fmt_f64, Table};
use stream_model::Domain;

/// Least-squares slope of ln(err) on ln(space).
fn loglog_slope(points: &[(usize, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, e)| e > 1e-9)
        .map(|&(s, e)| ((s as f64).ln(), e.ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let scale = Scale::from_args();
    let (log2, n, reps) = match scale {
        Scale::Quick => (14u32, 300_000usize, 3usize),
        Scale::Paper => (18, 4_000_000, 5),
    };
    let domain = Domain::with_log2(log2);
    let w = JoinWorkload::zipf(domain, 1.0, 60, n, 0x5CA1E);
    let spaces: Vec<usize> = vec![256, 512, 1024, 2048, 4096, 8192, 16384];
    let cfg = EstimatorConfig::default();

    let mut table = Table::new(["space_words", "basic_mean_err", "skim_mean_err"]);
    let mut basic_pts = Vec::new();
    let mut skim_pts = Vec::new();
    for &space in &spaces {
        let cmp = compare_at_space(&w, space, &[11], reps, 0xF17 ^ space as u64, &cfg);
        basic_pts.push((space, cmp.basic.mean));
        skim_pts.push((space, cmp.skimmed.mean));
        table.push_row([
            space.to_string(),
            fmt_f64(cmp.basic.mean),
            fmt_f64(cmp.skimmed.mean),
        ]);
    }

    println!("Space-scaling: {} , n={n}, domain 2^{log2}\n", w.label);
    println!("{}", table.to_aligned());
    println!(
        "fitted error-vs-space exponents: basic {:.2}  skimmed {:.2}",
        loglog_slope(&basic_pts),
        loglog_slope(&skim_pts)
    );
    println!("(theory: basic −0.5, skimmed −1.0, flattening once an estimator hits its floor)");
    println!("--- CSV ---\n{}", table.to_csv());
}
