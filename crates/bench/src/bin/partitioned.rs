//! Comparison with domain-partitioned sketching (Dobra et al. \[5\]) — the
//! alternative the paper's §1 critiques for needing a-priori frequency
//! knowledge.
//!
//! Three contenders at equal space on skewed joins:
//!
//! * basic AGMS (no partitioning),
//! * partitioned AGMS with an **oracle** partition built from the exact
//!   frequencies (the best case \[5\] could achieve with perfect
//!   histograms), plus an uninformed equi-width partition (what you get
//!   with *no* prior knowledge),
//! * the skimmed sketch, which needs no prior knowledge at all.
//!
//! The reproduction target: skimmed ≈ oracle-partitioned (both neutralize
//! the dense values) while equi-width partitioning buys little — i.e. the
//! paper's claim that skimming achieves the benefit of partitioning
//! *without* the histogram.
//!
//! Run: `cargo run -p ss-bench --release --bin partitioned [--paper]`

#![forbid(unsafe_code)]

use skimmed_sketch::EstimatorConfig;
use ss_bench::{skimmed_estimate, JoinWorkload, Scale};
use std::sync::Arc;
use stream_model::metrics::{ratio_error, Summary};
use stream_model::table::{fmt_f64, Table};
use stream_model::Domain;
use stream_query::partitioned::{DomainPartition, PartitionedAgmsSketch, PartitionedSchema};
use stream_sketches::{AgmsSchema, AgmsSketch};

fn main() {
    let scale = Scale::from_args();
    let (log2, n, reps) = match scale {
        Scale::Quick => (12u32, 200_000usize, 3usize),
        Scale::Paper => (14, 1_000_000, 5),
    };
    let domain = Domain::with_log2(log2);
    let (rows, cols_total) = (7usize, 512usize);
    let cfg = EstimatorConfig::default();

    let mut t = Table::new(["zipf_z", "method", "mean_err", "median_err"]);

    for &z in &[1.0f64, 1.3, 1.6] {
        let w = JoinWorkload::zipf(domain, z, 24, n, 0xDB + (z * 10.0) as u64);
        let actual = w.actual as f64;

        let mut errs: [Vec<f64>; 4] = Default::default();
        for rep in 0..reps as u64 {
            let seed = 0xAA00 + rep;
            // Basic AGMS.
            let schema = AgmsSchema::new(rows, cols_total, seed);
            let bf = AgmsSketch::from_frequencies(schema.clone(), w.f.nonzero());
            let bg = AgmsSketch::from_frequencies(schema, w.g.nonzero());
            errs[0].push(ratio_error(bf.estimate_join(&bg), actual));

            // Partitioned, oracle and equi-width.
            for (slot, part) in [
                (1, DomainPartition::oracle(&w.f, &w.g, 16)),
                (2, DomainPartition::equi_width(domain, 16)),
            ] {
                let pschema = PartitionedSchema::new(Arc::new(part), rows, cols_total, seed);
                let mut pf = PartitionedAgmsSketch::new(&pschema);
                let mut pg = PartitionedAgmsSketch::new(&pschema);
                for (v, c) in w.f.nonzero() {
                    pf.add_weighted(v, c);
                }
                for (v, c) in w.g.nonzero() {
                    pg.add_weighted(v, c);
                }
                errs[slot].push(ratio_error(pf.estimate_join(&pg), actual));
            }

            // Skimmed at the same budget (rows × cols_total words).
            let est = skimmed_estimate(&w, rows, cols_total, seed, &cfg);
            errs[3].push(ratio_error(est.estimate, actual));
        }

        for (name, e) in [
            ("basic AGMS", &errs[0]),
            ("partitioned (oracle)", &errs[1]),
            ("partitioned (equi-width)", &errs[2]),
            ("skimmed (no prior)", &errs[3]),
        ] {
            let s = Summary::of(e);
            t.push_row([
                format!("{z}"),
                name.to_string(),
                fmt_f64(s.mean),
                fmt_f64(s.median),
            ]);
        }
    }

    println!(
        "Partitioned-sketching comparison ({rows} rows, {cols_total} cols total, domain 2^{log2}, n={n})\n"
    );
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());
}
