//! Ablation: **threshold policy** (DESIGN.md design choice).
//!
//! Compares the skimmed estimator under the distribution-free worst-case
//! threshold `T = c·n/√b` against the adaptive `T = c·√(F̂₂/b)` across
//! skews and constants, and contrasts with a Count-Min point estimator to
//! justify the CountSketch-style bucket signs.
//!
//! Run: `cargo run -p ss-bench --release --bin ablation_threshold [--paper]`

#![forbid(unsafe_code)]

use skimmed_sketch::{EstimatorConfig, ThresholdPolicy};
use ss_bench::{skimmed_estimate, JoinWorkload, Scale};
use stream_model::metrics::{ratio_error, Summary};
use stream_model::table::{fmt_f64, Table};
use stream_model::update::StreamSink;
use stream_model::Domain;
use stream_sketches::{CountMinSchema, CountMinSketch};

fn cm_error(w: &JoinWorkload, depth: usize, width: usize, seed: u64) -> f64 {
    let schema = CountMinSchema::new(depth, width, seed);
    let mut cf = CountMinSketch::new(schema.clone());
    let mut cg = CountMinSketch::new(schema);
    for u in w.f.to_unit_updates() {
        cf.update(u);
    }
    for u in w.g.to_unit_updates() {
        cg.update(u);
    }
    ratio_error(cf.join_estimate(&cg), w.actual as f64)
}

fn main() {
    let scale = Scale::from_args();
    let (log2, n, reps) = match scale {
        Scale::Quick => (14u32, 200_000usize, 3usize),
        Scale::Paper => (16, 1_000_000, 5),
    };
    let domain = Domain::with_log2(log2);
    let (tables, buckets) = (7usize, 512usize);

    let policies: Vec<(&str, ThresholdPolicy)> = vec![
        ("worst-case c=1", ThresholdPolicy::WorstCase { factor: 1.0 }),
        ("worst-case c=2", ThresholdPolicy::WorstCase { factor: 2.0 }),
        ("adaptive c=2", ThresholdPolicy::Adaptive { factor: 2.0 }),
        ("adaptive c=3", ThresholdPolicy::Adaptive { factor: 3.0 }),
        ("adaptive c=5", ThresholdPolicy::Adaptive { factor: 5.0 }),
    ];

    let mut t = Table::new(["zipf_z", "policy", "mean_err", "max_err", "mean_dense_f"]);

    for &z in &[0.8f64, 1.0, 1.2, 1.5] {
        let w = JoinWorkload::zipf(domain, z, 40, n, 0xAB1 + (z * 10.0) as u64);
        for (name, policy) in &policies {
            let cfg = EstimatorConfig {
                policy: *policy,
                ..EstimatorConfig::default()
            };
            let mut errs = Vec::with_capacity(reps);
            let mut dense = Vec::with_capacity(reps);
            for rep in 0..reps {
                let est = skimmed_estimate(&w, tables, buckets, 0x7777 + rep as u64, &cfg);
                errs.push(ratio_error(est.estimate, w.actual as f64));
                dense.push(est.dense_f as f64);
            }
            let s = Summary::of(&errs);
            t.push_row([
                format!("{z}"),
                name.to_string(),
                fmt_f64(s.mean),
                fmt_f64(s.max),
                fmt_f64(Summary::of(&dense).mean),
            ]);
        }
        // Count-Min comparator at equal space (inner-product upper bound).
        let cm = cm_error(&w, tables, buckets, 0xC0DE);
        t.push_row([
            format!("{z}"),
            "count-min (comparator)".to_string(),
            fmt_f64(cm),
            fmt_f64(cm),
            "-".to_string(),
        ]);
    }

    println!("Threshold-policy ablation: {tables}x{buckets} hash sketch, domain 2^{log2}, n={n}\n");
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());
}
