//! Replays **Example 1 (§3)** of the paper: the worked error-budget
//! arithmetic showing that skimming the dense frequencies shrinks the
//! worst-case additive error bound severalfold at equal space — and then
//! checks it empirically by actually running both estimators on the
//! example's streams.
//!
//! Run: `cargo run -p ss-bench --release --bin example1`

#![forbid(unsafe_code)]

use skimmed_sketch::analysis::{agms_additive_error, SkimDecomposition};
use skimmed_sketch::{
    estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch, ThresholdPolicy,
};
use stream_model::metrics::ratio_error;
use stream_model::table::{fmt_f64, Table};
use stream_model::{Domain, FrequencyVector};
use stream_sketches::{AgmsSchema, AgmsSketch};

/// The Example-1-shaped workload: two dense heads of 50 per stream on
/// disjoint values, overlapping unit tails (scaled ×20 so the empirical
/// comparison has some mass to work with).
fn example_streams(scale: i64) -> (FrequencyVector, FrequencyVector) {
    let d = Domain::with_log2(10);
    let mut fc = vec![0i64; 1024];
    let mut gc = vec![0i64; 1024];
    fc[0] = 50 * scale;
    fc[1] = 50 * scale;
    gc[1022] = 50 * scale;
    gc[1023] = 50 * scale;
    // ~50 unit frequencies per stream, 40 of them shared — the paper's
    // f = (50, 50, 1, …, 1) / right-shifted g shape.
    fc[2..52].fill(scale);
    gc[12..62].fill(scale);
    (
        FrequencyVector::from_counts(d, fc),
        FrequencyVector::from_counts(d, gc),
    )
}

fn main() {
    let (f, g) = example_streams(20);
    let join = f.join(&g);
    let threshold = 10 * 20;
    let dec = SkimDecomposition::compute(&f, &g, threshold);
    let s2 = 256;

    let basic_bound = agms_additive_error(f.self_join() as f64, g.self_join() as f64, s2);
    let skim_bound = dec.skimmed_additive_error(s2);

    let mut t = Table::new(["quantity", "value"]);
    t.push_row(["join size J = f·g".to_string(), join.to_string()]);
    t.push_row(["threshold T".to_string(), threshold.to_string()]);
    t.push_row([
        "dense⋈dense (exact)".to_string(),
        dec.dense_dense.to_string(),
    ]);
    t.push_row(["dense⋈sparse".to_string(), dec.dense_sparse.to_string()]);
    t.push_row(["sparse⋈dense".to_string(), dec.sparse_dense.to_string()]);
    t.push_row(["sparse⋈sparse".to_string(), dec.sparse_sparse.to_string()]);
    t.push_row([
        "SJ(F) full / sparse".to_string(),
        format!("{} / {}", f.self_join(), dec.sj_f_sparse),
    ]);
    t.push_row([
        "SJ(G) full / sparse".to_string(),
        format!("{} / {}", g.self_join(), dec.sj_g_sparse),
    ]);
    t.push_row([
        "basic additive-error bound".to_string(),
        fmt_f64(basic_bound),
    ]);
    t.push_row([
        "skimmed additive-error bound".to_string(),
        fmt_f64(skim_bound),
    ]);
    t.push_row([
        "bound improvement".to_string(),
        format!("{:.1}x", basic_bound / skim_bound),
    ]);

    // Empirical check at the same s2 words per row.
    let seed = 0xE81;
    let schema = AgmsSchema::new(7, s2, seed);
    let bf = AgmsSketch::from_frequencies(schema.clone(), f.nonzero());
    let bg = AgmsSketch::from_frequencies(schema, g.nonzero());
    let basic_err = ratio_error(bf.estimate_join(&bg), join as f64);

    let sschema = SkimmedSchema::scanning(f.domain(), 7, s2, seed);
    let sf = SkimmedSketch::from_frequencies(sschema.clone(), f.nonzero());
    let sg = SkimmedSketch::from_frequencies(sschema, g.nonzero());
    let cfg = EstimatorConfig {
        policy: ThresholdPolicy::Fixed(threshold),
        ..EstimatorConfig::default()
    };
    let est = estimate_join(&sf, &sg, &cfg);
    let skim_err = ratio_error(est.estimate, join as f64);

    t.push_row([
        "empirical basic ratio error".to_string(),
        fmt_f64(basic_err),
    ]);
    t.push_row([
        "empirical skimmed ratio error".to_string(),
        fmt_f64(skim_err),
    ]);

    println!("Example 1 (§3): error-budget arithmetic, scaled ×20, s2 = {s2}\n");
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());

    assert_eq!(dec.total(), join, "sub-joins must sum to the join exactly");
    assert!(
        skim_bound * 3.0 < basic_bound,
        "Example 1's severalfold bound reduction did not reproduce"
    );
}
