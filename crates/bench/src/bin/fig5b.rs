//! Regenerates **Figure 5(b)** of the paper: ratio error vs. space for
//! basic AGMS vs. skimmed sketches on Zipf(1.5) ⋈ shifted-Zipf(1.5),
//! shifts 30 / 50 (smaller shifts because z=1.5 concentrates the mass —
//! larger shifts would make the join size vanish, per §5.1).
//!
//! Run: `cargo run -p ss-bench --release --bin fig5b [--paper]`

#![forbid(unsafe_code)]

use ss_bench::{figures, JoinWorkload, Scale};
use stream_model::Domain;

fn main() {
    let scale = Scale::from_args();
    let domain = Domain::with_log2(scale.domain_log2());
    let n = scale.stream_len();
    let workloads: Vec<JoinWorkload> = [30u64, 50]
        .iter()
        .map(|&shift| JoinWorkload::zipf(domain, 1.5, shift, n, 0x5B01 + shift))
        .collect();
    let table = figures::run_figure(
        "Figure 5(b): Basic AGMS vs Skimmed, Zipf z=1.5, shifts {30,50}",
        &workloads,
        scale,
        0xF16B,
    );
    figures::emit(&table);
}
