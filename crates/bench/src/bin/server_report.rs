//! Serving-layer throughput + latency record (`BENCH_server.json`).
//!
//! Stands up a loopback [`Server`], streams two zipfian update streams
//! through a [`ServerClient`], and measures what the network boundary
//! costs relative to in-process ingestion:
//!
//! * sustained wire ingest throughput (updates/s through encode → TCP →
//!   decode → `try_dispatch`), with the THROTTLE retry count,
//! * query latency quantiles (p50/p95/p99) for QUERY_JOIN round trips,
//!   each of which takes two linearizable pool snapshots and runs
//!   ESTSKIMJOINSIZE,
//! * a correctness gate: the served answer must equal the in-process
//!   estimate of the same updates bit-for-bit.
//!
//! Like `telemetry_report`, the telemetry switch is a compile-time
//! feature, so the overhead A/B spans two builds of this binary:
//!
//! ```text
//! cargo run -p ss-bench --release --no-default-features --bin server_report
//! cargo run -p ss-bench --release --bin server_report
//! ```
//!
//! The first (disabled) run writes `BENCH_server_off.json`; the second
//! (enabled) run reads it back and writes `BENCH_server.json` with both
//! arms and the relative serving overhead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use std::time::Instant;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, Update};
use stream_server::{Server, ServerClient, ServerConfig};
use stream_wire::StreamId;

const N: usize = 400_000;
const CHUNK: usize = 8_192;
const QUERIES: usize = 200;

fn zipf_updates(domain: Domain, skew: f64, seed: u64, n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(domain, skew, seed);
    (0..n).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3 // microseconds
}

fn main() {
    let domain = Domain::with_log2(14);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let config = if stream_telemetry::ENABLED {
        "enabled"
    } else {
        "disabled"
    };
    println!("server_report — instrumentation {config}, host cpus = {host_cpus}");

    let schema = SkimmedSchema::scanning(domain, 7, 256, 42);
    let mut server_config = ServerConfig::new(schema.clone());
    server_config.handler_threads = 2;
    server_config.ingest_workers = 2.min(host_cpus);
    // Deep enough that pipelined sends are paced by ingest speed, not by
    // THROTTLE/backoff round trips (the queue is slack, not backpressure,
    // at bench scale: 64 chunks × 8192 updates ≈ 8 MiB per stream).
    server_config.queue_depth = 64;
    let server = Server::bind("127.0.0.1:0", server_config).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let uf = zipf_updates(domain, 1.0, 11, N);
    let ug = zipf_updates(domain, 0.8, 12, N);

    // --- sustained wire ingest -------------------------------------------
    let mut client = ServerClient::connect_named(addr, "server_report").expect("connect");
    let t = Instant::now();
    let rf = client.send_all(StreamId::F, &uf, CHUNK).expect("send F");
    let rg = client.send_all(StreamId::G, &ug, CHUNK).expect("send G");
    // Ingest barrier: BATCH_ACK means *queued*, not absorbed, and the
    // deep bench queue can hold many chunks when send_all returns. A
    // QUERY_JOIN takes linearizable snapshots through both worker FIFOs,
    // so everything acked above is sketched before the clock stops.
    client.query_join().expect("ingest barrier");
    let wire_melem_s = 2.0 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
    let throttled = rf.throttled + rg.throttled;
    println!(
        "wire ingest: {wire_melem_s:.2} Melem/s ({} batches, {throttled} throttle retries)",
        rf.batches + rg.batches
    );
    assert_eq!(rf.updates + rg.updates, 2 * N as u64, "every update acked");

    // --- in-process baseline: the same ingest pools, no socket -----------
    // Same worker count, queue depth, and chunking as the server's pools;
    // the only difference is the wire (encode → TCP → decode) is gone.
    // `wire_gap_percent` below is what the network boundary costs.
    let workers = 2.min(host_cpus);
    let mk_pool = || {
        let schema = schema.clone();
        stream_ingest::IngestPool::with_queue_depth(workers, 8, move || {
            SkimmedSketch::new(schema.clone())
        })
    };
    let (pool_f, pool_g) = (mk_pool(), mk_pool());
    let t = Instant::now();
    for chunk in uf.chunks(CHUNK) {
        pool_f.dispatch(chunk.to_vec());
    }
    for chunk in ug.chunks(CHUNK) {
        pool_g.dispatch(chunk.to_vec());
    }
    let inproc_f = pool_f.finish().expect("in-process pool F");
    let inproc_g = pool_g.finish().expect("in-process pool G");
    let inproc_melem_s = 2.0 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
    let wire_gap = (inproc_melem_s - wire_melem_s) / inproc_melem_s * 100.0;
    // On a single-CPU host the comparison is degenerate: client encode,
    // server decode, and the sketch workers all serialize on one core,
    // so the wire arm pays the full codec + scheduler tax on top of the
    // same ingest work. With ≥2 cores the pipelined client overlaps
    // encode with server-side ingest and the gap closes toward the ack
    // latency. See DESIGN.md, "Counter memory layout & vectorization".
    let degenerate = host_cpus == 1;
    let note = if degenerate {
        " (degenerate: 1 host cpu serializes both sides)"
    } else {
        ""
    };
    println!(
        "in-process ingest (same pools, no socket): {inproc_melem_s:.2} Melem/s — wire gap {wire_gap:.2}%{note}"
    );

    // --- correctness gate: served answer == in-process answer ------------
    let mut local_f = SkimmedSketch::new(schema.clone());
    let mut local_g = SkimmedSketch::new(schema);
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);
    assert_eq!(
        inproc_f.l1_mass(),
        local_f.l1_mass(),
        "pooled in-process ingest drains every update"
    );
    assert_eq!(inproc_g.l1_mass(), local_g.l1_mass());
    let local = estimate_join(&local_f, &local_g, &EstimatorConfig::default());
    let served = client.query_join().expect("query_join");
    assert_eq!(
        served.estimate, local.estimate,
        "served estimate must match in-process bit-for-bit"
    );
    println!(
        "join estimate over the wire: {:.0} (dense |F|={}, |G|={}) — matches in-process",
        served.estimate, served.dense_f, served.dense_g
    );

    // --- query latency quantiles -----------------------------------------
    let mut lat_ns: Vec<u64> = Vec::with_capacity(QUERIES);
    for _ in 0..QUERIES {
        let t = Instant::now();
        let a = client.query_join().expect("query_join");
        lat_ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(a.estimate, local.estimate);
    }
    lat_ns.sort_unstable();
    let (p50, p95, p99) = (
        quantile(&lat_ns, 0.50),
        quantile(&lat_ns, 0.95),
        quantile(&lat_ns, 0.99),
    );
    println!(
        "QUERY_JOIN latency over {QUERIES} calls: p50 {p50:.0}µs, p95 {p95:.0}µs, p99 {p99:.0}µs"
    );

    // --- traced queries: request-tracing overhead on the same server -----
    // A second client with `trace: true` stamps every frame with a trace
    // context, so each query pays the 16-byte wire envelope plus the
    // flight-recorder spans on both sides. The p50 delta against the
    // untraced client above is the end-to-end cost of causal tracing.
    let mut traced_client = ServerClient::connect_with(
        addr,
        stream_server::ClientConfig {
            name: "server_report_traced".to_string(),
            trace: true,
            ..stream_server::ClientConfig::default()
        },
    )
    .expect("connect traced");
    let mut traced_lat_ns: Vec<u64> = Vec::with_capacity(QUERIES);
    for _ in 0..QUERIES {
        let t = Instant::now();
        let a = traced_client.query_join().expect("traced query_join");
        traced_lat_ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(a.estimate, local.estimate);
    }
    traced_lat_ns.sort_unstable();
    let traced_p50 = quantile(&traced_lat_ns, 0.50);
    println!(
        "traced QUERY_JOIN latency over {QUERIES} calls: p50 {traced_p50:.0}µs \
         (last trace {:016x})",
        traced_client.last_trace_id()
    );
    traced_client.goodbye().expect("traced goodbye");

    client.goodbye().expect("goodbye");
    let (fin_f, _fin_g) = server.shutdown().expect("clean shutdown");
    assert_eq!(
        fin_f.l1_mass(),
        local_f.l1_mass(),
        "shutdown drains every acked update"
    );

    if stream_telemetry::ENABLED {
        println!("\n--- server telemetry (JSON lines) ---");
        let snapshot = stream_telemetry::global().render_json_lines();
        for line in snapshot.lines().filter(|l| l.contains("server_")) {
            println!("{line}");
        }
    }

    // --- record the A/B ---------------------------------------------------
    if !stream_telemetry::ENABLED {
        let json = format!(
            "{{\n  \"bench\": \"server_off\",\n  \"elements\": {},\n  \"host_cpus\": {host_cpus},\n  \
             \"wire_melem_s\": {wire_melem_s:.3},\n  \"inproc_melem_s\": {inproc_melem_s:.3},\n  \
             \"wire_gap_percent\": {wire_gap:.2},\n  \"degenerate\": {degenerate},\n  \
             \"query_p50_us\": {p50:.1},\n  \
             \"query_p95_us\": {p95:.1},\n  \"query_p99_us\": {p99:.1}\n}}\n",
            2 * N,
        );
        std::fs::write("BENCH_server_off.json", &json).expect("write BENCH_server_off.json");
        println!("\nwrote BENCH_server_off.json (disabled arm; rerun with default features to finish the A/B)");
        return;
    }
    let off_arm = std::fs::read_to_string("BENCH_server_off.json")
        .ok()
        .and_then(|s| {
            let tail = s.split("\"wire_melem_s\": ").nth(1)?;
            tail.split([',', '\n']).next()?.trim().parse::<f64>().ok()
        });
    let (off_field, overhead_field) = match off_arm {
        Some(off) => {
            let overhead = (off - wire_melem_s) / off * 100.0;
            println!("\nserving overhead vs disabled arm ({off:.2} Melem/s): {overhead:.2}%");
            (format!("{off:.3}"), format!("{overhead:.2}"))
        }
        None => {
            println!("\nBENCH_server_off.json missing — run the --no-default-features arm first for the full A/B");
            ("null".into(), "null".into())
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"elements\": {},\n  \"host_cpus\": {host_cpus},\n  \
         \"queries\": {QUERIES},\n  \"enabled_wire_melem_s\": {wire_melem_s:.3},\n  \
         \"disabled_wire_melem_s\": {off_field},\n  \"overhead_percent\": {overhead_field},\n  \
         \"inproc_melem_s\": {inproc_melem_s:.3},\n  \"wire_gap_percent\": {wire_gap:.2},\n  \
         \"degenerate\": {degenerate},\n  \
         \"throttle_retries\": {throttled},\n  \"query_p50_us\": {p50:.1},\n  \
         \"query_p95_us\": {p95:.1},\n  \"query_p99_us\": {p99:.1},\n  \
         \"traced_query_p50_us\": {traced_p50:.1}\n}}\n",
        2 * N,
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
