//! Error vs. shift at fixed space — the §5.1 knob study.
//!
//! The paper uses the right-shift parameter as "a knob to stress-test the
//! accuracy of the two algorithms in a controlled manner": shift 0 makes
//! the join a self-join; growing shifts shrink the join size, and since
//! relative error is inversely proportional to the join size, both
//! methods should degrade monotonically — the question is how fast. This
//! harness fixes the space budget and sweeps the shift.
//!
//! Run: `cargo run -p ss-bench --release --bin vary_shift [--paper]`

#![forbid(unsafe_code)]

use skimmed_sketch::EstimatorConfig;
use ss_bench::{compare_at_space, JoinWorkload, Scale};
use stream_model::table::{fmt_f64, Table};
use stream_model::Domain;

fn main() {
    let scale = Scale::from_args();
    let (log2, n, reps) = match scale {
        Scale::Quick => (14u32, 300_000usize, 3usize),
        Scale::Paper => (18, 4_000_000, 5),
    };
    let domain = Domain::with_log2(log2);
    let space = 4096usize;
    let z = 1.0f64;
    let cfg = EstimatorConfig::default();

    let mut t = Table::new([
        "shift",
        "join_size",
        "basic_mean_err",
        "skim_mean_err",
        "improvement",
    ]);
    for &shift in &[0u64, 25, 50, 100, 200, 400, 800] {
        let w = JoinWorkload::zipf(domain, z, shift, n, 0x5417 + shift);
        let cmp = compare_at_space(&w, space, &[11, 35], reps, 0xE0 + shift, &cfg);
        let improvement = if cmp.skimmed.mean > 0.0 {
            cmp.basic.mean / cmp.skimmed.mean
        } else {
            f64::INFINITY
        };
        t.push_row([
            shift.to_string(),
            w.actual.to_string(),
            fmt_f64(cmp.basic.mean),
            fmt_f64(cmp.skimmed.mean),
            format!("{improvement:.1}x"),
        ]);
    }

    println!("Shift knob at fixed space {space} words (z={z}, domain 2^{log2}, n={n})\n");
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());
}
