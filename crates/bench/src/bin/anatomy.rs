//! Ablation: **estimator anatomy** — how the four sub-joins of
//! ESTSKIMJOINSIZE share the estimate across skews and shifts, and how much
//! of the accuracy comes from computing dense⋈dense exactly.
//!
//! The "no-skim" row is the same hash sketch *without* skimming (the
//! sparse⋈sparse estimator applied to the full sketch) — isolating the
//! contribution of the skimming step itself from the hash-bucketing.
//!
//! Run: `cargo run -p ss-bench --release --bin anatomy [--paper]`

#![forbid(unsafe_code)]

use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_bench::{JoinWorkload, Scale};
use stream_model::metrics::ratio_error;
use stream_model::table::{fmt_f64, Table};
use stream_model::Domain;

fn main() {
    let scale = Scale::from_args();
    let (log2, n) = match scale {
        Scale::Quick => (14u32, 200_000usize),
        Scale::Paper => (16, 1_000_000),
    };
    let domain = Domain::with_log2(log2);
    let (tables, buckets) = (7usize, 512usize);
    let cfg = EstimatorConfig::default();

    let mut t = Table::new([
        "workload",
        "J",
        "dd%",
        "ds%",
        "sd%",
        "ss%",
        "dense_f",
        "dense_g",
        "skim_err",
        "noskim_err",
    ]);

    for &(z, shift) in &[(0.8f64, 40u64), (1.0, 40), (1.2, 40), (1.5, 10), (1.5, 40)] {
        let w = JoinWorkload::zipf(domain, z, shift, n, 0xA0A + (z * 10.0) as u64 + shift);
        let schema = SkimmedSchema::scanning(domain, tables, buckets, 0x1234);
        let sf = SkimmedSketch::from_frequencies(schema.clone(), w.f.nonzero());
        let sg = SkimmedSketch::from_frequencies(schema, w.g.nonzero());
        let est = estimate_join(&sf, &sg, &cfg);
        // The unskimmed estimator: bucket-product on the raw sketches.
        let noskim = sf.base().join_estimate(sg.base());
        let total = est.estimate.abs().max(f64::EPSILON);
        t.push_row([
            w.label.clone(),
            w.actual.to_string(),
            fmt_f64(100.0 * est.dense_dense / total),
            fmt_f64(100.0 * est.dense_sparse / total),
            fmt_f64(100.0 * est.sparse_dense / total),
            fmt_f64(100.0 * est.sparse_sparse / total),
            est.dense_f.to_string(),
            est.dense_g.to_string(),
            fmt_f64(ratio_error(est.estimate, w.actual as f64)),
            fmt_f64(ratio_error(noskim, w.actual as f64)),
        ]);
    }

    println!(
        "Estimator anatomy: sub-join shares of the skimmed estimate ({tables}x{buckets}, domain 2^{log2}, n={n})\n"
    );
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());
}
