//! Replication + failover robustness record (`BENCH_replication.json`).
//!
//! Stands up one replicated shard — a WAL-backed primary with a
//! follower tailing its log — behind a [`Router`] running the
//! heartbeat failure detector, and measures what the durability
//! guarantees cost and buy:
//!
//! * sustained sequenced ingest throughput through the router with the
//!   replication ack gate engaged (an ack now implies the follower has
//!   the bytes),
//! * steady-state replication lag: the follower's byte lag sampled
//!   every 5 ms while the stream is in flight (max + final drain time),
//! * failover-to-first-answer: the primary is halted mid-service and
//!   the clock runs until a query through the router succeeds again —
//!   detector misses, PROMOTE, shard-map republish, and the client's
//!   own reconnect all included,
//! * a correctness gate: the promoted follower's answer must equal the
//!   in-process ground truth bit for bit (the failover contract).
//!
//! Runs under either telemetry build; the JSON records which arm it
//! was:
//!
//! ```text
//! cargo run -p ss-bench --release --bin replication_report
//! ```

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_cluster::{Router, RouterConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use stream_durability::WalConfig;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, Update};
use stream_server::{BackoffConfig, ClientConfig, ResilientClient, Server, ServerConfig};
use stream_wire::StreamId;

const N: usize = 100_000;
const CHUNK: usize = 4_096;

fn zipf_updates(domain: Domain, skew: f64, seed: u64, n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(domain, skew, seed);
    (0..n).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

fn node_config(schema: std::sync::Arc<SkimmedSchema>, dir: &std::path::Path) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.queue_depth = 64;
    config.shard = true;
    config.read_timeout = Duration::from_millis(50);
    config.replication_poll = Duration::from_millis(5);
    config.wal = Some(WalConfig::new(dir));
    config
}

fn producer_config(client_id: u64) -> ClientConfig {
    ClientConfig {
        name: "replication_report".into(),
        client_id,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        reply_retries: 100,
        backoff: BackoffConfig::default(),
        ..ClientConfig::default()
    }
}

fn main() {
    let domain = Domain::with_log2(14);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let config = if stream_telemetry::ENABLED {
        "enabled"
    } else {
        "disabled"
    };
    println!("replication_report — instrumentation {config}, host cpus = {host_cpus}");

    let schema = SkimmedSchema::scanning(domain, 7, 256, 42);
    let uf = zipf_updates(domain, 1.0, 21, N);
    let ug = zipf_updates(domain, 0.8, 22, N);

    // Ground truth for the bit-identity gates.
    let mut local_f = SkimmedSketch::new(schema.clone());
    let mut local_g = SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);
    let expected = estimate_join(&local_f, &local_g, &EstimatorConfig::default()).estimate;

    let scratch = std::env::temp_dir().join(format!("ss-repl-report-{}", std::process::id()));
    let pdir = scratch.join("primary");
    let fdir = scratch.join("follower");
    std::fs::create_dir_all(&pdir).expect("primary dir");
    std::fs::create_dir_all(&fdir).expect("follower dir");

    let primary =
        Server::bind("127.0.0.1:0", node_config(schema.clone(), &pdir)).expect("bind primary");
    let mut follower_cfg = node_config(schema.clone(), &fdir);
    follower_cfg.follower_of = Some(primary.local_addr().to_string());
    let follower = Server::bind("127.0.0.1:0", follower_cfg).expect("bind follower");

    let mut router_config = RouterConfig::new(vec![primary.local_addr().to_string()]);
    router_config.handler_threads = 2;
    router_config.followers = vec![follower.local_addr().to_string()];
    router_config.heartbeat_every = Duration::from_millis(30);
    router_config.heartbeat_timeout = Duration::from_millis(80);
    router_config.heartbeat_misses = 2;
    router_config.retry_budget = 400;
    router_config.shard_read_timeout = Duration::from_millis(100);
    router_config.shard_reply_retries = 10;
    router_config.backoff = BackoffConfig {
        base: Duration::from_micros(500),
        cap: Duration::from_millis(10),
        seed: 0x005E_ED0F,
    };
    let router = Router::bind("127.0.0.1:0", router_config).expect("bind router");

    // --- replicated ingest + steady-state lag ----------------------------
    let done = AtomicBool::new(false);
    let (ingest_melem_s, lag_max, drain_ms) = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let mut max = 0u64;
            while !done.load(Ordering::Acquire) {
                if let Some(lag) = follower.replication_lag_bytes() {
                    max = max.max(lag);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            max
        });
        let mut producer =
            ResilientClient::new(router.local_addr(), producer_config(91)).with_max_reconnects(40);
        let t = Instant::now();
        let rf = producer.send_all(StreamId::F, &uf, CHUNK).expect("send F");
        let rg = producer.send_all(StreamId::G, &ug, CHUNK).expect("send G");
        let ingest = 2.0 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
        assert_eq!(rf.updates + rg.updates, 2 * N as u64, "every update acked");

        // With the ack gate engaged the follower should already be at
        // (or within one poll of) the frontier; time the last drain.
        let t = Instant::now();
        while follower.replication_lag_bytes() != Some(0) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain = t.elapsed().as_secs_f64() * 1e3;

        let answer = producer.query_join().expect("routed query");
        assert_eq!(answer.estimate, expected, "routed answer diverged");
        producer.goodbye().expect("goodbye");
        done.store(true, Ordering::Release);
        let max = sampler.join().expect("lag sampler");
        (ingest, max, drain)
    });
    println!(
        "replicated ingest {ingest_melem_s:.2} Melem/s, steady-state lag max {lag_max} B, \
         final drain {drain_ms:.1} ms"
    );

    // --- failover-to-first-answer ----------------------------------------
    let version_before = router.manifest().version();
    primary.halt();
    let t = Instant::now();
    let mut reader =
        ResilientClient::new(router.local_addr(), producer_config(92)).with_max_reconnects(40);
    let answer = reader.query_join().expect("post-failover query");
    let failover_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        answer.estimate, expected,
        "promoted follower's answer diverged"
    );
    assert!(
        router.manifest().version() > version_before,
        "failover must republish the shard map"
    );
    reader.goodbye().expect("reader goodbye");
    println!("failover to first bit-identical answer: {failover_ms:.0} ms");

    router.shutdown().expect("router shutdown");
    follower.shutdown().expect("follower shutdown");
    let _ = std::fs::remove_dir_all(&scratch);

    // --- record -----------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"replication\",\n  \"telemetry\": \"{config}\",\n  \
         \"elements\": {},\n  \"host_cpus\": {host_cpus},\n  \"bit_identical\": true,\n  \
         \"ingest_melem_s\": {ingest_melem_s:.3},\n  \"steady_lag_max_bytes\": {lag_max},\n  \
         \"lag_drain_ms\": {drain_ms:.1},\n  \"failover_first_answer_ms\": {failover_ms:.1}\n}}\n",
        2 * N,
    );
    std::fs::write("BENCH_replication.json", &json).expect("write BENCH_replication.json");
    println!("wrote BENCH_replication.json");
}
