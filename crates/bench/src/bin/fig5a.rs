//! Regenerates **Figure 5(a)** of the paper: ratio error vs. space for
//! basic AGMS vs. skimmed sketches on Zipf(1.0) ⋈ shifted-Zipf(1.0),
//! shifts 100 / 200 / 300.
//!
//! Run: `cargo run -p ss-bench --release --bin fig5a [--paper]`

#![forbid(unsafe_code)]

use ss_bench::{figures, JoinWorkload, Scale};
use stream_model::Domain;

fn main() {
    let scale = Scale::from_args();
    let domain = Domain::with_log2(scale.domain_log2());
    let n = scale.stream_len();
    let workloads: Vec<JoinWorkload> = [100u64, 200, 300]
        .iter()
        .map(|&shift| JoinWorkload::zipf(domain, 1.0, shift, n, 0x5A01 + shift))
        .collect();
    let table = figures::run_figure(
        "Figure 5(a): Basic AGMS vs Skimmed, Zipf z=1.0, shifts {100,200,300}",
        &workloads,
        scale,
        0xF16A,
    );
    figures::emit(&table);
}
