//! Scratch probe for the blocked-kernel PR: measures candidate hash-sketch
//! update kernels against the current `add_batch` before integration.
//!
//! Temporary tool — variants live here until the winner is promoted into
//! `stream-hash`/`stream-sketches`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const M61: u64 = (1u64 << 61) - 1;
const CHUNK: usize = 256;
const TABLES: usize = 8;

#[inline]
fn reduce(x: u64) -> u64 {
    let r = (x & M61) + (x >> 61);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod as u64) & M61;
    let hi = (prod >> 61) as u64;
    let mut r = lo + hi;
    r = (r & M61) + (r >> 61);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

#[inline]
fn reduce128(x: u128) -> u64 {
    const LOW: u128 = (1u128 << 61) - 1;
    let folded = (x & LOW) as u64 + ((x >> 61) as u64 & M61) + (x >> 122) as u64;
    reduce(folded)
}

struct Table {
    a: u64,
    b: u64,
    c: [u64; 4],
}

fn tables(seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..TABLES)
        .map(|_| Table {
            a: rng.gen_range(1..M61),
            b: rng.gen_range(0..M61),
            c: [
                rng.gen_range(0..M61),
                rng.gen_range(0..M61),
                rng.gen_range(0..M61),
                rng.gen_range(0..M61),
            ],
        })
        .collect()
}

/// Reference: scalar per-element path.
fn scalar(counters: &mut [i64], buckets: usize, ts: &[Table], keys: &[u64], ws: &[i64]) {
    for (&k, &w) in keys.iter().zip(ws) {
        let x = reduce(k);
        for (i, t) in ts.iter().enumerate() {
            let q = (reduce(mul_mod(t.a, x) + t.b) % buckets as u64) as usize;
            let e = {
                let x2 = mul_mod(x, x);
                let x3 = mul_mod(x2, x);
                reduce(
                    t.c[0]
                        .wrapping_add(mul_mod(t.c[1], x))
                        .wrapping_add(mul_mod(t.c[2], x2))
                        .wrapping_add(mul_mod(t.c[3], x3)),
                )
            };
            let s = 1 - 2 * ((e & 1) as i64);
            counters[i * buckets + q] += w * s;
        }
    }
}

/// Current shipped structure: per-chunk shared powers, per-table
/// bucket-lane + sign-lane passes (u128 lazy accumulate), then scatter.
fn current(counters: &mut [i64], buckets: usize, ts: &[Table], keys: &[u64], ws: &[i64]) {
    let mask = buckets - 1;
    let mut red = [0u64; CHUNK];
    let mut sq = [0u64; CHUNK];
    let mut cu = [0u64; CHUNK];
    let mut w = [0i64; CHUNK];
    let mut qs = [0usize; CHUNK];
    let mut ss = [0i64; CHUNK];
    for (kc, wc) in keys.chunks(CHUNK).zip(ws.chunks(CHUNK)) {
        let n = kc.len();
        for j in 0..n {
            let x = reduce(kc[j]);
            red[j] = x;
            sq[j] = mul_mod(x, x);
            cu[j] = mul_mod(sq[j], x);
            w[j] = wc[j];
        }
        for (i, t) in ts.iter().enumerate() {
            let (a, b) = (t.a as u128, t.b as u128);
            for j in 0..n {
                qs[j] = (reduce128(a * red[j] as u128 + b) as usize) & mask;
            }
            let (c0, c1, c2, c3) = (
                t.c[0] as u128,
                t.c[1] as u128,
                t.c[2] as u128,
                t.c[3] as u128,
            );
            for j in 0..n {
                let e = c0 + c1 * red[j] as u128 + c2 * sq[j] as u128 + c3 * cu[j] as u128;
                ss[j] = 1 - 2 * ((reduce128(e) & 1) as i64);
            }
            let row = &mut counters[i * buckets..(i + 1) * buckets];
            for j in 0..n {
                row[qs[j]] += w[j] * ss[j];
            }
        }
    }
}

// ---- variant B: 31/30-bit limb split, autovectorizable -----------------

const MASK31: u64 = (1u64 << 31) - 1;
const MASK30: u64 = (1u64 << 30) - 1;

#[inline(always)]
fn split(x: u64) -> (u64, u64) {
    (x & MASK31, x >> 31)
}

/// `S ≡ a·x (mod p)`, `S < 2^63 + 2^32`, from pre-split operands.
#[inline(always)]
fn mm_split(a0: u64, a1: u64, x0: u64, x1: u64) -> u64 {
    let p00 = a0 * x0;
    let p11 = a1 * x1;
    let m = a0 * x1 + a1 * x0;
    let m0 = m & MASK30;
    let m1 = m >> 30;
    p00 + (p11 << 1) + (m0 << 31) + m1
}

#[inline(always)]
fn fold(s: u64) -> u64 {
    (s & M61) + (s >> 61)
}

#[inline(always)]
fn canon(s: u64) -> u64 {
    let r = fold(s);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

fn lanes(counters: &mut [i64], buckets: usize, ts: &[Table], keys: &[u64], ws: &[i64]) {
    let mask = (buckets - 1) as u64;
    let mut x0 = [0u64; CHUNK];
    let mut x1 = [0u64; CHUNK];
    let mut y0 = [0u64; CHUNK];
    let mut y1 = [0u64; CHUNK];
    let mut z0 = [0u64; CHUNK];
    let mut z1 = [0u64; CHUNK];
    let mut w = [0i64; CHUNK];
    let mut qs = [0usize; CHUNK];
    let mut ss = [0i64; CHUNK];
    for (kc, wc) in keys.chunks(CHUNK).zip(ws.chunks(CHUNK)) {
        let n = kc.len().min(CHUNK);
        for j in 0..n {
            let x = reduce(kc[j]);
            let (a, b) = split(x);
            x0[j] = a;
            x1[j] = b;
            let x2 = canon(mm_split(a, b, a, b));
            let (a2, b2) = split(x2);
            y0[j] = a2;
            y1[j] = b2;
            let x3 = canon(mm_split(a2, b2, a, b));
            let (a3, b3) = split(x3);
            z0[j] = a3;
            z1[j] = b3;
            w[j] = wc[j];
        }
        for (i, t) in ts.iter().enumerate() {
            let (a0, a1) = split(t.a);
            let badd = t.b;
            let (c10, c11) = split(t.c[1]);
            let (c20, c21) = split(t.c[2]);
            let (c30, c31) = split(t.c[3]);
            let c0 = t.c[0];
            for j in 0..n {
                let q = canon(mm_split(a0, a1, x0[j], x1[j]) + badd);
                qs[j] = (q & mask) as usize;
                let e = c0
                    + fold(mm_split(c10, c11, x0[j], x1[j]))
                    + fold(mm_split(c20, c21, y0[j], y1[j]))
                    + fold(mm_split(c30, c31, z0[j], z1[j]));
                let r = canon(e);
                ss[j] = if r & 1 == 1 {
                    w[j].wrapping_neg()
                } else {
                    w[j]
                };
            }
            let row = &mut counters[i * buckets..(i + 1) * buckets];
            let rmask = row.len() - 1;
            for j in 0..n {
                row[qs[j] & rmask] += ss[j];
            }
        }
    }
}

/// Variant B2: like `lanes`, but every multiplicand is re-masked inside
/// the lane loop so LLVM can prove operands fit 32 bits and emit
/// `vpmuludq` (1 uop) instead of `vpmullq` (3 uops).
fn lanes2(counters: &mut [i64], buckets: usize, ts: &[Table], keys: &[u64], ws: &[i64]) {
    #[inline(always)]
    fn mm(a0: u64, a1: u64, x0: u64, x1: u64) -> u64 {
        let (a0, a1, x0, x1) = (a0 & MASK31, a1 & MASK30, x0 & MASK31, x1 & MASK30);
        let p00 = a0 * x0;
        let p11 = a1 * x1;
        let m = a0 * x1 + a1 * x0;
        p00 + (p11 << 1) + ((m & MASK30) << 31) + (m >> 30)
    }
    let mask = (buckets - 1) as u64;
    let mut x0 = [0u64; CHUNK];
    let mut x1 = [0u64; CHUNK];
    let mut y0 = [0u64; CHUNK];
    let mut y1 = [0u64; CHUNK];
    let mut z0 = [0u64; CHUNK];
    let mut z1 = [0u64; CHUNK];
    let mut w = [0i64; CHUNK];
    let mut qs = [0usize; CHUNK];
    let mut ss = [0i64; CHUNK];
    for (kc, wc) in keys.chunks(CHUNK).zip(ws.chunks(CHUNK)) {
        let n = kc.len().min(CHUNK);
        for j in 0..n {
            let x = reduce(kc[j]);
            let (a, b) = split(x);
            x0[j] = a;
            x1[j] = b;
            let x2 = canon(mm(a, b, a, b));
            let (a2, b2) = split(x2);
            y0[j] = a2;
            y1[j] = b2;
            let x3 = canon(mm(a2, b2, a, b));
            let (a3, b3) = split(x3);
            z0[j] = a3;
            z1[j] = b3;
            w[j] = wc[j];
        }
        for (i, t) in ts.iter().enumerate() {
            let (a0, a1) = split(t.a);
            let badd = t.b;
            let (c10, c11) = split(t.c[1]);
            let (c20, c21) = split(t.c[2]);
            let (c30, c31) = split(t.c[3]);
            let c0 = t.c[0];
            for j in 0..n {
                let q = canon(mm(a0, a1, x0[j], x1[j]) + badd);
                qs[j] = (q & mask) as usize;
                let e = c0
                    + fold(mm(c10, c11, x0[j], x1[j]))
                    + fold(mm(c20, c21, y0[j], y1[j]))
                    + fold(mm(c30, c31, z0[j], z1[j]));
                let r = canon(e);
                ss[j] = if r & 1 == 1 {
                    w[j].wrapping_neg()
                } else {
                    w[j]
                };
            }
            let row = &mut counters[i * buckets..(i + 1) * buckets];
            let rmask = row.len() - 1;
            for j in 0..n {
                row[qs[j] & rmask] += ss[j];
            }
        }
    }
}

/// Variant B2i: `lanes2` math over an interleaved (bucket-major) counter
/// layout — counter of table `i`, bucket `q` lives at `q·T + i`, so one
/// key's eight table counters for equal bucket indices are adjacent.
/// Output converted back to row-major by the caller for comparison.
fn lanes2_interleaved(
    counters: &mut [i64],
    buckets: usize,
    ts: &[Table],
    keys: &[u64],
    ws: &[i64],
) {
    #[inline(always)]
    fn mm(a0: u64, a1: u64, x0: u64, x1: u64) -> u64 {
        let (a0, a1, x0, x1) = (a0 & MASK31, a1 & MASK30, x0 & MASK31, x1 & MASK30);
        let p00 = a0 * x0;
        let p11 = a1 * x1;
        let m = a0 * x1 + a1 * x0;
        p00 + (p11 << 1) + ((m & MASK30) << 31) + (m >> 30)
    }
    let t_count = ts.len();
    let mask = (buckets - 1) as u64;
    let mut x0 = [0u64; CHUNK];
    let mut x1 = [0u64; CHUNK];
    let mut y0 = [0u64; CHUNK];
    let mut y1 = [0u64; CHUNK];
    let mut z0 = [0u64; CHUNK];
    let mut z1 = [0u64; CHUNK];
    let mut w = [0i64; CHUNK];
    let mut qs = [0usize; CHUNK];
    let mut ss = [0i64; CHUNK];
    for (kc, wc) in keys.chunks(CHUNK).zip(ws.chunks(CHUNK)) {
        let n = kc.len().min(CHUNK);
        for j in 0..n {
            let x = reduce(kc[j]);
            let (a, b) = split(x);
            x0[j] = a;
            x1[j] = b;
            let x2 = canon(mm(a, b, a, b));
            let (a2, b2) = split(x2);
            y0[j] = a2;
            y1[j] = b2;
            let x3 = canon(mm(a2, b2, a, b));
            let (a3, b3) = split(x3);
            z0[j] = a3;
            z1[j] = b3;
            w[j] = wc[j];
        }
        for (i, t) in ts.iter().enumerate() {
            let (a0, a1) = split(t.a);
            let badd = t.b;
            let (c10, c11) = split(t.c[1]);
            let (c20, c21) = split(t.c[2]);
            let (c30, c31) = split(t.c[3]);
            let c0 = t.c[0];
            for j in 0..n {
                let q = canon(mm(a0, a1, x0[j], x1[j]) + badd);
                qs[j] = (q & mask) as usize;
                let e = c0
                    + fold(mm(c10, c11, x0[j], x1[j]))
                    + fold(mm(c20, c21, y0[j], y1[j]))
                    + fold(mm(c30, c31, z0[j], z1[j]));
                let r = canon(e);
                ss[j] = if r & 1 == 1 {
                    w[j].wrapping_neg()
                } else {
                    w[j]
                };
            }
            for j in 0..n {
                counters[qs[j] * t_count + i] += ss[j];
            }
        }
    }
}

/// Variant C: same limb math, fused single pass per table (no scratch
/// bucket/sign arrays — bucket, sign, scatter per key inline).
fn fused(counters: &mut [i64], buckets: usize, ts: &[Table], keys: &[u64], ws: &[i64]) {
    let mask = (buckets - 1) as u64;
    let mut x0 = [0u64; CHUNK];
    let mut x1 = [0u64; CHUNK];
    let mut y0 = [0u64; CHUNK];
    let mut y1 = [0u64; CHUNK];
    let mut z0 = [0u64; CHUNK];
    let mut z1 = [0u64; CHUNK];
    let mut w = [0i64; CHUNK];
    for (kc, wc) in keys.chunks(CHUNK).zip(ws.chunks(CHUNK)) {
        let n = kc.len().min(CHUNK);
        for j in 0..n {
            let x = reduce(kc[j]);
            let (a, b) = split(x);
            x0[j] = a;
            x1[j] = b;
            let x2 = canon(mm_split(a, b, a, b));
            let (a2, b2) = split(x2);
            y0[j] = a2;
            y1[j] = b2;
            let x3 = canon(mm_split(a2, b2, a, b));
            let (a3, b3) = split(x3);
            z0[j] = a3;
            z1[j] = b3;
            w[j] = wc[j];
        }
        for (i, t) in ts.iter().enumerate() {
            let (a0, a1) = split(t.a);
            let badd = t.b;
            let (c10, c11) = split(t.c[1]);
            let (c20, c21) = split(t.c[2]);
            let (c30, c31) = split(t.c[3]);
            let c0 = t.c[0];
            let row = &mut counters[i * buckets..(i + 1) * buckets];
            let rmask = row.len() - 1;
            for j in 0..n {
                let q = canon(mm_split(a0, a1, x0[j], x1[j]) + badd);
                let e = c0
                    + fold(mm_split(c10, c11, x0[j], x1[j]))
                    + fold(mm_split(c20, c21, y0[j], y1[j]))
                    + fold(mm_split(c30, c31, z0[j], z1[j]));
                let r = canon(e);
                let s = if r & 1 == 1 {
                    w[j].wrapping_neg()
                } else {
                    w[j]
                };
                row[(q & mask) as usize & rmask] += s;
            }
        }
    }
}

fn best(reps: usize, n: usize, mut f: impl FnMut()) -> f64 {
    let mut b = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        b = b.min(t.elapsed().as_secs_f64());
    }
    n as f64 / b / 1e6
}

fn wire_probe() {
    use std::io::Cursor;
    use stream_model::Update;
    use stream_wire::{write_update_batch, Frame, StreamId};
    const N: usize = 400_000;
    const CHUNK_W: usize = 8_192;
    let mut rng = StdRng::seed_from_u64(11);
    let updates: Vec<Update> = (0..N)
        .map(|_| Update::insert(rng.gen_range(0..1u64 << 14)))
        .collect();

    // encode (varint payload + 2 CRC passes) into a reused sink
    let mut sink: Vec<u8> = Vec::new();
    let t = Instant::now();
    let mut reps = 0u32;
    while t.elapsed().as_millis() < 400 {
        sink.clear();
        for (seq, chunk) in updates.chunks(CHUNK_W).enumerate() {
            write_update_batch(&mut sink, StreamId::F, 1, seq as u64, chunk).unwrap();
        }
        reps += 1;
    }
    let enc = reps as f64 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
    let bytes_per = sink.len() as f64 / N as f64;

    // decode (header verify + payload CRC + varint parse) from those bytes
    let mut scratch = Vec::new();
    let t = Instant::now();
    let mut reps = 0u32;
    while t.elapsed().as_millis() < 400 {
        let mut cur = Cursor::new(&sink[..]);
        while (cur.position() as usize) < sink.len() {
            let (f, _len) = Frame::read_from_with_scratch(&mut cur, 1 << 24, &mut scratch).unwrap();
            assert!(matches!(f, Frame::UpdateBatch { .. }));
        }
        reps += 1;
    }
    let dec = reps as f64 * N as f64 / t.elapsed().as_secs_f64() / 1e6;

    // CRC alone over the same byte volume
    let t = Instant::now();
    let mut reps = 0u32;
    let mut acc = 0u32;
    while t.elapsed().as_millis() < 400 {
        acc ^= stream_wire::crc32(&sink);
        reps += 1;
    }
    let crc_gbs = reps as f64 * sink.len() as f64 / t.elapsed().as_secs_f64() / 1e9;
    println!(
        "wire: encode={enc:.1} Melem/s  decode={dec:.1} Melem/s  \
         ({bytes_per:.1} B/update, crc {crc_gbs:.2} GB/s, acc {acc})"
    );
}

fn main() {
    wire_probe();
    const N: usize = 400_000;
    let mut rng = StdRng::seed_from_u64(7);
    let keys: Vec<u64> = (0..N).map(|_| rng.gen_range(0..1u64 << 18)).collect();
    let ws: Vec<i64> = (0..N).map(|_| 1i64).collect();
    let ts = tables(3);

    for &buckets in &[64usize, 256, 1024] {
        let words = TABLES * buckets;
        let mut c_ref = vec![0i64; words];
        scalar(&mut c_ref, buckets, &ts, &keys, &ws);
        let mut c1 = vec![0i64; words];
        current(&mut c1, buckets, &ts, &keys, &ws);
        assert_eq!(c_ref, c1, "current mismatch at {buckets}");
        let mut c2 = vec![0i64; words];
        lanes(&mut c2, buckets, &ts, &keys, &ws);
        assert_eq!(c_ref, c2, "lanes mismatch at {buckets}");
        let mut c3 = vec![0i64; words];
        fused(&mut c3, buckets, &ts, &keys, &ws);
        assert_eq!(c_ref, c3, "fused mismatch at {buckets}");
        let mut c4 = vec![0i64; words];
        lanes2(&mut c4, buckets, &ts, &keys, &ws);
        assert_eq!(c_ref, c4, "lanes2 mismatch at {buckets}");
        let mut c5 = vec![0i64; words];
        lanes2_interleaved(&mut c5, buckets, &ts, &keys, &ws);
        let deinterleaved: Vec<i64> = (0..TABLES)
            .flat_map(|i| {
                (0..buckets).map({
                    let c5 = &c5;
                    move |q| c5[q * TABLES + i]
                })
            })
            .collect();
        assert_eq!(c_ref, deinterleaved, "interleaved mismatch at {buckets}");

        let mut c = vec![0i64; words];
        let t_scalar = best(3, N, || scalar(&mut c, buckets, &ts, &keys, &ws));
        let t_current = best(5, N, || current(&mut c, buckets, &ts, &keys, &ws));
        let t_lanes = best(5, N, || lanes(&mut c, buckets, &ts, &keys, &ws));
        let t_lanes2 = best(5, N, || lanes2(&mut c, buckets, &ts, &keys, &ws));
        let t_inter = best(5, N, || {
            lanes2_interleaved(&mut c, buckets, &ts, &keys, &ws)
        });
        let t_fused = best(5, N, || fused(&mut c, buckets, &ts, &keys, &ws));
        println!(
            "words={words:>6}  scalar={t_scalar:7.2}  current={t_current:7.2}  \
             lanes={t_lanes:7.2}  lanes2={t_lanes2:7.2}  interleaved={t_inter:7.2}  \
             fused={t_fused:7.2}  (Melem/s)"
        );
    }
}
