//! Sharded-cluster throughput + latency record (`BENCH_cluster.json`).
//!
//! Stands up a loopback cluster — S shard servers behind one
//! [`Router`] — for S ∈ {1, 2, 4}, streams two zipfian update streams
//! through the router, and measures what domain-partitioned routing
//! costs relative to a single node fed the same stream:
//!
//! * sustained routed ingest throughput (updates/s through split →
//!   fan-out → per-shard ack),
//! * QUERY_JOIN latency quantiles (p50/p95/p99), each answer built by
//!   fetching every shard's unskimmed state and merging via linearity,
//! * a correctness gate: every routed answer must equal the single
//!   node's bit for bit (the cluster's core contract).
//!
//! Like `server_report`, the telemetry switch is a compile-time
//! feature, so the overhead A/B spans two builds of this binary:
//!
//! ```text
//! cargo run -p ss-bench --release --no-default-features --bin cluster_report
//! cargo run -p ss-bench --release --bin cluster_report
//! ```
//!
//! The first (disabled) run writes `BENCH_cluster_off.json`; the second
//! (enabled) run reads it back and writes `BENCH_cluster.json` with
//! both arms. On a 1-CPU host every shard, the router, and the client
//! serialize on one core, so scaling numbers are marked
//! `"degenerate": true` exactly like `server_report`'s.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_cluster::{Router, RouterConfig};
use std::time::Instant;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, Update};
use stream_server::{Server, ServerClient, ServerConfig};
use stream_wire::StreamId;

const N: usize = 200_000;
const CHUNK: usize = 8_192;
const QUERIES: usize = 50;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn zipf_updates(domain: Domain, skew: f64, seed: u64, n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(domain, skew, seed);
    (0..n).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3 // microseconds
}

struct Arm {
    label: String,
    ingest_melem_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// Streams both workloads through `addr`, takes the latency quantiles,
/// and asserts the answer matches `expected` bit for bit.
fn drive(addr: std::net::SocketAddr, uf: &[Update], ug: &[Update], expected: f64) -> Arm {
    let mut client = ServerClient::connect_named(addr, "cluster_report").expect("connect");
    let t = Instant::now();
    let rf = client.send_all(StreamId::F, uf, CHUNK).expect("send F");
    let rg = client.send_all(StreamId::G, ug, CHUNK).expect("send G");
    // Ingest barrier, same as server_report: the query's linearizable
    // snapshots (on every shard) prove everything acked was absorbed.
    let first = client.query_join().expect("ingest barrier");
    let ingest_melem_s = 2.0 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
    assert_eq!(rf.updates + rg.updates, 2 * N as u64, "every update acked");
    assert_eq!(
        first.estimate, expected,
        "answer must match the single node bit-for-bit"
    );

    let mut lat_ns: Vec<u64> = Vec::with_capacity(QUERIES);
    for _ in 0..QUERIES {
        let t = Instant::now();
        let a = client.query_join().expect("query_join");
        lat_ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(a.estimate, expected);
    }
    lat_ns.sort_unstable();
    client.goodbye().expect("goodbye");
    Arm {
        label: String::new(),
        ingest_melem_s,
        p50: quantile(&lat_ns, 0.50),
        p95: quantile(&lat_ns, 0.95),
        p99: quantile(&lat_ns, 0.99),
    }
}

fn shard_config(schema: std::sync::Arc<SkimmedSchema>, host_cpus: usize) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2.min(host_cpus);
    config.queue_depth = 64;
    config.shard = true;
    config
}

fn main() {
    let domain = Domain::with_log2(14);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let config = if stream_telemetry::ENABLED {
        "enabled"
    } else {
        "disabled"
    };
    println!("cluster_report — instrumentation {config}, host cpus = {host_cpus}");
    let degenerate = host_cpus == 1;
    if degenerate {
        println!("note: 1 host cpu — router, shards, and client serialize; scaling numbers are degenerate");
    }

    let schema = SkimmedSchema::scanning(domain, 7, 256, 42);
    let uf = zipf_updates(domain, 1.0, 11, N);
    let ug = zipf_updates(domain, 0.8, 12, N);

    // Ground truth for the correctness gate, computed in-process.
    let mut local_f = SkimmedSketch::new(schema.clone());
    let mut local_g = SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);
    let expected = estimate_join(&local_f, &local_g, &EstimatorConfig::default()).estimate;

    // --- single-node baseline --------------------------------------------
    let single = Server::bind("127.0.0.1:0", shard_config(schema.clone(), host_cpus))
        .expect("bind single node");
    let mut baseline = drive(single.local_addr(), &uf, &ug, expected);
    baseline.label = "single_node".into();
    println!(
        "single node: ingest {:.2} Melem/s, QUERY_JOIN p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs",
        baseline.ingest_melem_s, baseline.p50, baseline.p95, baseline.p99
    );
    single.shutdown().expect("single shutdown");

    // --- routed arms ------------------------------------------------------
    let mut arms: Vec<Arm> = vec![baseline];
    for shard_count in SHARD_COUNTS {
        let shards: Vec<Server> = (0..shard_count)
            .map(|_| {
                Server::bind("127.0.0.1:0", shard_config(schema.clone(), host_cpus))
                    .expect("bind shard")
            })
            .collect();
        let addrs = shards.iter().map(|s| s.local_addr().to_string()).collect();
        let mut router_config = RouterConfig::new(addrs);
        router_config.handler_threads = 2;
        let router = Router::bind("127.0.0.1:0", router_config).expect("bind router");

        let mut arm = drive(router.local_addr(), &uf, &ug, expected);
        arm.label = format!("routed_s{shard_count}");
        println!(
            "routed S={shard_count}: ingest {:.2} Melem/s, QUERY_JOIN p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs",
            arm.ingest_melem_s, arm.p50, arm.p95, arm.p99
        );
        arms.push(arm);

        router.shutdown().expect("router shutdown");
        for shard in shards {
            shard.shutdown().expect("shard shutdown");
        }
    }

    // --- record -----------------------------------------------------------
    let arm_rows: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                "    {{\"arm\": \"{}\", \"ingest_melem_s\": {:.3}, \"query_p50_us\": {:.1}, \
                 \"query_p95_us\": {:.1}, \"query_p99_us\": {:.1}}}",
                a.label, a.ingest_melem_s, a.p50, a.p95, a.p99
            )
        })
        .collect();
    let arms_json = arm_rows.join(",\n");

    if !stream_telemetry::ENABLED {
        let json = format!(
            "{{\n  \"bench\": \"cluster_off\",\n  \"elements\": {},\n  \"host_cpus\": {host_cpus},\n  \
             \"degenerate\": {degenerate},\n  \"bit_identical\": true,\n  \"arms\": [\n{arms_json}\n  ]\n}}\n",
            2 * N,
        );
        std::fs::write("BENCH_cluster_off.json", &json).expect("write BENCH_cluster_off.json");
        println!("\nwrote BENCH_cluster_off.json (disabled arm; rerun with default features to finish the A/B)");
        return;
    }

    // Pull the disabled arm's single-node ingest figure for the headline
    // instrumentation-overhead number, when that arm has been recorded.
    let off_single = std::fs::read_to_string("BENCH_cluster_off.json")
        .ok()
        .and_then(|s| {
            let tail = s.split("\"ingest_melem_s\": ").nth(1)?;
            tail.split([',', '}']).next()?.trim().parse::<f64>().ok()
        });
    let off_field = match off_single {
        Some(off) => {
            println!("\ndisabled-arm single-node ingest: {off:.2} Melem/s");
            format!("{off:.3}")
        }
        None => {
            println!("\nBENCH_cluster_off.json missing — run the --no-default-features arm first for the full A/B");
            "null".into()
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"elements\": {},\n  \"host_cpus\": {host_cpus},\n  \
         \"queries\": {QUERIES},\n  \"degenerate\": {degenerate},\n  \"bit_identical\": true,\n  \
         \"disabled_single_node_melem_s\": {off_field},\n  \"arms\": [\n{arms_json}\n  ]\n}}\n",
        2 * N,
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");
}
