//! Empirical validation of **Theorems 3 and 4**: CountSketch point
//! estimates are within `Δ ≈ √(F₂/b)` of the truth with high probability,
//! and after SKIMDENSE every residual frequency sits below the threshold
//! while skimmed estimates never (materially) overshoot the original
//! frequencies.
//!
//! Run: `cargo run -p ss-bench --release --bin thm34 [--paper]`

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::skim::skim_dense_scan;
use ss_bench::Scale;
use stream_model::gen::ZipfGenerator;
use stream_model::table::{fmt_f64, Table};
use stream_model::update::StreamSink;
use stream_model::{Domain, FrequencyVector};
use stream_sketches::{HashSketch, HashSketchSchema};

fn main() {
    let scale = Scale::from_args();
    let (log2, n) = match scale {
        Scale::Quick => (14u32, 200_000usize),
        Scale::Paper => (18, 4_000_000),
    };
    let domain = Domain::with_log2(log2);
    let tables = 7usize;
    let buckets = 512usize;

    let mut t = Table::new([
        "zipf_z",
        "delta=sqrt(F2/b)",
        "p95_point_err",
        "max_point_err",
        "threshold",
        "dense_extracted",
        "residual_max",
        "residual_over_T",
        "overshoot_max",
    ]);

    for &z in &[0.5f64, 1.0, 1.5] {
        let mut rng = StdRng::seed_from_u64(1234 + (z * 10.0) as u64);
        let updates = ZipfGenerator::new(domain, z, 0).generate(&mut rng, n);
        let fv = FrequencyVector::from_updates(domain, updates.iter().copied());
        let schema = HashSketchSchema::new(tables, buckets, 42 + (z * 100.0) as u64);
        let mut sk = HashSketch::new(schema);
        for &u in &updates {
            sk.update(u);
        }

        // Thm 3: point-estimate error distribution over the whole domain.
        let delta = ((fv.self_join() as f64) / buckets as f64).sqrt();
        let mut errs: Vec<i64> = (0..domain.size())
            .map(|v| (sk.point_estimate(v) - fv.get(v)).abs())
            .collect();
        errs.sort_unstable();
        let p95 = errs[(errs.len() as f64 * 0.95) as usize];
        let max = *errs.last().unwrap();

        // Thm 4: skim at T = 2Δ and examine residuals.
        let threshold = (2.0 * delta).ceil() as i64;
        let dense = skim_dense_scan(&mut sk, domain, threshold.max(1));
        let mut residual_max = 0i64;
        let mut over_t = 0usize;
        let mut overshoot_max = 0i64;
        for v in 0..domain.size() {
            let fhat = dense.get(v);
            let residual = (fv.get(v) - fhat).abs();
            residual_max = residual_max.max(residual);
            if residual >= threshold {
                over_t += 1;
            }
            // Overshoot: skimmed estimate exceeding the true frequency
            // (Thm 4(2) says f̂ ≤ f up to estimation error).
            overshoot_max = overshoot_max.max(fhat - fv.get(v));
        }

        t.push_row([
            format!("{z}"),
            fmt_f64(delta),
            p95.to_string(),
            max.to_string(),
            threshold.to_string(),
            dense.len().to_string(),
            residual_max.to_string(),
            over_t.to_string(),
            overshoot_max.to_string(),
        ]);
    }

    println!("Theorem 3/4 validation: hash sketch {tables}x{buckets}, domain 2^{log2}, n={n}\n");
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());
}
