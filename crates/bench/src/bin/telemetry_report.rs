//! End-to-end telemetry snapshot + overhead A/B record.
//!
//! Drives the whole instrumented pipeline — sharded [`IngestPool`]
//! ingestion of two skimmed sketches (with a mid-stream snapshot),
//! repeated ESTSKIMJOINSIZE estimates audited against exact ground truth —
//! then dumps the global telemetry registry in both render formats, so a
//! single run shows ingest throughput, queue depth, per-phase skim
//! timings, and the estimator's observed ratio-error quantiles.
//!
//! It also times the hottest instrumented kernel (hash-sketch
//! `add_batch`) and records the result for the overhead A/B. The
//! telemetry switch is a compile-time feature, so the A/B spans two build
//! configurations of this same binary:
//!
//! ```text
//! cargo run -p ss-bench --release --no-default-features --bin telemetry_report
//! cargo run -p ss-bench --release --bin telemetry_report
//! ```
//!
//! The first (disabled) run writes its throughput to
//! `BENCH_telemetry_off.json`; the second (enabled) run reads that file
//! back and writes `BENCH_telemetry.json` with both arms and the relative
//! overhead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{
    audit_ratio_error, estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch,
};
use std::time::Instant;
use stream_ingest::IngestPool;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, FrequencyVector, Update};
use stream_sketches::{HashSketch, HashSketchSchema};

const N: usize = 200_000;
const REPS: usize = 5;
const TRIALS: u64 = 8;

fn zipf_updates(domain: Domain, skew: f64, seed: u64, n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(domain, skew, seed);
    (0..n).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

/// One audited estimate: sketch both streams, estimate, stream the ratio
/// error into the global `estimator_ratio_error` histogram.
fn audited_trial(domain: Domain, seed: u64, n: usize) -> f64 {
    let uf = zipf_updates(domain, 1.0, seed * 2 + 1, n);
    let ug = zipf_updates(domain, 0.8, seed * 2 + 2, n);
    let actual = FrequencyVector::from_updates(domain, uf.iter().copied())
        .join(&FrequencyVector::from_updates(domain, ug.iter().copied())) as f64;
    let schema = SkimmedSchema::scanning(domain, 7, 256, seed);
    let mut f = SkimmedSketch::new(schema.clone());
    let mut g = SkimmedSketch::new(schema);
    f.add_batch(&uf);
    g.add_batch(&ug);
    let est = estimate_join(&f, &g, &EstimatorConfig::default());
    audit_ratio_error(est.estimate, actual)
}

fn main() {
    let domain = Domain::with_log2(14);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let config = if stream_telemetry::ENABLED {
        "enabled"
    } else {
        "disabled"
    };
    println!("telemetry_report — instrumentation {config}, host cpus = {host_cpus}");

    // --- pooled ingest of two skimmed sketches ---------------------------
    let uf = zipf_updates(domain, 1.0, 11, N);
    let ug = zipf_updates(domain, 0.8, 12, N);
    let schema = SkimmedSchema::scanning(domain, 7, 256, 42);
    let pool_f = IngestPool::new(2, || SkimmedSketch::new(schema.clone()));
    let pool_g = IngestPool::new(2, || SkimmedSketch::new(schema.clone()));
    let t = Instant::now();
    for chunk in uf.chunks(4096) {
        pool_f.dispatch(chunk.to_vec());
    }
    // Mid-stream consistent snapshot — exercises the snapshot span and the
    // queue-depth gauge while the pool is live.
    let _mid = pool_f.snapshot().expect("no worker panicked");
    assert!(pool_f.is_empty(), "snapshot barriers behind every dispatch");
    for chunk in ug.chunks(4096) {
        pool_g.dispatch(chunk.to_vec());
    }
    let f = pool_f.finish().expect("no worker panicked");
    let g = pool_g.finish().expect("no worker panicked");
    let ingest_melem_s = 2.0 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
    println!("pooled skimmed-sketch ingest: {ingest_melem_s:.2} Melem/s (2 workers/stream)");

    // --- audited estimates ----------------------------------------------
    let actual = FrequencyVector::from_updates(domain, uf.iter().copied())
        .join(&FrequencyVector::from_updates(domain, ug.iter().copied())) as f64;
    let est = estimate_join(&f, &g, &EstimatorConfig::default());
    let err = audit_ratio_error(est.estimate, actual);
    println!(
        "pooled join estimate: {:.0} vs exact {actual:.0} (ratio error {err:.4})",
        est.estimate
    );
    for seed in 1..TRIALS {
        let err = audited_trial(domain, seed, N / 4);
        println!("  audit trial {seed}: ratio error {err:.4}");
    }

    // --- timed hot path: the overhead A/B arm ----------------------------
    let hs_schema = HashSketchSchema::new(8, 1024, 2);
    let big = zipf_updates(Domain::with_log2(18), 1.0, 7, 2 * N);
    let mut sk = HashSketch::new(hs_schema.clone());
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        sk.add_batch(&big);
        best = best.min(t.elapsed().as_secs_f64());
    }
    let update_melem_s = big.len() as f64 / best / 1e6;
    println!("hash-sketch add_batch: {update_melem_s:.2} Melem/s (best of {REPS})");

    // --- flight-recorder overhead: traced vs untraced batches -------------
    // Same kernel, same chunking as the serving layer (one span per
    // UPDATE_BATCH-sized chunk); the only difference between the arms is
    // the `ss_trace` span around each chunk. Both arms run inside this
    // binary, so the comparison is immune to build-to-build noise. With
    // tracing compiled out the span is a ZST and both arms are the same
    // machine code.
    const TRACE_CHUNK: usize = 8_192;
    let mut plain_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    for _ in 0..REPS {
        let mut plain = HashSketch::new(hs_schema.clone());
        let t = Instant::now();
        for chunk in big.chunks(TRACE_CHUNK) {
            plain.add_batch(chunk);
        }
        plain_best = plain_best.min(t.elapsed().as_secs_f64());

        let mut traced = HashSketch::new(hs_schema.clone());
        let trace = ss_trace::new_trace_id();
        let t = Instant::now();
        for chunk in big.chunks(TRACE_CHUNK) {
            let span = ss_trace::span(ss_trace::Phase::Ingest, trace, 0, chunk.len() as u64);
            traced.add_batch(chunk);
            drop(span);
        }
        traced_best = traced_best.min(t.elapsed().as_secs_f64());
    }
    let plain_melem_s = big.len() as f64 / plain_best / 1e6;
    let traced_melem_s = big.len() as f64 / traced_best / 1e6;
    let tracing_overhead = (plain_melem_s - traced_melem_s) / plain_melem_s * 100.0;
    println!(
        "flight-recorder overhead: untraced {plain_melem_s:.2} vs traced {traced_melem_s:.2} \
         Melem/s ({tracing_overhead:.2}% for one span per {TRACE_CHUNK}-update batch)"
    );
    assert!(
        tracing_overhead < 2.0,
        "tracing must stay under the 2% budget, measured {tracing_overhead:.2}%"
    );

    // --- dump the registry ----------------------------------------------
    let registry = stream_telemetry::global();
    println!("\n--- snapshot (JSON lines) ---");
    print!("{}", registry.render_json_lines());
    println!("--- snapshot (Prometheus) ---");
    print!("{}", registry.render_prometheus());

    // --- record the A/B --------------------------------------------------
    if !stream_telemetry::ENABLED {
        let json = format!(
            "{{\n  \"bench\": \"telemetry_off\",\n  \"elements\": {},\n  \"reps\": {REPS},\n  \
             \"host_cpus\": {host_cpus},\n  \"update_melem_s\": {update_melem_s:.3},\n  \
             \"tracing_overhead_percent\": {tracing_overhead:.2}\n}}\n",
            big.len(),
        );
        std::fs::write("BENCH_telemetry_off.json", &json).expect("write BENCH_telemetry_off.json");
        println!("\nwrote BENCH_telemetry_off.json (disabled arm; rerun with default features to finish the A/B)");
        return;
    }
    let off_arm = std::fs::read_to_string("BENCH_telemetry_off.json")
        .ok()
        .and_then(|s| {
            let tail = s.split("\"update_melem_s\": ").nth(1)?;
            tail.split([',', '\n']).next()?.trim().parse::<f64>().ok()
        });
    let (off_field, overhead_field) = match off_arm {
        Some(off) => {
            let overhead = (off - update_melem_s) / off * 100.0;
            println!("\noverhead vs disabled arm ({off:.2} Melem/s): {overhead:.2}%");
            (format!("{off:.3}"), format!("{overhead:.2}"))
        }
        None => {
            println!("\nBENCH_telemetry_off.json missing — run the --no-default-features arm first for the full A/B");
            ("null".into(), "null".into())
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"elements\": {},\n  \"reps\": {REPS},\n  \
         \"host_cpus\": {host_cpus},\n  \"enabled_update_melem_s\": {update_melem_s:.3},\n  \
         \"disabled_update_melem_s\": {off_field},\n  \"overhead_percent\": {overhead_field},\n  \
         \"untraced_update_melem_s\": {plain_melem_s:.3},\n  \
         \"traced_update_melem_s\": {traced_melem_s:.3},\n  \
         \"tracing_overhead_percent\": {tracing_overhead:.2},\n  \
         \"pooled_ingest_melem_s\": {ingest_melem_s:.3},\n  \"audit_trials\": {TRIALS}\n}}\n",
        big.len(),
    );
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    println!("wrote BENCH_telemetry.json");
}
