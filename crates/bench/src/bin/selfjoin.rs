//! Self-join (second moment, F₂) estimation — the §2.2 primitive.
//!
//! The paper builds on ESTSJSIZE (AMS second-moment estimation) and its
//! skimmed counterpart is the `estimate_self_join` variant of the core
//! crate. This harness compares the two across skews at equal space; the
//! self-join is where basic AGMS is *strongest* (the estimator is the
//! square of the same projection, so the relative deviation is bounded by
//! √(2/s2) regardless of skew), so the reproduction target here is
//! different from the binary join: skimming should match basic, not crush
//! it — confirming the paper's framing that the binary join with *shifted*
//! heads is where skimming pays.
//!
//! Run: `cargo run -p ss-bench --release --bin selfjoin [--paper]`

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{estimate_self_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_bench::Scale;
use stream_model::gen::ZipfGenerator;
use stream_model::metrics::{ratio_error, Summary};
use stream_model::table::{fmt_f64, Table};
use stream_model::{Domain, FrequencyVector};
use stream_sketches::{AgmsSchema, AgmsSketch};

fn main() {
    let scale = Scale::from_args();
    let (log2, n, reps) = match scale {
        Scale::Quick => (14u32, 200_000usize, 5usize),
        Scale::Paper => (18, 4_000_000, 5),
    };
    let domain = Domain::with_log2(log2);
    let (tables, buckets) = (7usize, 512usize);

    let mut t = Table::new(["zipf_z", "F2", "basic_mean_err", "skim_mean_err"]);

    for &z in &[0.5f64, 1.0, 1.5, 2.0] {
        let mut rng = StdRng::seed_from_u64(0x5E1F + (z * 10.0) as u64);
        let updates = ZipfGenerator::new(domain, z, 0).generate(&mut rng, n);
        let fv = FrequencyVector::from_updates(domain, updates.iter().copied());
        let actual = fv.self_join() as f64;

        let mut basic_errs = Vec::with_capacity(reps);
        let mut skim_errs = Vec::with_capacity(reps);
        for rep in 0..reps as u64 {
            let schema = AgmsSchema::new(tables, buckets, 0xB0B + rep);
            let bsk = AgmsSketch::from_frequencies(schema, fv.nonzero());
            basic_errs.push(ratio_error(bsk.estimate_self_join(), actual));

            let sschema = SkimmedSchema::scanning(domain, tables, buckets, 0xB0B + rep);
            let ssk = SkimmedSketch::from_frequencies(sschema, fv.nonzero());
            skim_errs.push(ratio_error(
                estimate_self_join(&ssk, &EstimatorConfig::default()),
                actual,
            ));
        }
        t.push_row([
            format!("{z}"),
            format!("{actual:.3e}"),
            fmt_f64(Summary::of(&basic_errs).mean),
            fmt_f64(Summary::of(&skim_errs).mean),
        ]);
    }

    println!(
        "Self-join (F2) estimation: basic ESTSJSIZE vs skimmed, {tables}x{buckets}, domain 2^{log2}, n={n}\n"
    );
    println!("{}", t.to_aligned());
    println!("--- CSV ---\n{}", t.to_csv());
}
