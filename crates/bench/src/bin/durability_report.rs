//! Durability cost + recovery speed record (`BENCH_durability.json`).
//!
//! Answers the two questions the WAL raises:
//!
//! 1. **What does durability cost at ingest time?** The same sequenced
//!    wire workload is streamed three times — WAL off, WAL on, and WAL
//!    on with per-append fsync — and the sustained throughputs are
//!    compared. The WAL path serializes acknowledged batches through
//!    one appender lock, so this is the honest end-to-end price, not a
//!    microbenchmark of the file write.
//! 2. **How fast does recovery replay?** The WAL-on server is halted
//!    (crash semantics: no drain, no final snapshot) and re-bound over
//!    its log directory; the bind time is the full recovery — scan,
//!    torn-tail check, decode, and replay into fresh ingest pools —
//!    reported normalized per million logged updates.
//!
//! A correctness gate runs alongside the timings: the recovered
//! server's join answer must equal the pre-crash answer exactly.
//!
//! ```text
//! cargo run -p ss-bench --release --bin durability_report
//! ```

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use skimmed_sketch::{SkimmedSchema, SkimmedSketch};
use std::path::PathBuf;
use std::time::Instant;
use stream_durability::WalConfig;
use stream_model::gen::ZipfGenerator;
use stream_model::{Domain, Update};
use stream_server::{ClientConfig, Server, ServerClient, ServerConfig};
use stream_wire::StreamId;

const N: usize = 300_000;
const CHUNK: usize = 8_192;

fn zipf_updates(domain: Domain, skew: f64, seed: u64, n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(domain, skew, seed);
    (0..n).map(|_| Update::insert(z.sample(&mut rng))).collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn server_config(schema: std::sync::Arc<SkimmedSchema>, host_cpus: usize) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2.min(host_cpus);
    config
}

/// Streams the workload through `server` as a sequenced producer and
/// returns the sustained throughput in Melem/s.
fn stream_workload(server: &Server, uf: &[Update], ug: &[Update]) -> f64 {
    let config = ClientConfig {
        client_id: 9,
        ..ClientConfig::default()
    };
    let mut client = ServerClient::connect_with(server.local_addr(), config).expect("connect");
    let t = Instant::now();
    client.send_all(StreamId::F, uf, CHUNK).expect("send F");
    client.send_all(StreamId::G, ug, CHUNK).expect("send G");
    let melem_s = (uf.len() + ug.len()) as f64 / t.elapsed().as_secs_f64() / 1e6;
    client.goodbye().expect("goodbye");
    melem_s
}

fn main() {
    let domain = Domain::with_log2(14);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("durability_report — host cpus = {host_cpus}");

    let schema = SkimmedSchema::scanning(domain, 7, 256, 42);
    let uf = zipf_updates(domain, 1.0, 11, N);
    let ug = zipf_updates(domain, 0.8, 12, N);

    // --- arm 1: WAL off (the in-memory baseline) -------------------------
    let server = Server::bind("127.0.0.1:0", server_config(schema.clone(), host_cpus))
        .expect("bind off-arm");
    let off_melem_s = stream_workload(&server, &uf, &ug);
    server.shutdown().expect("clean shutdown");
    println!("wire ingest, WAL off       : {off_melem_s:.2} Melem/s");

    // --- arm 2: WAL on, buffered appends ---------------------------------
    let dir = scratch_dir("wal");
    let mut config = server_config(schema.clone(), host_cpus);
    config.wal = Some(WalConfig::new(&dir));
    let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind wal-arm");
    let wal_melem_s = stream_workload(&server, &uf, &ug);
    let mut client = ServerClient::connect(server.local_addr()).expect("connect");
    let before_crash = client.query_join().expect("query_join").estimate;
    client.goodbye().expect("goodbye");
    let wal_overhead = (off_melem_s - wal_melem_s) / off_melem_s * 100.0;
    println!("wire ingest, WAL on        : {wal_melem_s:.2} Melem/s ({wal_overhead:.1}% overhead)");

    // --- recovery replay: crash, re-bind, time the rebuild ---------------
    server.halt();
    let t = Instant::now();
    let server = Server::bind("127.0.0.1:0", config).expect("bind recovery");
    let recovery_s = t.elapsed().as_secs_f64();
    let report = *server.recovery().expect("recovery ran");
    let replay_s_per_million = recovery_s * 1e6 / report.updates_replayed.max(1) as f64;
    println!(
        "recovery replay            : {} batches / {} updates in {:.3}s ({replay_s_per_million:.3}s per 1M updates)",
        report.batches_replayed, report.updates_replayed, recovery_s
    );
    let mut client = ServerClient::connect(server.local_addr()).expect("connect");
    let after_crash = client.query_join().expect("query_join").estimate;
    assert_eq!(
        after_crash, before_crash,
        "recovered answer must equal the pre-crash answer bit-for-bit"
    );
    println!("correctness gate           : pre/post-crash answers identical ({after_crash:.0})");
    client.goodbye().expect("goodbye");
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    // --- arm 3: WAL on + fsync every append ------------------------------
    // A smaller slice: per-append fsync is orders of magnitude slower and
    // the per-batch cost is flat, so 1/8 of the stream measures it fine.
    let dir = scratch_dir("fsync");
    let mut config = server_config(schema.clone(), host_cpus);
    let mut wal = WalConfig::new(&dir);
    wal.fsync = true;
    config.wal = Some(wal);
    let server = Server::bind("127.0.0.1:0", config).expect("bind fsync-arm");
    let fsync_melem_s = stream_workload(&server, &uf[..N / 8], &ug[..N / 8]);
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    println!("wire ingest, WAL on + fsync: {fsync_melem_s:.2} Melem/s");

    // --- in-process baseline for scale -----------------------------------
    let mut local = SkimmedSketch::new(schema);
    let t = Instant::now();
    local.add_batch(&uf);
    local.add_batch(&ug);
    let local_melem_s = 2.0 * N as f64 / t.elapsed().as_secs_f64() / 1e6;
    println!("in-process add_batch       : {local_melem_s:.2} Melem/s (no wire, no WAL)");

    let json = format!(
        "{{\n  \"bench\": \"durability\",\n  \"elements\": {},\n  \"host_cpus\": {host_cpus},\n  \
         \"wal_off_melem_s\": {off_melem_s:.3},\n  \"wal_on_melem_s\": {wal_melem_s:.3},\n  \
         \"wal_overhead_percent\": {wal_overhead:.2},\n  \"wal_fsync_melem_s\": {fsync_melem_s:.3},\n  \
         \"recovery_batches\": {},\n  \"recovery_updates\": {},\n  \
         \"recovery_seconds\": {recovery_s:.4},\n  \
         \"recovery_seconds_per_million\": {replay_s_per_million:.4},\n  \
         \"inprocess_melem_s\": {local_melem_s:.3}\n}}\n",
        2 * N,
        report.batches_replayed,
        report.updates_replayed,
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("wrote BENCH_durability.json");
}
