//! # ss-bench
//!
//! The experiment harness of the reproduction: workload construction, the
//! space-sweep grid of §5.1, and the rendering shared by the per-figure
//! binaries (`fig5a`, `fig5b`, `census`, `example1`, `thm34`,
//! `ablation_threshold`, `anatomy`). Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod grid;
pub mod scale;

pub use grid::{compare_at_space, skimmed_estimate, sweep_spaces, JoinWorkload, SpaceComparison};
pub use scale::Scale;
