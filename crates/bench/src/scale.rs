//! Experiment scale selection.
//!
//! The paper's synthetic setup (§5.1) streams 4M elements over a 2^18
//! domain and averages each space point over five `(s1, s2)` pairs. The
//! basic-AGMS baseline's bulk construction costs
//! `distinct-values × s1·s2` sign evaluations, so the full grid takes a
//! while on one core. Every harness binary therefore accepts `--paper` for
//! the verbatim parameters and defaults to a *quick* scale (2^16 domain,
//! 512K elements, three pairs, fewer repetitions) that preserves the
//! qualitative shape of every figure.

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters; minutes, same qualitative shape.
    Quick,
    /// The paper's §5.1 parameters; substantially slower.
    Paper,
}

impl Scale {
    /// Parses the scale from process arguments (`--paper` selects
    /// [`Scale::Paper`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// log2 of the synthetic-experiment domain size (paper: 2^18 = 256K).
    pub fn domain_log2(self) -> u32 {
        match self {
            Scale::Quick => 16,
            Scale::Paper => 18,
        }
    }

    /// Elements drawn per stream (paper: 4M).
    pub fn stream_len(self) -> usize {
        match self {
            Scale::Quick => 512_000,
            Scale::Paper => 4_000_000,
        }
    }

    /// Space points in words swept by the figures.
    pub fn space_points(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![512, 1024, 2048, 4096, 8192],
            Scale::Paper => vec![1024, 2048, 4096, 8192, 16384],
        }
    }

    /// The `s1` values averaged per space point (paper: 11..59 step 12).
    pub fn s1_values(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![11, 35, 59],
            Scale::Paper => vec![11, 23, 35, 47, 59],
        }
    }

    /// Independent repetitions per configuration (paper: 5–10).
    pub fn reps(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Paper => 5,
        }
    }

    /// Records for the census-like experiment (paper: the CPS September
    /// 2002 extract of 159,434 records).
    pub fn census_records(self) -> usize {
        match self {
            Scale::Quick => 159_434,
            Scale::Paper => 159_434,
        }
    }

    /// Human-readable banner for harness output.
    pub fn banner(self) -> String {
        match self {
            Scale::Quick => format!(
                "scale=quick (domain 2^{}, {} elements/stream, {} reps; pass --paper for the verbatim EDBT'04 parameters)",
                self.domain_log2(),
                self.stream_len(),
                self.reps()
            ),
            Scale::Paper => format!(
                "scale=paper (domain 2^{}, {} elements/stream, {} reps)",
                self.domain_log2(),
                self.stream_len(),
                self.reps()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_paper() {
        assert!(Scale::Quick.stream_len() < Scale::Paper.stream_len());
        assert!(Scale::Quick.domain_log2() < Scale::Paper.domain_log2());
        assert!(Scale::Quick.s1_values().len() <= Scale::Paper.s1_values().len());
    }

    #[test]
    fn banners_mention_scale() {
        assert!(Scale::Quick.banner().contains("quick"));
        assert!(Scale::Paper.banner().contains("paper"));
    }
}
