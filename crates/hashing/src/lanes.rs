//! Lane-friendly limb arithmetic over `Z_p`, `p = 2^61 − 1`, for the
//! blocked batch kernels.
//!
//! The scalar field routines in [`crate::prime`] widen to `u128` and rely
//! on the `mulx`-style 64×64→128 multiply. That is the right shape for one
//! element at a time, but it pins the whole evaluation to the scalar
//! multiplier: LLVM will not autovectorize a loop of `u128` products.
//!
//! This module re-expresses the same field operations over **32-bit
//! limbs** so that every multiply in the hot loops is a 32×32→64 product —
//! exactly the shape of `vpmuludq`, which exists at every x86 vector width
//! (2 lanes under SSE2, 4 under AVX2, 8 under AVX-512) and costs a single
//! µop. A canonical field element `x < 2^61` is split as
//!
//! ```text
//! x = x0 + x1·2^31,   x0 < 2^31,  x1 < 2^30
//! ```
//!
//! and a product `a·x` of two split canonical elements is rebuilt from the
//! four partial products using `2^62 ≡ 2` and `2^61 ≡ 1 (mod p)`:
//!
//! ```text
//! a·x = a0·x0 + (a0·x1 + a1·x0)·2^31 + a1·x1·2^62
//!     ≡ a0·x0 + 2·(a1·x1) + m0·2^31 + m1          (mod p)
//!       where m = a0·x1 + a1·x0,  m0 = m mod 2^30,  m1 = ⌊m / 2^30⌋
//! ```
//!
//! (the `m` recombination uses `m·2^31 = m0·2^31 + m1·2^61 ≡ m0·2^31 + m1`).
//! Every intermediate stays in `u64`:
//!
//! * `a0·x0 < 2^62`, `2·(a1·x1) < 2^61`, `m < 2^62` (no overflow in the
//!   cross-term sum), `m0·2^31 < 2^61`, `m1 < 2^32`;
//! * the lazy sum returned by [`mul_limbs`] is `< 2^63 + 2^32`.
//!
//! Lazy sums are folded back below `2^61` with [`fold61`] (one shift, one
//! mask, one add — the result is `≡ (mod p)` but may still be ≥ `p`) and
//! canonicalized with [`canon61`] (fold plus one conditional subtract).
//! Because the scalar path also ends in a single canonicalization, kernels
//! built from these primitives produce **bit-identical** field values, and
//! therefore bit-identical sketch counters.
//!
//! The limb kernels only pay off when the target actually has ≥4-lane
//! 64-bit vectors: under bare SSE2 the extra split/recombine ALU work
//! cancels the multiplier win. [`VECTOR_KERNEL`] captures that decision at
//! compile time; the batch entry points in `stream-sketches` consult it to
//! pick between this path and the lazy-`u128` path. The workspace's
//! `.cargo/config.toml` compiles with `-C target-cpu=native`, so any
//! 2013-or-later x86-64 host (and every CI runner) takes the lane path.

use crate::prime::MERSENNE_P;

/// True when the compile target's vector ISA makes the 32-bit limb kernels
/// profitable. AVX2 is the threshold measured on real hardware: 4-lane
/// `vpmuludq` roughly doubles the blocked hash-sketch kernel, while under
/// bare SSE2 the limb path is marginally *slower* than the lazy-`u128`
/// path, so baseline builds keep the scalar-multiplier kernels.
pub const VECTOR_KERNEL: bool = cfg!(target_feature = "avx2");

/// Mask of the low limb: 31 bits.
pub const LIMB0_MASK: u64 = (1u64 << 31) - 1;

/// Mask of the high limb: 30 bits.
pub const LIMB1_MASK: u64 = (1u64 << 30) - 1;

/// Splits a canonical field element (`x < 2^61`) into `(x mod 2^31,
/// ⌊x / 2^31⌋)`.
#[inline(always)]
pub fn split61(x: u64) -> (u64, u64) {
    (x & LIMB0_MASK, x >> 31)
}

/// Lazy product of two split canonical field elements: returns
/// `S ≡ a·x (mod p)` with `S < 2^63 + 2^32`.
///
/// Operands are re-masked on entry. The masks are no-ops for genuinely
/// split inputs, but they let the compiler *prove* every operand fits in
/// 32 bits, which is what turns the four multiplies into `vpmuludq`
/// instead of the 3-µop 64-bit `vpmullq` inside autovectorized loops.
#[inline(always)]
pub fn mul_limbs(a0: u64, a1: u64, x0: u64, x1: u64) -> u64 {
    let (a0, a1, x0, x1) = (
        a0 & LIMB0_MASK,
        a1 & LIMB1_MASK,
        x0 & LIMB0_MASK,
        x1 & LIMB1_MASK,
    );
    let p00 = a0 * x0;
    let p11 = a1 * x1;
    let m = a0 * x1 + a1 * x0;
    p00 + (p11 << 1) + ((m & LIMB1_MASK) << 31) + (m >> 30)
}

/// Folds a lazy sum (`< 2^64`) once: the result is `≡ s (mod p)` and
/// `< 2^61 + 8`, small enough to add three more folded terms without
/// overflow, but **not** necessarily canonical.
#[inline(always)]
pub fn fold61(s: u64) -> u64 {
    (s & MERSENNE_P) + (s >> 61)
}

/// Canonicalizes a lazy sum (`< 2^64`) into `[0, p)`.
#[inline(always)]
pub fn canon61(s: u64) -> u64 {
    let r = fold61(s);
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

/// Limbs of a canonical key and its square and cube: the shared per-key
/// precomputation of the blocked sketch kernels, `[x0, x1, x²0, x²1, x³0,
/// x³1]`.
///
/// One pairwise bucket hash and one degree-3 sign polynomial per table all
/// consume the same powers, so the batch kernels compute these six limbs
/// once per key per chunk and reuse them across every table.
#[inline(always)]
pub fn power_limbs(x: u64) -> [u64; 6] {
    debug_assert!(x < MERSENNE_P);
    let (x0, x1) = split61(x);
    let sq = canon61(mul_limbs(x0, x1, x0, x1));
    let (s0, s1) = split61(sq);
    let cu = canon61(mul_limbs(s0, s1, x0, x1));
    let (c0, c1) = split61(cu);
    [x0, x1, s0, s1, c0, c1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::{mul_mod, reduce};
    use crate::seed::SplitMix64;

    #[test]
    fn split_round_trips() {
        for x in [0u64, 1, LIMB0_MASK, MERSENNE_P - 1, 1 << 60] {
            let (lo, hi) = split61(x);
            assert!(lo < (1 << 31) && hi < (1 << 30));
            assert_eq!(lo + (hi << 31), x);
        }
    }

    #[test]
    fn mul_limbs_matches_mul_mod() {
        let mut g = SplitMix64::new(0xC0FFEE);
        for _ in 0..20_000 {
            let a = reduce(g.next_u64());
            let x = reduce(g.next_u64());
            let (a0, a1) = split61(a);
            let (x0, x1) = split61(x);
            let lazy = mul_limbs(a0, a1, x0, x1);
            assert_eq!(canon61(lazy), mul_mod(a, x), "a={a} x={x}");
        }
    }

    #[test]
    fn mul_limbs_extremes() {
        let edge = [0u64, 1, 2, LIMB0_MASK, LIMB0_MASK + 1, MERSENNE_P - 1];
        for &a in &edge {
            for &x in &edge {
                let (a0, a1) = split61(a);
                let (x0, x1) = split61(x);
                assert_eq!(canon61(mul_limbs(a0, a1, x0, x1)), mul_mod(a, x));
            }
        }
    }

    #[test]
    fn lazy_product_stays_below_folding_headroom() {
        // The kernels add a canonical constant (< 2^61) to one lazy product
        // (< 2^63 + 2^32) — assert the documented bound with the most
        // extreme representable limbs.
        let m = mul_limbs(LIMB0_MASK, LIMB1_MASK, LIMB0_MASK, LIMB1_MASK);
        assert!(m < (1u64 << 63) + (1u64 << 32));
        // Adding p - 1 on top must not wrap u64.
        assert!(m.checked_add(MERSENNE_P - 1).is_some());
    }

    #[test]
    fn fold_then_canon_equals_modulus() {
        let mut g = SplitMix64::new(7);
        for _ in 0..20_000 {
            let s = g.next_u64();
            let folded = fold61(s);
            assert!(folded < (1u64 << 61) + 8);
            assert_eq!(
                u128::from(folded) % u128::from(MERSENNE_P),
                u128::from(s) % u128::from(MERSENNE_P)
            );
            assert_eq!(
                u128::from(canon61(s)),
                u128::from(s) % u128::from(MERSENNE_P)
            );
        }
    }

    #[test]
    fn four_folded_terms_cannot_overflow() {
        // The sign kernel sums one canonical coefficient and three folded
        // products; the documented bound keeps that in u64.
        let worst_fold = (1u64 << 61) + 7;
        let sum = (MERSENNE_P - 1)
            .checked_add(worst_fold)
            .and_then(|s| s.checked_add(worst_fold))
            .and_then(|s| s.checked_add(worst_fold));
        assert!(sum.is_some());
    }

    #[test]
    fn power_limbs_are_split_powers() {
        let mut g = SplitMix64::new(99);
        for _ in 0..5_000 {
            let x = reduce(g.next_u64());
            let [x0, x1, s0, s1, c0, c1] = power_limbs(x);
            assert_eq!(x0 + (x1 << 31), x);
            assert_eq!(s0 + (s1 << 31), mul_mod(x, x));
            assert_eq!(c0 + (c1 << 31), mul_mod(mul_mod(x, x), x));
        }
    }
}
