//! BCH-based four-wise independent ±1 signs.
//!
//! The classical AMS construction \[3\]: the sign of key `x` is the parity of
//! `⟨s, (1, x, x³)⟩` over GF(2), where `x³` is the field cube in GF(2^64)
//! and `s` is a random 129-bit seed. Because any four distinct extension
//! vectors `(1, x, x³)` are linearly independent (the dual of a BCH code
//! with designed distance 5), the resulting signs are exactly four-wise
//! independent.
//!
//! The operational win over the degree-3 polynomial family
//! ([`crate::family::SignFamily`]): the expensive part — the field cube —
//! depends only on the *key*, so it is computed once per stream element as
//! a [`BchKey`] and shared across all `s1·s2` families of a basic AGMS
//! synopsis. Each family evaluation is then two ANDs, two popcounts and a
//! xor. The `update` micro-bench quantifies the speedup.

use crate::gf2::gf_cube;
use crate::seed::SeedSequence;

/// The precomputed per-key extension `(x, x³)` shared by all BCH families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BchKey {
    x: u64,
    x3: u64,
}

impl BchKey {
    /// Computes the extension of `x` (one field cube).
    #[inline]
    pub fn new(x: u64) -> Self {
        Self { x, x3: gf_cube(x) }
    }

    /// The raw key.
    pub fn value(&self) -> u64 {
        self.x
    }
}

/// A four-wise independent ±1 family evaluated against [`BchKey`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BchSignFamily {
    s1: u64,
    s3: u64,
    s0: bool,
}

impl BchSignFamily {
    /// Draws a family from `seeds`.
    pub fn from_seed(seeds: SeedSequence) -> Self {
        let mut g = seeds.rng();
        Self {
            s1: g.next_u64(),
            s3: g.next_u64(),
            s0: g.next_u64() & 1 == 1,
        }
    }

    /// Sign of a precomputed key: two ANDs, two popcounts, a parity.
    #[inline]
    pub fn sign_key(&self, key: BchKey) -> i64 {
        let parity =
            ((self.s1 & key.x).count_ones() + (self.s3 & key.x3).count_ones() + self.s0 as u32) & 1;
        1 - 2 * (parity as i64)
    }

    /// Convenience: sign of a raw key (computes the cube inline).
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        self.sign_key(BchKey::new(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_minus_one_and_deterministic() {
        let f = BchSignFamily::from_seed(SeedSequence::new(1));
        let g = BchSignFamily::from_seed(SeedSequence::new(1));
        let mut saw = [false; 2];
        for x in 0..1000u64 {
            let s = f.sign(x);
            assert!(s == 1 || s == -1);
            assert_eq!(s, g.sign(x));
            assert_eq!(s, f.sign_key(BchKey::new(x)));
            saw[(s == 1) as usize] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn families_differ_across_seeds() {
        let f = BchSignFamily::from_seed(SeedSequence::new(2));
        let g = BchSignFamily::from_seed(SeedSequence::new(3));
        let agree = (0..4096u64).filter(|&x| f.sign(x) == g.sign(x)).count();
        assert!((1500..2600).contains(&agree), "agree={agree}");
    }

    #[test]
    fn empirical_bias_is_small() {
        let f = BchSignFamily::from_seed(SeedSequence::new(4));
        let sum: i64 = (0..100_000u64).map(|x| f.sign(x)).sum();
        let bias = sum as f64 / 100_000.0;
        assert!(bias.abs() < 0.02, "bias={bias}");
    }

    #[test]
    fn fourth_moment_matches_fourwise_prediction() {
        // Same test as for the polynomial family: for Z = Σ_{v<m} ξ(v),
        // four-wise independence forces E[Z²] = m and E[Z⁴] = 3m(m−1) + m.
        let m = 64u64;
        let trials = 3000u64;
        let (mut sum2, mut sum4) = (0f64, 0f64);
        for t in 0..trials {
            let f = BchSignFamily::from_seed(SeedSequence::new(999).fork(t));
            let z: i64 = (0..m).map(|v| f.sign(v)).sum();
            let z2 = (z * z) as f64;
            sum2 += z2;
            sum4 += z2 * z2;
        }
        let e2 = sum2 / trials as f64;
        let e4 = sum4 / trials as f64;
        let want2 = m as f64;
        let want4 = 3.0 * (m * (m - 1)) as f64 + m as f64;
        assert!((e2 - want2).abs() / want2 < 0.15, "E[Z^2]={e2}");
        assert!((e4 - want4).abs() / want4 < 0.30, "E[Z^4]={e4}");
    }

    #[test]
    fn pairwise_sign_products_are_unbiased_across_draws() {
        let (x, y) = (12345u64, 987654321u64);
        let trials = 4000u64;
        let sum: i64 = (0..trials)
            .map(|t| {
                let f = BchSignFamily::from_seed(SeedSequence::new(5).fork(t));
                f.sign(x) * f.sign(y)
            })
            .sum();
        let corr = sum as f64 / trials as f64;
        assert!(corr.abs() < 0.06, "corr={corr}");
    }
}
