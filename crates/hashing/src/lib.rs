//! # stream-hash
//!
//! Hashing substrate for AMS-style stream sketching: exact modular
//! arithmetic over the Mersenne prime `2^61 − 1`, deterministic seed
//! expansion, and the two k-wise independent families every sketch in this
//! workspace is built from —
//!
//! * [`PairwiseHash`]: degree-1 polynomial bucket hashes (`h_i` in the
//!   paper's hash sketch),
//! * [`SignFamily`]: four-wise independent ±1 "tug-of-war" signs (`ξ_i`),
//!
//! plus [`TabulationHash`] as a 3-independent alternative bucket function.
//!
//! The independence degrees are not an implementation detail: pairwise
//! independence of `h_i` and four-wise independence of `ξ_i` are exactly
//! the hypotheses of the skimmed-sketch error theorems (Thms 2–5 of
//! Ganguly, Garofalakis & Rastogi, EDBT 2004).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bch;
pub mod family;
pub mod gf2;
pub mod kwise;
pub mod lanes;
pub mod prime;
pub mod seed;
pub mod tabulation;

pub use bch::{BchKey, BchSignFamily};
pub use family::{FourWiseHash, Independence, PairwiseHash, SignFamily};
pub use kwise::KWiseHash;
pub use prime::MERSENNE_P;
pub use seed::{SeedSequence, SplitMix64};
pub use tabulation::TabulationHash;
