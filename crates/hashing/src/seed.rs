//! Deterministic seed expansion.
//!
//! Every hash family in the system is derived from a single `u64` seed via
//! the SplitMix64 generator. This matters for correctness, not just
//! reproducibility: the skimmed-sketch algorithm requires the sketches for
//! the two joined streams to use *identical* hash and sign families, so
//! both are constructed from the same `SeedSequence`.

/// SplitMix64: a tiny, high-quality, splittable PRNG used only for seed
/// expansion (never for workload generation — that uses `rand`).
///
/// The constants are from Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a canonical element of `Z_p` (rejection-sampled so the
    /// distribution over the field is exactly uniform).
    #[inline]
    pub fn next_field_element(&mut self) -> u64 {
        loop {
            // Take 61 bits; reject the single value p (and 2^61-1 == p, so
            // rejecting x >= p only ever rejects one point in 2^61).
            let x = self.next_u64() >> 3;
            if x < crate::prime::MERSENNE_P {
                return x;
            }
        }
    }

    /// Returns a *nonzero* canonical element of `Z_p`.
    #[inline]
    pub fn next_nonzero_field_element(&mut self) -> u64 {
        loop {
            let x = self.next_field_element();
            if x != 0 {
                return x;
            }
        }
    }
}

/// A named, forkable stream of seeds.
///
/// `fork(label)` derives an independent child sequence from the parent seed
/// and a label, so that e.g. "table 3's bucket hash" and "table 3's sign
/// family" never share randomness, while two parties that agree on the root
/// seed derive identical families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence from a root seed.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed this sequence was built from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives a child seed for `label` (stable across runs and platforms).
    pub fn derive(&self, label: u64) -> u64 {
        // Feed root and label through two SplitMix64 steps; this is the
        // standard "split" construction and passes the avalanche tests below.
        let mut g = SplitMix64::new(self.root ^ label.wrapping_mul(0xA24B_AED4_963E_E407));
        g.next_u64();
        g.next_u64()
    }

    /// Derives a child sequence for `label`.
    pub fn fork(&self, label: u64) -> SeedSequence {
        SeedSequence::new(self.derive(label))
    }

    /// Materializes a generator for direct draws.
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(self.derive(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::MERSENNE_P;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn field_elements_are_canonical() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(g.next_field_element() < MERSENNE_P);
        }
    }

    #[test]
    fn nonzero_field_elements_are_nonzero() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert_ne!(g.next_nonzero_field_element(), 0);
        }
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let s = SeedSequence::new(0xDEAD_BEEF);
        assert_eq!(s.derive(0), s.derive(0));
        assert_ne!(s.derive(0), s.derive(1));
        assert_ne!(s.derive(1), s.derive(2));
    }

    #[test]
    fn forks_are_independent_streams() {
        let s = SeedSequence::new(5);
        let mut a = s.fork(0).rng();
        let mut b = s.fork(1).rng();
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn splitmix_bit_balance_is_plausible() {
        // Crude avalanche sanity check: over 4096 outputs each bit position
        // should be set roughly half the time.
        let mut g = SplitMix64::new(0xABCD);
        let mut counts = [0u32; 64];
        let n = 4096;
        for _ in 0..n {
            let x = g.next_u64();
            for (bit, slot) in counts.iter_mut().enumerate() {
                *slot += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (0.45..=0.55).contains(&frac),
                "bit {bit} set fraction {frac}"
            );
        }
    }
}
