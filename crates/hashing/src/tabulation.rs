//! Simple tabulation hashing.
//!
//! An alternative bucket hash: split the key into 8 bytes and XOR together
//! one lookup per byte from tables of random 64-bit words. Simple tabulation
//! is 3-independent and behaves like a fully random function for many
//! load-balancing purposes (Pǎtrașcu & Thorup, "The Power of Simple
//! Tabulation Hashing"). It trades the multiplies of the polynomial schemes
//! for L1-resident table lookups; the `update` micro-bench compares the two
//! as the hash-sketch bucket function.

use crate::seed::SeedSequence;

const CHUNKS: usize = 8;
const TABLE: usize = 256;

/// A simple-tabulation hash over `u64` keys.
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE]; CHUNKS]>,
    range: u64,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHash")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

impl TabulationHash {
    /// Draws a tabulation hash onto `[0, range)` from `seeds`.
    pub fn from_seed(seeds: SeedSequence, range: usize) -> Self {
        assert!(range > 0, "hash range must be nonzero");
        let mut g = seeds.rng();
        let mut tables = Box::new([[0u64; TABLE]; CHUNKS]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = g.next_u64();
            }
        }
        Self {
            tables,
            range: range as u64,
        }
    }

    /// Number of buckets this hash maps onto.
    pub fn range(&self) -> usize {
        self.range as usize
    }

    /// Full 64-bit hash of `x`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            acc ^= table[((x >> (8 * i)) & 0xFF) as usize];
        }
        acc
    }

    /// Bucket in `[0, range)` for `x` (multiply-shift range reduction to
    /// avoid the modulo bias/latency of `%`).
    #[inline]
    pub fn bucket(&self, x: u64) -> usize {
        // Map the uniform 64-bit hash into [0, range) via the high bits of
        // a widening multiply — unbiased up to range/2^64.
        (((self.hash(x) as u128) * (self.range as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TabulationHash::from_seed(SeedSequence::new(1), 100);
        let b = TabulationHash::from_seed(SeedSequence::new(1), 100);
        for x in 0..1000u64 {
            assert_eq!(a.hash(x), b.hash(x));
            assert_eq!(a.bucket(x), b.bucket(x));
        }
    }

    #[test]
    fn buckets_in_range() {
        let h = TabulationHash::from_seed(SeedSequence::new(2), 7);
        for x in 0..10_000u64 {
            assert!(h.bucket(x) < 7);
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        let h = TabulationHash::from_seed(SeedSequence::new(3), 128);
        let mut counts = vec![0u32; 128];
        let n = 64 * 1024;
        for x in 0..n as u64 {
            counts[h.bucket(x)] += 1;
        }
        let expected = n as f64 / 128.0;
        let chi: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi < 2.0 * 127.0, "chi={chi}");
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = TabulationHash::from_seed(SeedSequence::new(10), 1 << 20);
        let b = TabulationHash::from_seed(SeedSequence::new(11), 1 << 20);
        let agree = (0..4096u64).filter(|&x| a.bucket(x) == b.bucket(x)).count();
        assert!(agree < 16, "agree={agree}");
    }

    #[test]
    fn high_bytes_affect_hash() {
        let h = TabulationHash::from_seed(SeedSequence::new(4), 1 << 30);
        // Keys differing only in byte 7 must (almost surely) hash apart.
        assert_ne!(h.hash(1), h.hash(1 | (1 << 56)));
    }
}
