//! Arithmetic in the binary field GF(2^64).
//!
//! Used by the BCH four-wise sign family: the extension vector of a key
//! `x` is `(1, x, x³)` with the cube taken *in the field*, which is what
//! gives any four distinct keys linearly independent extension vectors
//! (dual distance 5 of the BCH code) and hence four-wise independent signs.
//!
//! Representation: bits of a `u64` are the coefficients of a polynomial
//! over GF(2), reduced modulo `p(x) = x^64 + x^4 + x^3 + x + 1` (a standard
//! primitive pentanomial).

/// Carry-less multiplication of two 64-bit polynomials (no reduction).
#[inline]
pub fn clmul(a: u64, b: u64) -> u128 {
    // Portable shift-and-xor; four-way unrolled over the bits of `b`.
    let mut acc: u128 = 0;
    let a = a as u128;
    let mut b = b;
    let mut shift = 0u32;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a << shift;
        }
        b >>= 1;
        shift += 1;
    }
    acc
}

/// Reduces a 128-bit polynomial modulo `x^64 + x^4 + x^3 + x + 1`.
#[inline]
pub fn reduce(mut x: u128) -> u64 {
    // x^64 ≡ x^4 + x^3 + x + 1, so fold the high half down by xoring
    // hi·(x^4 + x^3 + x + 1). After the first fold the degree is ≤ 67,
    // so a second fold finishes.
    for _ in 0..2 {
        let hi = x >> 64;
        if hi == 0 {
            break;
        }
        x = (x & (u64::MAX as u128)) ^ hi ^ (hi << 1) ^ (hi << 3) ^ (hi << 4);
    }
    x as u64
}

/// Field multiplication in GF(2^64).
#[inline]
pub fn gf_mul(a: u64, b: u64) -> u64 {
    reduce(clmul(a, b))
}

/// Field squaring (carry-less square = bit interleaving, then reduce).
#[inline]
pub fn gf_square(a: u64) -> u64 {
    // Squaring over GF(2) spreads each bit i to position 2i.
    let lo = spread((a & 0xFFFF_FFFF) as u32);
    let hi = spread((a >> 32) as u32);
    reduce((hi as u128) << 64 | lo as u128)
}

/// Spreads the 32 bits of `x` into the even positions of a u64.
#[inline]
fn spread(x: u32) -> u64 {
    let mut v = x as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Field cube `a³ = a²·a`.
#[inline]
pub fn gf_cube(a: u64) -> u64 {
    gf_mul(gf_square(a), a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul_small_cases() {
        // (x+1)(x+1) = x^2+1 over GF(2).
        assert_eq!(clmul(0b11, 0b11), 0b101);
        assert_eq!(clmul(0, 123), 0);
        assert_eq!(clmul(1, 123), 123);
        // x^63 * x = x^64.
        assert_eq!(clmul(1 << 63, 2), 1u128 << 64);
    }

    #[test]
    fn reduce_identity_below_64() {
        for x in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(reduce(x as u128), x);
        }
    }

    #[test]
    fn reduce_x64() {
        // x^64 ≡ x^4 + x^3 + x + 1 = 0b11011.
        assert_eq!(reduce(1u128 << 64), 0b11011);
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        let xs = [3u64, 0x1234_5678_9ABC_DEF0, u64::MAX, 1 << 63];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                for &c in &xs {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn square_matches_self_multiplication() {
        for a in [0u64, 1, 7, 0xFFFF_0000_1111_2222, u64::MAX] {
            assert_eq!(gf_square(a), gf_mul(a, a), "a={a:#x}");
        }
    }

    #[test]
    fn cube_matches_repeated_multiplication() {
        for a in [0u64, 1, 5, 0xABCD_EF01_2345_6789] {
            assert_eq!(gf_cube(a), gf_mul(gf_mul(a, a), a));
        }
    }

    #[test]
    fn one_is_multiplicative_identity() {
        for a in [0u64, 9, u64::MAX] {
            assert_eq!(gf_mul(a, 1), a);
        }
    }

    #[test]
    fn mul_is_associative() {
        let xs = [5u64, 0x8000_0000_0000_0001, 0x1357_9BDF_0246_8ACE];
        for &a in &xs {
            for &b in &xs {
                for &c in &xs {
                    assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
                }
            }
        }
    }
}
