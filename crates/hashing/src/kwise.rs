//! Generic k-wise independent polynomial hashing.
//!
//! The concrete [`crate::PairwiseHash`] (k = 2) and the degree-3 family
//! behind [`crate::SignFamily`] (k = 4) cover everything the paper needs,
//! but several extensions want higher independence — e.g. tighter tail
//! bounds for the confidence intervals, or experiments on how much
//! independence the estimators *actually* require (four-wise is necessary
//! for the variance analysis; is it sufficient in practice?). A degree-
//! `(k−1)` polynomial over `Z_p` with uniform random coefficients is the
//! textbook k-wise independent family; this module provides it for any
//! `k ≥ 1`.

use crate::prime::poly_eval;
use crate::seed::SeedSequence;

/// A k-wise independent hash over `Z_p`, `p = 2^61 − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a function from the k-wise family (`k = independence ≥ 1`).
    pub fn from_seed(seeds: SeedSequence, independence: usize) -> Self {
        assert!(independence >= 1, "independence degree must be at least 1");
        let mut g = seeds.rng();
        let coeffs = (0..independence).map(|_| g.next_field_element()).collect();
        Self { coeffs }
    }

    /// The independence degree `k` (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the polynomial at `x`, returning a uniform field element.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        poly_eval(&self.coeffs, x)
    }

    /// A ±1 sign derived from the parity bit (k-wise independent signs,
    /// bias `1/p`).
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        1 - 2 * ((self.eval(x) & 1) as i64)
    }

    /// A bucket in `[0, range)`.
    #[inline]
    pub fn bucket(&self, x: u64, range: usize) -> usize {
        debug_assert!(range > 0);
        (self.eval(x) % range as u64) as usize
    }
}

/// Empirical joint-uniformity check used by the tests: draws `trials`
/// functions and measures `E[Π_{i<k} sign(x_i)]` over a fixed distinct
/// tuple — zero for a family that is at least `k`-wise independent.
pub fn joint_sign_moment(seed: u64, independence: usize, keys: &[u64], trials: u64) -> f64 {
    let mut sum = 0i64;
    for t in 0..trials {
        let h = KWiseHash::from_seed(SeedSequence::new(seed).fork(t), independence);
        sum += keys.iter().map(|&x| h.sign(x)).product::<i64>();
    }
    sum as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::MERSENNE_P;

    #[test]
    fn eval_stays_in_field() {
        let h = KWiseHash::from_seed(SeedSequence::new(1), 6);
        assert_eq!(h.independence(), 6);
        for x in 0..5000u64 {
            assert!(h.eval(x) < MERSENNE_P);
        }
    }

    #[test]
    fn degree_one_is_constant() {
        // k = 1: a constant function (0 coefficients beyond c0).
        let h = KWiseHash::from_seed(SeedSequence::new(2), 1);
        let v = h.eval(0);
        for x in 1..100u64 {
            assert_eq!(h.eval(x), v);
        }
    }

    #[test]
    fn joint_moments_vanish_up_to_k() {
        // For a 4-wise family, products over 2, 3 and 4 distinct keys are
        // unbiased; over 5 keys independence is not promised (though for
        // polynomial families the 5th moment happens to be small too — we
        // only assert the guaranteed ones).
        let keys = [3u64, 17, 99, 1234, 56789];
        for m in 2..=4usize {
            let corr = joint_sign_moment(7, 4, &keys[..m], 4000);
            assert!(corr.abs() < 0.07, "m={m} corr={corr}");
        }
    }

    #[test]
    fn higher_independence_extends_the_guarantee() {
        // A 6-wise family keeps 5- and 6-key products unbiased.
        let keys = [3u64, 17, 99, 1234, 56789, 424242];
        for m in 5..=6usize {
            let corr = joint_sign_moment(9, 6, &keys[..m], 4000);
            assert!(corr.abs() < 0.07, "m={m} corr={corr}");
        }
    }

    #[test]
    fn buckets_cover_range() {
        let h = KWiseHash::from_seed(SeedSequence::new(4), 3);
        let mut seen = [false; 16];
        for x in 0..2000u64 {
            seen[h.bucket(x, 16)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_independence_rejected() {
        let _ = KWiseHash::from_seed(SeedSequence::new(5), 0);
    }
}
