//! k-wise independent hash families.
//!
//! Two families carry the whole sketching stack:
//!
//! * [`PairwiseHash`] — degree-1 polynomials over `Z_p`, pairwise
//!   independent; used as the bucket hashes `h_i` of a hash sketch.
//! * [`FourWiseHash`] / [`SignFamily`] — degree-3 polynomials, four-wise
//!   independent; the sign family maps the uniform field value to ±1, which
//!   is what the AMS second-moment analysis requires (four-wise independence
//!   makes `E[ξ_u ξ_v ξ_w ξ_x]` factor for any four distinct values).

use crate::lanes::{canon61, fold61, mul_limbs, split61};
use crate::prime::{add_mod, mul_mod, poly_eval, reduce, reduce128};
use crate::seed::SeedSequence;

/// Degree of independence offered by a family (for documentation and
/// self-tests; the type system already distinguishes the concrete families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Independence {
    /// Any 2 distinct keys hash jointly uniformly.
    Pairwise,
    /// Any 4 distinct keys hash jointly uniformly.
    FourWise,
}

/// A pairwise-independent hash `x ↦ ((a·x + b) mod p) mod m` onto
/// `[0, range)`.
///
/// `a` is drawn nonzero so distinct keys never trivially collide through the
/// linear map itself. The final `mod range` costs at most a negligible
/// non-uniformity of `range / p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: u64,
}

impl PairwiseHash {
    /// Draws a hash function from the family using `seeds`.
    pub fn from_seed(seeds: SeedSequence, range: usize) -> Self {
        assert!(range > 0, "hash range must be nonzero");
        let mut g = seeds.rng();
        Self {
            a: g.next_nonzero_field_element(),
            b: g.next_field_element(),
            // ss-analyze: allow(a10-reachable-panic) -- usize -> u64 is infallible on every supported target
            range: u64::try_from(range).expect("usize range fits in u64"),
        }
    }

    /// Number of buckets this hash maps onto.
    pub fn range(&self) -> usize {
        self.range as usize
    }

    /// Evaluates the hash on `x`, returning a bucket in `[0, range)`.
    #[inline]
    pub fn bucket(&self, x: u64) -> usize {
        let v = add_mod(mul_mod(self.a, reduce(x)), self.b);
        (v % self.range) as usize
    }

    /// The raw field value before bucket reduction (useful for tests).
    #[inline]
    pub fn raw(&self, x: u64) -> u64 {
        add_mod(mul_mod(self.a, reduce(x)), self.b)
    }

    /// Evaluates the hash on a batch of pre-reduced keys, writing one
    /// bucket per key into `out`.
    ///
    /// Callers reduce each key into the field once (`reduce(x)`) and share
    /// that across every family in a sketch, so the per-table work is just
    /// the linear map. `a`, `b`, and `range` are read into locals once,
    /// `a·x + b` is accumulated lazily in 128 bits with a single final
    /// reduction (the canonical residue is the same, so buckets stay
    /// bit-identical to [`PairwiseHash::bucket`]), and power-of-two ranges
    /// use a mask instead of the `%`.
    pub fn bucket_batch(&self, reduced: &[u64], out: &mut [usize]) {
        assert_eq!(reduced.len(), out.len(), "batch length mismatch");
        let (a, b, range) = (self.a as u128, self.b as u128, self.range);
        if range.is_power_of_two() {
            let mask = range - 1;
            for (o, &x) in out.iter_mut().zip(reduced) {
                *o = (reduce128(a * x as u128 + b) & mask) as usize;
            }
        } else {
            for (o, &x) in out.iter_mut().zip(reduced) {
                *o = (reduce128(a * x as u128 + b) % range) as usize;
            }
        }
    }

    /// Evaluates the hash on a block of pre-split keys (`x = x0 + x1·2^31`,
    /// see [`crate::lanes`]), writing one bucket per key into `out`.
    ///
    /// This is the vector-lane form of [`PairwiseHash::bucket_batch`]: all
    /// multiplies are 32×32→64 limb products, so with AVX2 or wider the
    /// whole loop autovectorizes around `vpmuludq`. The lazy product plus
    /// the canonical `b` stays below `2^64` and is canonicalized once, so
    /// buckets are bit-identical to [`PairwiseHash::bucket`].
    pub fn bucket_block(&self, x0: &[u64], x1: &[u64], out: &mut [usize]) {
        let n = out.len();
        assert!(x0.len() == n && x1.len() == n, "batch length mismatch");
        let (x0, x1) = (&x0[..n], &x1[..n]);
        let (a0, a1) = split61(self.a);
        let (b, range) = (self.b, self.range);
        if range.is_power_of_two() {
            let mask = range - 1;
            for j in 0..n {
                let v = canon61(mul_limbs(a0, a1, x0[j], x1[j]) + b);
                out[j] = (v & mask) as usize;
            }
        } else {
            for j in 0..n {
                let v = canon61(mul_limbs(a0, a1, x0[j], x1[j]) + b);
                out[j] = (v % range) as usize;
            }
        }
    }
}

/// A four-wise independent hash `x ↦ (c0 + c1·x + c2·x² + c3·x³) mod p`
/// returning a uniform field element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FourWiseHash {
    coeffs: [u64; 4],
}

impl FourWiseHash {
    /// Draws a function from the family using `seeds`.
    pub fn from_seed(seeds: SeedSequence) -> Self {
        let mut g = seeds.rng();
        Self {
            coeffs: [
                g.next_field_element(),
                g.next_field_element(),
                g.next_field_element(),
                g.next_field_element(),
            ],
        }
    }

    /// Evaluates the polynomial on `x`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        poly_eval(&self.coeffs, x)
    }
}

/// A four-wise independent ±1 family `ξ`, the "tug-of-war" signs of AMS
/// sketching.
///
/// The sign is the parity of the four-wise independent field value; since
/// `p` is odd the bias is `1/p ≈ 4.3e-19`, far below anything observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignFamily {
    inner: FourWiseHash,
}

impl SignFamily {
    /// Draws a sign family using `seeds`.
    pub fn from_seed(seeds: SeedSequence) -> Self {
        Self {
            inner: FourWiseHash::from_seed(seeds),
        }
    }

    /// Returns `+1` or `-1` for the key `x`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        // Branchless: map parity bit {0,1} to {+1,-1}.
        1 - 2 * i64::from((self.inner.eval(x) & 1) == 1)
    }

    /// Returns the sign as an `f64` (`+1.0` / `-1.0`).
    #[inline]
    pub fn sign_f64(&self, x: u64) -> f64 {
        self.sign(x) as f64
    }

    /// Evaluates signs for a batch of pre-reduced keys, writing `±1` per
    /// key into `out`.
    ///
    /// Computes each key's square and cube, then defers to
    /// [`SignFamily::sign_batch_with_powers`]. When several sign families
    /// evaluate the same keys (one per hash table in a sketch), compute the
    /// powers once and call the `_with_powers` form directly — the powers
    /// are the only per-key work this wrapper adds. Bit-identical to
    /// [`SignFamily::sign`].
    pub fn sign_batch(&self, reduced: &[u64], out: &mut [i64]) {
        assert_eq!(reduced.len(), out.len(), "batch length mismatch");
        const CHUNK: usize = 256;
        let mut x2 = [0u64; CHUNK];
        let mut x3 = [0u64; CHUNK];
        for (xs, os) in reduced.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            let n = xs.len();
            for (j, &x) in xs.iter().enumerate() {
                x2[j] = mul_mod(x, x);
                x3[j] = mul_mod(x2[j], x);
            }
            self.sign_batch_with_powers(xs, &x2[..n], &x3[..n], os);
        }
    }

    /// Evaluates signs for a batch of keys whose squares and cubes are
    /// already available (`x2[i] = x[i]² mod p`, `x3[i] = x[i]³ mod p`).
    ///
    /// The degree-3 polynomial is evaluated as `c0 + c1·x + c2·x² + c3·x³`
    /// with the three products accumulated lazily in 128 bits — they are
    /// independent multiplies (unlike the serial Horner recurrence), so the
    /// CPU pipelines them — and a single reduction at the end. Every term
    /// is below `2^122`, so the 128-bit sum is exact and the canonical
    /// residue (hence the sign) is bit-identical to [`SignFamily::sign`].
    pub fn sign_batch_with_powers(&self, x: &[u64], x2: &[u64], x3: &[u64], out: &mut [i64]) {
        assert!(
            x.len() == x2.len() && x.len() == x3.len() && x.len() == out.len(),
            "batch length mismatch"
        );
        let [c0, c1, c2, c3] = self.inner.coeffs;
        let (c0, c1, c2, c3) = (c0 as u128, c1 as u128, c2 as u128, c3 as u128);
        for j in 0..x.len() {
            let t = c0 + c1 * x[j] as u128 + c2 * x2[j] as u128 + c3 * x3[j] as u128;
            out[j] = 1 - 2 * i64::from((reduce128(t) & 1) == 1);
        }
    }

    /// Evaluates `w·ξ(x)` for a block of keys given as split power limbs
    /// (`x`, `x²`, `x³` each as `lo + hi·2^31`; see
    /// [`crate::lanes::power_limbs`]), writing each key's **signed weight**
    /// into `out`.
    ///
    /// This is the vector-lane form of
    /// [`SignFamily::sign_batch_with_powers`], fused with the weight
    /// multiply: the three degree terms are 32×32→64 limb products folded
    /// once each (every partial sum stays in `u64` — bounds in
    /// [`crate::lanes`]), one final canonicalization recovers the exact
    /// field value, and its parity selects `w` or `-w` branchlessly. The
    /// signed weights are bit-identical to `weight * sign(x)` from the
    /// scalar path.
    #[allow(clippy::too_many_arguments)]
    pub fn signed_weight_block(
        &self,
        x0: &[u64],
        x1: &[u64],
        sq0: &[u64],
        sq1: &[u64],
        cu0: &[u64],
        cu1: &[u64],
        weights: &[i64],
        out: &mut [i64],
    ) {
        let n = out.len();
        assert!(
            x0.len() == n
                && x1.len() == n
                && sq0.len() == n
                && sq1.len() == n
                && cu0.len() == n
                && cu1.len() == n
                && weights.len() == n,
            "batch length mismatch"
        );
        let (x0, x1) = (&x0[..n], &x1[..n]);
        let (sq0, sq1) = (&sq0[..n], &sq1[..n]);
        let (cu0, cu1) = (&cu0[..n], &cu1[..n]);
        let weights = &weights[..n];
        let [k0, k1, k2, k3] = self.inner.coeffs;
        let (c10, c11) = split61(k1);
        let (c20, c21) = split61(k2);
        let (c30, c31) = split61(k3);
        for j in 0..n {
            let e = k0
                + fold61(mul_limbs(c10, c11, x0[j], x1[j]))
                + fold61(mul_limbs(c20, c21, sq0[j], sq1[j]))
                + fold61(mul_limbs(c30, c31, cu0[j], cu1[j]));
            let r = canon61(e);
            out[j] = if r & 1 == 1 {
                weights[j].wrapping_neg()
            } else {
                weights[j]
            };
        }
    }
}

/// Statistical self-test helpers shared by the unit tests and by the
/// `thm34` validation harness: empirical verification that a family behaves
/// as its independence class predicts on a key set.
pub mod selftest {
    use super::*;

    /// Empirical mean of `ξ(x)` over `keys` — should be ≈ 0.
    pub fn sign_bias(f: &SignFamily, keys: impl Iterator<Item = u64>) -> f64 {
        let mut sum = 0i64;
        let mut n = 0usize;
        for k in keys {
            sum += f.sign(k);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Empirical mean of `ξ(x)·ξ(y)` over distinct pairs of many
    /// independently drawn families — should be ≈ 0 for pairwise
    /// independence of the signs.
    pub fn sign_pair_correlation(seed: u64, trials: usize, x: u64, y: u64) -> f64 {
        assert_ne!(x, y);
        let trials_u64 = u64::try_from(trials).expect("usize trials fits in u64");
        let mut sum = 0i64;
        for t in 0..trials_u64 {
            let fam = SignFamily::from_seed(SeedSequence::new(seed).fork(t));
            sum += fam.sign(x) * fam.sign(y);
        }
        sum as f64 / trials as f64
    }

    /// Chi-square statistic of bucket occupancy for a pairwise hash applied
    /// to `0..n` keys. With `range` buckets the statistic has ≈ `range - 1`
    /// degrees of freedom for a truly uniform assignment.
    pub fn bucket_chi_square(h: &PairwiseHash, n: u64) -> f64 {
        let mut counts = vec![0u64; h.range()];
        for x in 0..n {
            counts[h.bucket(x)] += 1;
        }
        let expected = n as f64 / h.range() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::selftest::*;
    use super::*;
    use crate::prime::MERSENNE_P;

    #[test]
    fn pairwise_hash_is_deterministic_and_in_range() {
        let s = SeedSequence::new(11);
        let h1 = PairwiseHash::from_seed(s, 64);
        let h2 = PairwiseHash::from_seed(s, 64);
        for x in 0..1000u64 {
            let b = h1.bucket(x);
            assert!(b < 64);
            assert_eq!(b, h2.bucket(x));
        }
    }

    #[test]
    fn pairwise_hash_range_one_maps_everything_to_zero() {
        let h = PairwiseHash::from_seed(SeedSequence::new(3), 1);
        for x in [0u64, 1, 99, u64::MAX] {
            assert_eq!(h.bucket(x), 0);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn pairwise_hash_rejects_zero_range() {
        let _ = PairwiseHash::from_seed(SeedSequence::new(3), 0);
    }

    #[test]
    fn pairwise_hash_spreads_keys() {
        // Chi-square over 256 buckets with 64k sequential keys: expect the
        // statistic to be near its d.o.f. (255); allow a wide band.
        let h = PairwiseHash::from_seed(SeedSequence::new(17), 256);
        let chi = bucket_chi_square(&h, 65_536);
        assert!(chi < 2.0 * 255.0, "chi-square too high: {chi}");
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let h1 = PairwiseHash::from_seed(SeedSequence::new(1), 1024);
        let h2 = PairwiseHash::from_seed(SeedSequence::new(2), 1024);
        let agree = (0..1024u64)
            .filter(|&x| h1.bucket(x) == h2.bucket(x))
            .count();
        // Two random functions agree on ~1/1024 of keys.
        assert!(agree < 32, "agree={agree}");
    }

    #[test]
    fn bucket_batch_matches_scalar_bucket() {
        // Cover both the power-of-two mask path and the generic `%` path.
        for range in [64usize, 100, 1, 1024, 257] {
            let h = PairwiseHash::from_seed(SeedSequence::new(41), range);
            let keys: Vec<u64> = (0..500u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .chain([u64::MAX, MERSENNE_P, MERSENNE_P + 1])
                .collect();
            let reduced: Vec<u64> = keys.iter().map(|&k| reduce(k)).collect();
            let mut out = vec![0usize; keys.len()];
            h.bucket_batch(&reduced, &mut out);
            for (&k, &b) in keys.iter().zip(&out) {
                assert_eq!(b, h.bucket(k), "range={range} key={k}");
            }
        }
    }

    #[test]
    fn sign_batch_matches_scalar_sign() {
        let f = SignFamily::from_seed(SeedSequence::new(43));
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95))
            .chain([u64::MAX, MERSENNE_P, MERSENNE_P + 1])
            .collect();
        let reduced: Vec<u64> = keys.iter().map(|&k| reduce(k)).collect();
        let mut out = vec![0i64; keys.len()];
        f.sign_batch(&reduced, &mut out);
        for (&k, &s) in keys.iter().zip(&out) {
            assert_eq!(s, f.sign(k), "key={k}");
        }
    }

    #[test]
    fn bucket_block_matches_scalar_bucket() {
        use crate::lanes::split61;
        for range in [64usize, 100, 1, 1024, 257] {
            let h = PairwiseHash::from_seed(SeedSequence::new(47), range);
            let keys: Vec<u64> = (0..500u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .chain([u64::MAX, MERSENNE_P, MERSENNE_P + 1])
                .collect();
            let x0: Vec<u64> = keys.iter().map(|&k| split61(reduce(k)).0).collect();
            let x1: Vec<u64> = keys.iter().map(|&k| split61(reduce(k)).1).collect();
            let mut out = vec![0usize; keys.len()];
            h.bucket_block(&x0, &x1, &mut out);
            for (&k, &b) in keys.iter().zip(&out) {
                assert_eq!(b, h.bucket(k), "range={range} key={k}");
            }
        }
    }

    #[test]
    fn signed_weight_block_matches_scalar_sign() {
        use crate::lanes::power_limbs;
        let f = SignFamily::from_seed(SeedSequence::new(53));
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95))
            .chain([u64::MAX, MERSENNE_P, MERSENNE_P + 1])
            .collect();
        let mut limbs = vec![[0u64; 6]; keys.len()];
        for (l, &k) in limbs.iter_mut().zip(&keys) {
            *l = power_limbs(reduce(k));
        }
        let col = |i: usize| limbs.iter().map(|l| l[i]).collect::<Vec<u64>>();
        let (x0, x1, sq0, sq1, cu0, cu1) = (col(0), col(1), col(2), col(3), col(4), col(5));
        // Varied weights, including the extremes of i64.
        let weights: Vec<i64> = keys
            .iter()
            .enumerate()
            .map(|(i, _)| match i % 5 {
                0 => 1,
                1 => -3,
                2 => i64::MAX,
                3 => 0,
                _ => i as i64 - 250,
            })
            .collect();
        let mut out = vec![0i64; keys.len()];
        f.signed_weight_block(&x0, &x1, &sq0, &sq1, &cu0, &cu1, &weights, &mut out);
        for ((&k, &w), &sw) in keys.iter().zip(&weights).zip(&out) {
            assert_eq!(sw, w * f.sign(k), "key={k} weight={w}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bucket_block_rejects_mismatched_lengths() {
        let h = PairwiseHash::from_seed(SeedSequence::new(5), 16);
        let mut out = vec![0usize; 3];
        h.bucket_block(&[1, 2], &[0, 0], &mut out);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bucket_batch_rejects_mismatched_lengths() {
        let h = PairwiseHash::from_seed(SeedSequence::new(5), 16);
        let mut out = vec![0usize; 3];
        h.bucket_batch(&[1, 2], &mut out);
    }

    #[test]
    fn fourwise_eval_is_in_field() {
        let f = FourWiseHash::from_seed(SeedSequence::new(23));
        for x in 0..10_000u64 {
            assert!(f.eval(x) < MERSENNE_P);
        }
    }

    #[test]
    fn sign_family_is_plus_minus_one() {
        let f = SignFamily::from_seed(SeedSequence::new(29));
        let mut saw = [false; 2];
        for x in 0..1000u64 {
            let s = f.sign(x);
            assert!(s == 1 || s == -1);
            saw[(s == 1) as usize] = true;
            assert_eq!(s as f64, f.sign_f64(x));
        }
        assert!(saw[0] && saw[1], "signs should take both values");
    }

    #[test]
    fn sign_family_is_nearly_unbiased() {
        let f = SignFamily::from_seed(SeedSequence::new(31));
        let bias = sign_bias(&f, 0..100_000u64);
        // For a degree-3 polynomial family the empirical bias over a large
        // fixed key set concentrates around 0 at rate 1/sqrt(n).
        assert!(bias.abs() < 0.02, "bias={bias}");
    }

    #[test]
    fn sign_pairs_are_uncorrelated_across_family_draws() {
        let corr = sign_pair_correlation(1234, 4000, 17, 18_000);
        assert!(corr.abs() < 0.06, "corr={corr}");
    }

    #[test]
    fn fourth_moment_of_bucket_counter_matches_fourwise_prediction() {
        // For Z = Σ_v ξ(v) over m values, four-wise independence gives
        // E[Z^2] = m and E[Z^4] = 3m(m-1) + m. Check empirically across
        // independent family draws.
        let m = 64u64;
        let trials = 3000;
        let mut sum2 = 0f64;
        let mut sum4 = 0f64;
        for t in 0..trials {
            let fam = SignFamily::from_seed(SeedSequence::new(777).fork(t));
            let z: i64 = (0..m).map(|v| fam.sign(v)).sum();
            let z2 = (z * z) as f64;
            sum2 += z2;
            sum4 += z2 * z2;
        }
        let e2 = sum2 / trials as f64;
        let e4 = sum4 / trials as f64;
        let expect2 = m as f64;
        let expect4 = 3.0 * (m * (m - 1)) as f64 + m as f64;
        assert!((e2 - expect2).abs() / expect2 < 0.15, "E[Z^2]={e2}");
        assert!((e4 - expect4).abs() / expect4 < 0.30, "E[Z^4]={e4}");
    }
}
