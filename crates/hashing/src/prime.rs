//! Modular arithmetic over the Mersenne prime `p = 2^61 - 1`.
//!
//! All k-wise independent hash families in this crate evaluate polynomials
//! over the field `Z_p`. The Mersenne structure of `p` lets us reduce a
//! 122-bit product with two shifts and an add instead of a hardware divide,
//! which keeps the per-element sketch-update cost down to a handful of
//! cycles — important because the skimmed-sketch data structure evaluates
//! one pairwise and one four-wise hash per hash table on every stream
//! element.

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u64` into `[0, p)`.
///
/// Values in `[p, 2^61)` map by subtracting `p` once; larger values first
/// fold the high bits. The result is always a canonical field element.
#[inline]
pub fn reduce(x: u64) -> u64 {
    // Fold bits above position 61 back in; for u64 inputs one fold suffices
    // to bring the value below 2^62, after which at most two conditional
    // subtractions canonicalize it.
    let mut r = (x & MERSENNE_P) + (x >> 61);
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// Reduces a 128-bit value into `[0, p)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // `2^61 ≡ 1 (mod p)`, so the three 61-bit limbs of `x` fold straight
    // into one branchless sum: `x = lo + mid·2^61 + hi·2^122 ≡ lo + mid +
    // hi`, with `lo, mid < 2^61` and `hi < 2^6` — the sum stays well below
    // `2^63`, and the 64-bit reduction canonicalizes it.
    const LOW: u128 = (1u128 << 61) - 1;
    let folded = (x & LOW) as u64 + ((x >> 61) as u64 & MERSENNE_P) + (x >> 122) as u64;
    reduce(folded)
}

/// Modular addition in `Z_p`.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    let s = a + b; // cannot overflow: both < 2^61
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// Modular multiplication in `Z_p` via a single widening multiply.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    let prod = (a as u128) * (b as u128);
    // prod < 2^122; low 61 bits plus high 61 bits, one conditional subtract.
    let lo = (prod as u64) & MERSENNE_P;
    let hi = (prod >> 61) as u64; // < 2^61
    let mut r = lo + hi; // < 2^62
    r = (r & MERSENNE_P) + (r >> 61);
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// Modular exponentiation `base^exp mod p` by square-and-multiply.
pub fn pow_mod(base: u64, mut exp: u64) -> u64 {
    let mut base = reduce(base);
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse in `Z_p` (requires `a != 0`), via Fermat.
pub fn inv_mod(a: u64) -> u64 {
    assert!(reduce(a) != 0, "zero has no multiplicative inverse");
    pow_mod(a, MERSENNE_P - 2)
}

/// Evaluates the polynomial `c\[0\] + c\[1\]·x + … + c[d]·x^d` over `Z_p`
/// by Horner's rule. Coefficients must already be canonical field elements.
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let x = reduce(x);
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add_mod(mul_mod(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_is_canonical() {
        assert_eq!(reduce(0), 0);
        assert_eq!(reduce(MERSENNE_P), 0);
        assert_eq!(reduce(MERSENNE_P + 1), 1);
        assert_eq!(reduce(u64::MAX), u64::MAX % MERSENNE_P);
    }

    #[test]
    fn reduce128_matches_modulus() {
        for x in [
            0u128,
            1,
            MERSENNE_P as u128,
            (MERSENNE_P as u128) * (MERSENNE_P as u128),
            u128::MAX,
        ] {
            assert_eq!(reduce128(x), (x % MERSENNE_P as u128) as u64, "x={x}");
        }
    }

    #[test]
    fn mul_mod_agrees_with_u128_arithmetic() {
        let samples = [0u64, 1, 2, 12345, MERSENNE_P - 1, MERSENNE_P / 2, 1 << 60];
        for &a in &samples {
            for &b in &samples {
                let expect = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
                assert_eq!(mul_mod(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_mod_wraps() {
        assert_eq!(add_mod(MERSENNE_P - 1, 1), 0);
        assert_eq!(add_mod(MERSENNE_P - 1, 2), 1);
        assert_eq!(add_mod(5, 7), 12);
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10), 1024);
        assert_eq!(pow_mod(3, 0), 1);
        assert_eq!(pow_mod(0, 5), 0);
        // Fermat: a^(p-1) = 1 for a != 0.
        assert_eq!(pow_mod(123456789, MERSENNE_P - 1), 1);
    }

    #[test]
    fn inv_mod_inverts() {
        for a in [1u64, 2, 3, 998244353, MERSENNE_P - 2] {
            assert_eq!(mul_mod(a, inv_mod(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_mod_zero_panics() {
        inv_mod(0);
    }

    #[test]
    fn poly_eval_matches_direct_expansion() {
        // 3 + 2x + x^2 at x = 10 -> 123
        assert_eq!(poly_eval(&[3, 2, 1], 10), 123);
        // Degree-3 with wraparound.
        let coeffs = [MERSENNE_P - 1, MERSENNE_P - 2, 7, 11];
        let x = 987654321u64;
        let direct = {
            let mut acc = 0u64;
            let mut xp = 1u64;
            for &c in &coeffs {
                acc = add_mod(acc, mul_mod(c, xp));
                xp = mul_mod(xp, x);
            }
            acc
        };
        assert_eq!(poly_eval(&coeffs, x), direct);
    }

    #[test]
    fn poly_eval_empty_is_zero() {
        assert_eq!(poly_eval(&[], 42), 0);
    }
}
