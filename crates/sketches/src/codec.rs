//! Wire codec for sketches.
//!
//! Linear sketches are the natural unit of exchange in distributed
//! monitoring (each site sketches its local substream; a coordinator merges
//! by addition — exactly the deployment the paper's NOC scenario implies).
//! This module gives every sketch a compact, versioned binary encoding:
//! shape parameters + root seed + varint-compressed counters. The receiver
//! reconstructs the hash families from the seed, so no function tables
//! travel on the wire.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "SSK1" | kind u8 | dim1 u32 | dim2 u32 | seed u64 | count u32
//! then `count` zigzag-varint counters
//! ```

use crate::agms::{AgmsSchema, AgmsSketch};
use crate::countmin::{CountMinSchema, CountMinSketch};
use crate::hash_sketch::{HashSketch, HashSketchSchema};
use crate::linear::LinearSynopsis;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use stream_model::update::Update;

const MAGIC: &[u8; 4] = b"SSK1";

/// Sketch kind tags on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Agms = 1,
    Hash = 2,
    CountMin = 3,
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Header magic mismatch.
    BadMagic,
    /// Unknown sketch kind tag.
    BadKind(u8),
    /// Kind tag did not match the requested sketch type.
    WrongKind,
    /// Buffer ended early or a varint was malformed.
    Truncated,
    /// Declared counter count does not match the shape.
    ShapeMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad sketch magic"),
            CodecError::BadKind(k) => write!(f, "unknown sketch kind {k}"),
            CodecError::WrongKind => write!(f, "sketch kind mismatch"),
            CodecError::Truncated => write!(f, "sketch buffer truncated"),
            CodecError::ShapeMismatch => write!(f, "counter count does not match shape"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_varint(buf: &mut BytesMut, mut x: u64) {
    loop {
        // ss-analyze: allow(a5-numeric-narrowing) -- masked to 7 bits, fits u8 by construction
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut x = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
    }
    Err(CodecError::Truncated)
}

#[inline]
fn zigzag(w: i64) -> u64 {
    // ss-analyze: allow(a5-numeric-narrowing) -- deliberate two's-complement reinterpretation; zigzag is a bijection on the full 64-bit range
    ((w << 1) ^ (w >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    // ss-analyze: allow(a5-numeric-narrowing) -- inverse of the zigzag bijection; both casts reinterpret bits on purpose
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn encode_raw(kind: Kind, dim1: u32, dim2: u32, seed: u64, counters: &[i64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + counters.len() * 2);
    buf.put_slice(MAGIC);
    // ss-analyze: allow(a5-numeric-narrowing) -- `Kind` is a fieldless enum with discriminants 1..=3
    buf.put_u8(kind as u8);
    buf.put_u32_le(dim1);
    buf.put_u32_le(dim2);
    buf.put_u64_le(seed);
    // ss-analyze: allow(a5-numeric-narrowing) -- counter count is dim1*dim2, both u32 header fields
    buf.put_u32_le(counters.len() as u32);
    for &c in counters {
        put_varint(&mut buf, zigzag(c));
    }
    buf.freeze()
}

struct RawSketch {
    kind: u8,
    dim1: u32,
    dim2: u32,
    seed: u64,
    counters: Vec<i64>,
}

fn decode_raw(mut buf: Bytes) -> Result<RawSketch, CodecError> {
    if buf.remaining() < 25 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let kind = buf.get_u8();
    let dim1 = buf.get_u32_le();
    let dim2 = buf.get_u32_le();
    let seed = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    if count != dim1 as usize * dim2 as usize {
        return Err(CodecError::ShapeMismatch);
    }
    let mut counters = Vec::with_capacity(count);
    for _ in 0..count {
        counters.push(unzigzag(get_varint(&mut buf)?));
    }
    Ok(RawSketch {
        kind,
        dim1,
        dim2,
        seed,
        counters,
    })
}

/// Replays counters into a freshly constructed sketch via its linear
/// structure: build empty, then merge a counter image. All three sketch
/// types store counters row-major, so this is a direct overwrite expressed
/// through the public update API (one synthetic merge).
macro_rules! impl_codec {
    ($encode:ident, $decode:ident, $sketch:ty, $kind:expr,
     $d1:ident, $d2:ident, $ctor:path) => {
        /// Encodes the sketch (shape + seed + counters) into a buffer.
        pub fn $encode(sk: &$sketch) -> Bytes {
            let schema = sk.schema();
            encode_raw(
                $kind,
                // ss-analyze: allow(a5-numeric-narrowing) -- header fields are u32 by format; a schema this large is not constructible in memory
                schema.$d1() as u32,
                // ss-analyze: allow(a5-numeric-narrowing) -- same u32 format bound
                schema.$d2() as u32,
                schema.seed(),
                sk.counters(),
            )
        }

        /// Decodes a sketch previously produced by the matching encoder.
        pub fn $decode(buf: Bytes) -> Result<$sketch, CodecError> {
            let raw = decode_raw(buf)?;
            // ss-analyze: allow(a5-numeric-narrowing) -- `Kind` is a fieldless enum with discriminants 1..=3
            if raw.kind != $kind as u8 {
                return Err(if raw.kind >= 1 && raw.kind <= 3 {
                    CodecError::WrongKind
                } else {
                    CodecError::BadKind(raw.kind)
                });
            }
            let schema = $ctor(raw.dim1 as usize, raw.dim2 as usize, raw.seed);
            let mut sk = <$sketch>::new(schema);
            debug_assert_eq!(sk.counters().len(), raw.counters.len());
            sk.overwrite_counters(&raw.counters);
            Ok(sk)
        }
    };
}

impl_codec!(
    encode_agms,
    decode_agms,
    AgmsSketch,
    Kind::Agms,
    rows,
    cols,
    AgmsSchema::new
);

impl_codec!(
    encode_hash,
    decode_hash,
    HashSketch,
    Kind::Hash,
    tables,
    buckets,
    HashSketchSchema::new
);

impl_codec!(
    encode_countmin,
    decode_countmin,
    CountMinSketch,
    Kind::CountMin,
    depth,
    width,
    CountMinSchema::new
);

/// A helper so `StreamSink`/`LinearSynopsis` users can rebuild from a
/// decoded sketch without reaching into internals (used by tests).
pub fn replay_into<S: LinearSynopsis>(sink: &mut S, updates: &[Update]) {
    for &u in updates {
        sink.update(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_updates(n: usize, seed: u64) -> Vec<Update> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Update {
                value: rng.gen_range(0..4096),
                weight: rng.gen_range(-5i64..=5).max(1),
            })
            .collect()
    }

    #[test]
    fn agms_round_trip_preserves_estimates() {
        let schema = AgmsSchema::new(5, 32, 77);
        let mut a = AgmsSketch::new(schema.clone());
        let mut b = AgmsSketch::new(schema);
        replay_into(&mut a, &random_updates(2000, 1));
        replay_into(&mut b, &random_updates(2000, 2));
        let before = a.estimate_join(&b);
        let a2 = decode_agms(encode_agms(&a)).unwrap();
        let b2 = decode_agms(encode_agms(&b)).unwrap();
        assert_eq!(a2.counters(), a.counters());
        assert!(a2.compatible(&a));
        assert_eq!(a2.estimate_join(&b2), before);
    }

    #[test]
    fn hash_round_trip_bit_exact() {
        let schema = HashSketchSchema::new(7, 64, 99);
        let mut sk = HashSketch::new(schema);
        replay_into(&mut sk, &random_updates(3000, 3));
        let back = decode_hash(encode_hash(&sk)).unwrap();
        assert_eq!(back.counters(), sk.counters());
        assert_eq!(back.point_estimate(17), sk.point_estimate(17));
    }

    #[test]
    fn countmin_round_trip() {
        let schema = CountMinSchema::new(4, 128, 5);
        let mut sk = CountMinSketch::new(schema);
        replay_into(&mut sk, &random_updates(1000, 4));
        let back = decode_countmin(encode_countmin(&sk)).unwrap();
        assert_eq!(back.point_estimate(100), sk.point_estimate(100));
    }

    #[test]
    fn decoded_sketch_merges_with_local_one() {
        // The distributed pattern: remote site ships its sketch, the
        // coordinator merges into its own.
        let schema = HashSketchSchema::new(3, 32, 11);
        let mut local = HashSketch::new(schema.clone());
        let mut remote = HashSketch::new(schema.clone());
        let ul = random_updates(500, 5);
        let ur = random_updates(500, 6);
        replay_into(&mut local, &ul);
        replay_into(&mut remote, &ur);
        let shipped = decode_hash(encode_hash(&remote)).unwrap();
        local.merge_from(&shipped);
        let mut all = HashSketch::new(schema);
        replay_into(&mut all, &ul);
        replay_into(&mut all, &ur);
        assert_eq!(local.counters(), all.counters());
    }

    #[test]
    fn rejects_corruption() {
        let schema = HashSketchSchema::new(2, 8, 1);
        let sk = HashSketch::new(schema);
        let good = encode_hash(&sk);

        let mut bad_magic = good.to_vec();
        bad_magic[0] = b'X';
        assert_eq!(
            decode_hash(Bytes::from(bad_magic)).unwrap_err(),
            CodecError::BadMagic
        );

        let mut bad_kind = good.to_vec();
        bad_kind[4] = 200;
        assert_eq!(
            decode_hash(Bytes::from(bad_kind)).unwrap_err(),
            CodecError::BadKind(200)
        );

        let truncated = Bytes::from(good[..good.len() - 1].to_vec());
        assert_eq!(decode_hash(truncated).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let agms = AgmsSketch::new(AgmsSchema::new(2, 4, 1));
        let err = decode_hash(encode_agms(&agms)).unwrap_err();
        assert_eq!(err, CodecError::WrongKind);
    }

    #[test]
    fn zero_counters_compress_to_one_byte_each() {
        let schema = HashSketchSchema::new(4, 256, 1);
        let sk = HashSketch::new(schema);
        let buf = encode_hash(&sk);
        assert!(buf.len() <= 25 + 1024);
    }
}
