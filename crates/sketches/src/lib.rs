//! # stream-sketches
//!
//! Linear stream synopses: the basic AGMS ("tug-of-war") sketch that is the
//! paper's baseline \[3, 4\], the hash-sketch / CountSketch data structure \[8\]
//! that the skimmed-sketch algorithm builds on, a streaming top-k tracker,
//! and a Count-Min comparator. All share the [`LinearSynopsis`] algebra —
//! merge, negate, subtract — which is what makes delete handling and
//! distributed ingestion correct by construction.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod agms;
pub mod codec;
pub mod countmin;
pub mod distinct;
pub mod hash_sketch;
pub mod linear;
pub(crate) mod telem;
pub mod topk;

pub use agms::{AgmsSchema, AgmsSketch};
pub use codec::CodecError;
pub use countmin::{CountMinSchema, CountMinSketch};
pub use distinct::DistinctSketch;
pub use hash_sketch::{HashSketch, HashSketchSchema};
pub use linear::{merge_parts, LinearSynopsis};
pub use topk::TopKSketch;
