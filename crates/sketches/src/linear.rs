//! The linear-synopsis algebra.
//!
//! Every sketch in this workspace is a *linear projection* of the stream's
//! frequency vector. Linearity is what the paper leans on for its "handles
//! general updates" claim: `sketch(f + g) = sketch(f) + sketch(g)`, so
//! deletes are just negative-weight updates, two nodes' sketches of
//! disjoint substreams merge by addition, and a sketch can be *subtracted*
//! from (which is exactly what SKIMDENSE does when it removes the dense
//! frequencies it extracted).

use stream_model::update::{StreamSink, Update};

/// A synopsis that is a linear function of the stream's frequency vector.
///
/// Implementors must satisfy, for compatible instances (same shape and
/// hash families):
///
/// * `a.merge_from(&b)` makes `a` the synopsis of the concatenated streams;
/// * `a.negate()` makes `a` the synopsis of the inverted stream;
/// * updating with `Update { value, weight }` equals merging a fresh
///   synopsis of the single-update stream.
pub trait LinearSynopsis: StreamSink {
    /// Whether `other` was built with the same shape *and* hash families,
    /// i.e. whether linear combination is meaningful.
    fn compatible(&self, other: &Self) -> bool;

    /// Adds `other` into `self` (stream concatenation).
    ///
    /// # Panics
    /// If the synopses are incompatible.
    fn merge_from(&mut self, other: &Self);

    /// Negates the synopsis (every counted weight flips sign).
    fn negate(&mut self);

    /// Subtracts `other` from `self` — the synopsis of the difference
    /// stream. Default implementation via clone-negate-merge.
    fn subtract_from(&mut self, other: &Self)
    where
        Self: Clone,
    {
        let mut neg = other.clone();
        neg.negate();
        self.merge_from(&neg);
    }

    /// Resets to the synopsis of the empty stream.
    fn clear(&mut self);
}

/// Merges any number of compatible synopses into the synopsis of the
/// concatenated streams, or `None` for an empty iterator.
///
/// This is the cross-node merge entry point: a cluster router feeds it
/// the per-shard sketches fetched over the wire, the in-process
/// `IngestPool` feeds it per-worker partials — same algebra either way.
/// Counter addition over `i64` is exact, commutative, and associative,
/// so the result is **bit-identical** regardless of how the stream was
/// partitioned or in which order the parts arrive; that invariant is
/// what lets a sharded cluster answer queries byte-for-byte like a
/// single node.
///
/// # Panics
/// If any two parts are incompatible (different shape or hash
/// families), per [`LinearSynopsis::merge_from`].
pub fn merge_parts<S, I>(parts: I) -> Option<S>
where
    S: LinearSynopsis,
    I: IntoIterator<Item = S>,
{
    let mut parts = parts.into_iter();
    let mut merged = parts.next()?;
    for part in parts {
        merged.merge_from(&part);
    }
    Some(merged)
}

/// Replays updates into a fresh default-constructed synopsis — convenience
/// used throughout the tests.
pub fn synopsis_of<S, I>(mut empty: S, updates: I) -> S
where
    S: LinearSynopsis,
    I: IntoIterator<Item = Update>,
{
    for u in updates {
        empty.update(u);
    }
    empty
}
