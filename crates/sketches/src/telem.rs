//! Batch-kernel telemetry: per-sketch update and bytes-touched counters.
//!
//! Each batch kernel owns a `OnceLock` cell so the registry lookup
//! happens once per process; afterwards a batch costs two relaxed
//! `fetch_add`s — amortised over hundreds of updates, far below the 2%
//! overhead budget. When telemetry is compiled out the call sites guard
//! on [`stream_telemetry::ENABLED`] and the whole path folds away.

use std::sync::{Arc, OnceLock};
use stream_telemetry::Counter;

/// Cached handles for one kernel's throughput counters.
pub(crate) struct BatchStats {
    updates: Arc<Counter>,
    bytes: Arc<Counter>,
}

impl BatchStats {
    /// Records one batch: `updates` stream elements whose application
    /// wrote `counters_touched` synopsis counters (8 bytes each).
    #[inline]
    pub(crate) fn note(&self, updates: usize, counters_touched: usize) {
        self.updates.add(updates as u64);
        self.bytes.add(8 * counters_touched as u64);
    }
}

/// The `sketch`-labelled counters for one kernel, registered on first
/// use into the global registry and cached in the kernel's `cell`.
pub(crate) fn batch_stats(
    cell: &'static OnceLock<BatchStats>,
    sketch: &'static str,
) -> &'static BatchStats {
    cell.get_or_init(|| {
        let registry = stream_telemetry::global();
        let labels = [("sketch", sketch)];
        BatchStats {
            updates: registry.counter_with("sketch_batch_updates_total", &labels),
            bytes: registry.counter_with("sketch_batch_bytes_total", &labels),
        }
    })
}
