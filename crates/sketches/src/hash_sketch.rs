//! The hash-sketch data structure (CountSketch of Charikar, Chen &
//! Farach-Colton \[8\]) — the synopsis the skimmed-sketch algorithm is built
//! on.
//!
//! An array of `s1` hash tables, each with `b` buckets, each bucket a
//! single AMS counter over the values that hash into it:
//! `C[i][q] = Σ_{v : h_i(v) = q} f(v)·ξ_i(v)`. Per update only **one**
//! counter per table changes — `O(s1)` work versus the `O(s1·s2)` of basic
//! AGMS — which is the paper's guaranteed-logarithmic update cost.
//!
//! `point_estimate(v) = median_i ξ_i(v)·C[i][h_i(v)]` recovers `f(v)` to
//! within `Δ = O(√(F₂/b))` with high probability (Thm 3), the property
//! SKIMDENSE uses to pull the dense values out.

use crate::linear::LinearSynopsis;
use std::sync::{Arc, OnceLock};
use stream_hash::lanes;
use stream_hash::prime::{mul_mod, reduce};
use stream_hash::{PairwiseHash, SeedSequence, SignFamily};
use stream_model::metrics::{median_i128, median_i64};
use stream_model::update::{StreamSink, Update};

/// Batch updates are processed in chunks of this many elements so the
/// per-chunk scratch (reduced keys, weights, buckets, signs) lives on the
/// stack and stays in L1 while the outer loop walks the tables.
pub(crate) const BATCH_CHUNK: usize = 256;

/// Tables at or below this count get a stack-allocated median scratch in
/// [`HashSketch::point_estimate`] (any realistic `s1` is far below it).
const MAX_STACK_TABLES: usize = 64;

/// Per-table hash functions shared by all compatible hash sketches.
///
/// The skimmed-sketch join estimator requires the two streams' sketches to
/// use identical `h_i` *and* `ξ_i`; build both sketches from one
/// `Arc<HashSketchSchema>`.
#[derive(Debug)]
pub struct HashSketchSchema {
    tables: usize,
    buckets: usize,
    seed: u64,
    bucket_hash: Vec<PairwiseHash>,
    sign: Vec<SignFamily>,
}

impl HashSketchSchema {
    /// Creates a schema with `tables` (= `s1`) hash tables of `buckets`
    /// (= `b`) counters each, derived deterministically from `seed`.
    pub fn new(tables: usize, buckets: usize, seed: u64) -> Arc<Self> {
        assert!(tables > 0 && buckets > 0, "schema must be non-degenerate");
        let root = SeedSequence::new(seed).fork(0x48534B /* "HSK" */);
        let bucket_hash = (0..tables)
            // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
            .map(|i| PairwiseHash::from_seed(root.fork(2 * i as u64), buckets))
            .collect();
        let sign = (0..tables)
            // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
            .map(|i| SignFamily::from_seed(root.fork(2 * i as u64 + 1)))
            .collect();
        Arc::new(Self {
            tables,
            buckets,
            seed,
            bucket_hash,
            sign,
        })
    }

    /// Number of hash tables (`s1`).
    pub fn tables(&self) -> usize {
        self.tables
    }

    /// Buckets per table (`b`).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Synopsis size in counters.
    pub fn words(&self) -> usize {
        self.tables * self.buckets
    }

    /// Bucket of value `v` in table `i`.
    #[inline]
    pub fn bucket(&self, i: usize, v: u64) -> usize {
        self.bucket_hash[i].bucket(v)
    }

    /// Sign of value `v` in table `i`.
    #[inline]
    pub fn sign(&self, i: usize, v: u64) -> i64 {
        self.sign[i].sign(v)
    }
}

/// A hash sketch of one stream under a shared schema.
///
/// # Examples
///
/// ```
/// use stream_sketches::{HashSketch, HashSketchSchema};
/// use stream_model::{StreamSink, Update};
///
/// let schema = HashSketchSchema::new(5, 64, 42);
/// let mut sk = HashSketch::new(schema);
/// for _ in 0..100 {
///     sk.update(Update::insert(7));
/// }
/// sk.update(Update::delete(7));
/// assert_eq!(sk.point_estimate(7), 99);
/// ```
#[derive(Debug, Clone)]
pub struct HashSketch {
    schema: Arc<HashSketchSchema>,
    counters: Vec<i64>, // tables × buckets, row-major
}

impl HashSketch {
    /// An empty sketch under `schema`.
    pub fn new(schema: Arc<HashSketchSchema>) -> Self {
        let n = schema.words();
        Self {
            schema,
            counters: vec![0; n],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<HashSketchSchema> {
        &self.schema
    }

    /// Counters of table `i`.
    #[inline]
    pub fn table(&self, i: usize) -> &[i64] {
        let b = self.schema.buckets;
        &self.counters[i * b..(i + 1) * b]
    }

    /// All counters, row-major.
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Bulk construction from a frequency vector (identical to replay, by
    /// linearity).
    pub fn from_frequencies<I>(schema: Arc<HashSketchSchema>, frequencies: I) -> Self
    where
        I: IntoIterator<Item = (u64, i64)>,
    {
        let mut sk = Self::new(schema);
        for (v, f) in frequencies {
            if f != 0 {
                sk.add_weighted(v, f);
            }
        }
        sk
    }

    /// Adds `w` copies of `v` — one counter per table.
    #[inline]
    pub fn add_weighted(&mut self, v: u64, w: i64) {
        let b = self.schema.buckets;
        for i in 0..self.schema.tables {
            let q = self.schema.bucket(i, v);
            self.counters[i * b + q] += w * self.schema.sign(i, v);
        }
    }

    /// Applies a batch of updates with the loops interchanged: outer loop
    /// over tables, inner loop over a stack-resident chunk of the batch.
    ///
    /// Each value is reduced into the hash field once per chunk (shared by
    /// every table's bucket and sign evaluation), hash constants stay in
    /// registers across the inner loop, and counter writes of one chunk hit
    /// a single table row at a time. On targets with ≥4-lane 64-bit vectors
    /// (AVX2 or wider; [`lanes::VECTOR_KERNEL`]) the hash math runs the
    /// blocked 32-bit limb-lane kernel, which the compiler autovectorizes;
    /// elsewhere the lazy-`u128` kernel is kept. Both produce counters
    /// bit-identical to applying [`HashSketch::add_weighted`] update by
    /// update.
    pub fn add_batch(&mut self, batch: &[Update]) {
        if stream_telemetry::ENABLED {
            static STATS: OnceLock<crate::telem::BatchStats> = OnceLock::new();
            crate::telem::batch_stats(&STATS, "hash")
                .note(batch.len(), batch.len() * self.schema.tables);
        }
        if lanes::VECTOR_KERNEL {
            self.add_batch_limb_lanes(batch);
        } else {
            self.add_batch_lazy128(batch);
        }
    }

    /// Blocked limb-lane kernel: per chunk, split each key's powers into
    /// 32-bit limbs once ([`lanes::power_limbs`]), then per table evaluate
    /// buckets and signed weights as flat lane loops
    /// ([`PairwiseHash::bucket_block`] /
    /// [`SignFamily::signed_weight_block`]) and scatter into the table row.
    ///
    /// Public so benches and property tests can pin this kernel regardless
    /// of what [`HashSketch::add_batch`] would select; production code
    /// should call `add_batch` and let the selector pick.
    pub fn add_batch_limb_lanes(&mut self, batch: &[Update]) {
        let t = self.schema.tables;
        let b = self.schema.buckets;
        let mut x0 = [0u64; BATCH_CHUNK];
        let mut x1 = [0u64; BATCH_CHUNK];
        let mut sq0 = [0u64; BATCH_CHUNK];
        let mut sq1 = [0u64; BATCH_CHUNK];
        let mut cu0 = [0u64; BATCH_CHUNK];
        let mut cu1 = [0u64; BATCH_CHUNK];
        let mut weights = [0i64; BATCH_CHUNK];
        let mut buckets = [0usize; BATCH_CHUNK];
        let mut signed = [0i64; BATCH_CHUNK];
        for chunk in batch.chunks(BATCH_CHUNK) {
            let n = chunk.len();
            for (j, u) in chunk.iter().enumerate() {
                let [a, b, c, d, e, f] = lanes::power_limbs(reduce(u.value));
                x0[j] = a;
                x1[j] = b;
                sq0[j] = c;
                sq1[j] = d;
                cu0[j] = e;
                cu1[j] = f;
                weights[j] = u.weight;
            }
            for i in 0..t {
                self.schema.bucket_hash[i].bucket_block(&x0[..n], &x1[..n], &mut buckets[..n]);
                self.schema.sign[i].signed_weight_block(
                    &x0[..n],
                    &x1[..n],
                    &sq0[..n],
                    &sq1[..n],
                    &cu0[..n],
                    &cu1[..n],
                    &weights[..n],
                    &mut signed[..n],
                );
                let row = &mut self.counters[i * b..(i + 1) * b];
                if b.is_power_of_two() {
                    // Re-masking lets the bounds check vanish; `bucket_block`
                    // already produced in-range buckets, so this is a no-op.
                    let m = b - 1;
                    for j in 0..n {
                        row[buckets[j] & m] += signed[j];
                    }
                } else {
                    for j in 0..n {
                        row[buckets[j]] += signed[j];
                    }
                }
            }
        }
    }

    /// Lazy-`u128` kernel (the scalar-multiplier path): shared power
    /// precomputation per chunk, then per-table `bucket_batch` /
    /// `sign_batch_with_powers` lane passes.
    ///
    /// Public so benches and property tests can pin this kernel regardless
    /// of what [`HashSketch::add_batch`] would select; production code
    /// should call `add_batch` and let the selector pick.
    pub fn add_batch_lazy128(&mut self, batch: &[Update]) {
        let t = self.schema.tables;
        let b = self.schema.buckets;
        let mut reduced = [0u64; BATCH_CHUNK];
        let mut squares = [0u64; BATCH_CHUNK];
        let mut cubes = [0u64; BATCH_CHUNK];
        let mut weights = [0i64; BATCH_CHUNK];
        let mut buckets = [0usize; BATCH_CHUNK];
        let mut signs = [0i64; BATCH_CHUNK];
        for chunk in batch.chunks(BATCH_CHUNK) {
            let n = chunk.len();
            for (j, u) in chunk.iter().enumerate() {
                // Reduce each key once and precompute its square and cube —
                // every table's degree-3 sign polynomial reuses them.
                let x = reduce(u.value);
                reduced[j] = x;
                squares[j] = mul_mod(x, x);
                cubes[j] = mul_mod(squares[j], x);
                weights[j] = u.weight;
            }
            for i in 0..t {
                self.schema.bucket_hash[i].bucket_batch(&reduced[..n], &mut buckets[..n]);
                self.schema.sign[i].sign_batch_with_powers(
                    &reduced[..n],
                    &squares[..n],
                    &cubes[..n],
                    &mut signs[..n],
                );
                let row = &mut self.counters[i * b..(i + 1) * b];
                for j in 0..n {
                    row[buckets[j]] += weights[j] * signs[j];
                }
            }
        }
    }

    /// CountSketch point estimate of `f(v)`: median over tables of
    /// `ξ_i(v)·C[i][h_i(v)]`.
    ///
    /// Allocation-free for schemas with at most 64 tables: SKIMDENSE calls
    /// this once per candidate value, so the median scratch lives on the
    /// stack rather than hitting the allocator on every probe.
    pub fn point_estimate(&self, v: u64) -> i64 {
        let t = self.schema.tables;
        let b = self.schema.buckets;
        let mut stack = [0i64; MAX_STACK_TABLES];
        let mut heap: Vec<i64>;
        let ests: &mut [i64] = if t <= MAX_STACK_TABLES {
            &mut stack[..t]
        } else {
            heap = vec![0; t];
            &mut heap
        };
        for (i, e) in ests.iter_mut().enumerate() {
            *e = self.schema.sign(i, v) * self.counters[i * b + self.schema.bucket(i, v)];
        }
        median_i64(ests)
    }

    /// Per-table point estimate (used by the skimmed sub-join estimators,
    /// which need one estimate *per table* before their own median step).
    #[inline]
    pub fn point_estimate_in_table(&self, i: usize, v: u64) -> i64 {
        let b = self.schema.buckets;
        self.schema.sign(i, v) * self.counters[i * b + self.schema.bucket(i, v)]
    }

    /// Estimates the self-join size `F₂` as the median over tables of
    /// `Σ_q C[i][q]²` — each table is an (s2 = b)-bucketed AMS estimator.
    ///
    /// Accumulates in i128: a single counter near `i32::MAX` already puts
    /// `c²` within a factor of four of `i64::MAX`, so summing squares over
    /// a table overflows i64 long before the counters themselves do.
    pub fn self_join_estimate(&self) -> f64 {
        let b = self.schema.buckets;
        let mut per_table: Vec<i128> = (0..self.schema.tables)
            .map(|i| {
                self.counters[i * b..(i + 1) * b]
                    .iter()
                    .map(|&c| c as i128 * c as i128)
                    .sum()
            })
            .collect();
        median_i128(&mut per_table) as f64
    }

    /// Estimates the inner product `f·g` as the median over tables of the
    /// bucket-wise counter product `Σ_q C_F[i][q]·C_G[i][q]`. This is the
    /// sparse⋈sparse estimator of ESTSKIMJOINSIZE, usable standalone as a
    /// "hash AGMS" join estimator.
    pub fn join_estimate(&self, other: &HashSketch) -> f64 {
        assert!(
            self.compatible(other),
            "join estimation requires sketches under the same schema"
        );
        let b = self.schema.buckets;
        let mut per_table: Vec<i128> = (0..self.schema.tables)
            .map(|i| {
                let base = i * b;
                (0..b)
                    .map(|q| self.counters[base + q] as i128 * other.counters[base + q] as i128)
                    .sum()
            })
            .collect();
        median_i128(&mut per_table) as f64
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.schema.words()
    }

    /// Replaces the counter image. Public for wire-codec reconstruction
    /// (the skimmed-sketch codec restores per-level counters); the slice
    /// length must match the schema shape.
    pub fn overwrite_counters(&mut self, counters: &[i64]) {
        assert_eq!(counters.len(), self.counters.len());
        self.counters.copy_from_slice(counters);
    }
}

impl StreamSink for HashSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        self.add_weighted(u.value, u.weight);
    }

    fn update_batch(&mut self, batch: &[Update]) {
        self.add_batch(batch);
    }
}

impl LinearSynopsis for HashSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema)
            || (self.schema.seed == other.schema.seed
                && self.schema.tables == other.schema.tables
                && self.schema.buckets == other.schema.buckets)
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible hash sketches");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn negate(&mut self) {
        for c in &mut self.counters {
            *c = -*c;
        }
    }

    fn clear(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stream_model::{Domain, FrequencyVector};

    fn random_freqs(seed: u64, domain: u64, max: i64) -> FrequencyVector {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Domain::covering(domain);
        let counts = (0..d.size()).map(|_| rng.gen_range(0..=max)).collect();
        FrequencyVector::from_counts(d, counts)
    }

    #[test]
    fn update_touches_one_counter_per_table() {
        let schema = HashSketchSchema::new(5, 16, 3);
        let mut sk = HashSketch::new(schema.clone());
        sk.update(Update::insert(7));
        for i in 0..5 {
            let nonzero = sk.table(i).iter().filter(|&&c| c != 0).count();
            assert_eq!(nonzero, 1, "table {i}");
            assert_eq!(
                sk.table(i)[schema.bucket(i, 7)],
                schema.sign(i, 7),
                "table {i}"
            );
        }
    }

    #[test]
    fn deletes_cancel() {
        let schema = HashSketchSchema::new(3, 8, 5);
        let mut sk = HashSketch::new(schema);
        for v in 0..50 {
            sk.update(Update::insert(v));
            sk.update(Update::delete(v));
        }
        assert!(sk.counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn from_frequencies_equals_replay() {
        let fv = random_freqs(1, 128, 6);
        let schema = HashSketchSchema::new(5, 32, 7);
        let bulk = HashSketch::from_frequencies(schema.clone(), fv.nonzero());
        let mut replay = HashSketch::new(schema);
        for u in fv.to_unit_updates() {
            replay.update(u);
        }
        assert_eq!(bulk.counters(), replay.counters());
    }

    #[test]
    fn point_estimate_recovers_isolated_heavy_value() {
        let schema = HashSketchSchema::new(7, 64, 9);
        let mut sk = HashSketch::new(schema);
        sk.add_weighted(42, 1000);
        // Light noise from other values.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            sk.update(Update::insert(rng.gen_range(0..4096)));
        }
        let est = sk.point_estimate(42);
        assert!((est - 1000).abs() <= 60, "est={est}");
    }

    #[test]
    fn point_estimate_exact_when_alone() {
        let schema = HashSketchSchema::new(5, 16, 11);
        let mut sk = HashSketch::new(schema);
        sk.add_weighted(3, -17);
        assert_eq!(sk.point_estimate(3), -17);
    }

    #[test]
    fn self_join_estimate_tracks_f2() {
        let fv = random_freqs(3, 2048, 8);
        let schema = HashSketchSchema::new(7, 512, 13);
        let sk = HashSketch::from_frequencies(schema, fv.nonzero());
        let est = sk.self_join_estimate();
        let actual = fv.self_join() as f64;
        let rel = (est - actual).abs() / actual;
        assert!(rel < 0.25, "rel={rel}");
    }

    #[test]
    fn join_estimate_tracks_inner_product() {
        let f = random_freqs(4, 2048, 8);
        let g = random_freqs(5, 2048, 8);
        let schema = HashSketchSchema::new(7, 512, 17);
        let sf = HashSketch::from_frequencies(schema.clone(), f.nonzero());
        let sg = HashSketch::from_frequencies(schema, g.nonzero());
        let est = sf.join_estimate(&sg);
        let actual = f.join(&g) as f64;
        let rel = (est - actual).abs() / actual;
        assert!(rel < 0.25, "rel={rel} est={est} actual={actual}");
    }

    #[test]
    fn merge_is_union() {
        let f = random_freqs(6, 64, 3);
        let g = random_freqs(7, 64, 3);
        let schema = HashSketchSchema::new(3, 16, 19);
        let mut a = HashSketch::from_frequencies(schema.clone(), f.nonzero());
        let b = HashSketch::from_frequencies(schema.clone(), g.nonzero());
        a.merge_from(&b);
        let union = HashSketch::from_frequencies(schema, f.add(&g).nonzero());
        assert_eq!(a.counters(), union.counters());
    }

    #[test]
    #[should_panic(expected = "same schema")]
    fn join_across_schemas_panics() {
        let a = HashSketch::new(HashSketchSchema::new(2, 4, 1));
        let b = HashSketch::new(HashSketchSchema::new(2, 4, 2));
        let _ = a.join_estimate(&b);
    }

    #[test]
    fn schema_words() {
        assert_eq!(HashSketchSchema::new(11, 50, 0).words(), 550);
    }

    #[test]
    fn update_batch_matches_scalar_updates() {
        // Batch sizes straddling the chunk boundary, pow2 and non-pow2
        // bucket counts, mixed inserts and deletes. Both kernels are pinned
        // directly so the test covers them no matter which one the compile
        // target selects behind `update_batch`.
        let mut rng = StdRng::seed_from_u64(21);
        for &buckets in &[16usize, 100] {
            for &len in &[0usize, 1, 7, 255, 256, 257, 1000] {
                let batch: Vec<Update> = (0..len)
                    .map(|_| Update {
                        value: rng.gen_range(0..1u64 << 20),
                        weight: rng.gen_range(-3i64..=3),
                    })
                    .collect();
                let schema = HashSketchSchema::new(5, buckets, 23);
                let mut batched = HashSketch::new(schema.clone());
                let mut limb = HashSketch::new(schema.clone());
                let mut lazy = HashSketch::new(schema.clone());
                let mut scalar = HashSketch::new(schema);
                batched.update_batch(&batch);
                limb.add_batch_limb_lanes(&batch);
                lazy.add_batch_lazy128(&batch);
                for &u in &batch {
                    scalar.update(u);
                }
                assert_eq!(
                    batched.counters(),
                    scalar.counters(),
                    "buckets={buckets} len={len}"
                );
                assert_eq!(
                    limb.counters(),
                    scalar.counters(),
                    "limb-lane kernel, buckets={buckets} len={len}"
                );
                assert_eq!(
                    lazy.counters(),
                    scalar.counters(),
                    "lazy128 kernel, buckets={buckets} len={len}"
                );
            }
        }
    }

    #[test]
    fn self_join_estimate_survives_counters_near_i32_max() {
        // A deterministic stream of huge weights: every counter lands near
        // ±i32::MAX, so each per-table Σ c² is ≈ b·(2³¹)² ≈ 2⁶⁵ — past
        // i64::MAX. The i128 accumulation must return the exact value.
        let schema = HashSketchSchema::new(3, 8, 29);
        let mut sk = HashSketch::new(schema);
        let w = i32::MAX as i64;
        for v in 0..64u64 {
            sk.add_weighted(v, w);
        }
        let expected: i128 = {
            let b = 8usize;
            let mut per_table: Vec<i128> = (0..3)
                .map(|i| {
                    sk.counters()[i * b..(i + 1) * b]
                        .iter()
                        .map(|&c| c as i128 * c as i128)
                        .sum()
                })
                .collect();
            stream_model::metrics::median_i128(&mut per_table)
        };
        assert!(
            expected > i64::MAX as i128,
            "test must actually exceed i64: {expected}"
        );
        assert_eq!(sk.self_join_estimate(), expected as f64);
    }

    #[test]
    fn join_estimate_survives_counters_near_i32_max() {
        let schema = HashSketchSchema::new(3, 8, 31);
        let mut a = HashSketch::new(schema.clone());
        let mut b = HashSketch::new(schema);
        let w = i32::MAX as i64;
        for v in 0..64u64 {
            a.add_weighted(v, w);
            b.add_weighted(v, w);
        }
        // Identical streams: join estimate equals self-join estimate, and
        // both exceed i64::MAX.
        let est = a.join_estimate(&b);
        assert_eq!(est, a.self_join_estimate());
        assert!(est > i64::MAX as f64);
    }

    #[test]
    fn point_estimate_heap_fallback_above_stack_limit() {
        // More tables than the stack scratch holds: exercises the heap path.
        let schema = HashSketchSchema::new(65, 8, 37);
        let mut sk = HashSketch::new(schema);
        sk.add_weighted(11, -42);
        assert_eq!(sk.point_estimate(11), -42);
    }
}
