//! KMV (k-minimum-values) distinct-count synopsis.
//!
//! The paper's related work covers distinct-value estimation \[6, 7\] as a
//! sibling problem, and the query engine needs it for `COUNT DISTINCT`
//! variants of its aggregates (and for reporting `F₀` of a stream without
//! the exact reference). KMV keeps the `k` smallest hash values seen; with
//! `m ≥ k` distinct elements, the `k`-th smallest hash `h₍ₖ₎` satisfies
//! `E[h₍ₖ₎/2⁶⁴] ≈ k/m`, so `(k−1)/normalized(h₍ₖ₎)` estimates `m` with
//! relative error `O(1/√k)`.
//!
//! Unlike the linear sketches, KMV is insert-only (a deletion would need
//! to know whether other copies remain) — the classic trade-off the
//! paper's linearity discussion highlights; we document rather than hide
//! it, and `DistinctSketch::update` ignores deletes by design, counting
//! *ever-seen* distinct values.

use std::collections::BTreeSet;
use stream_hash::SeedSequence;
use stream_hash::TabulationHash;
use stream_model::update::{StreamSink, Update};

/// A KMV sketch estimating the number of distinct values ever inserted.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    hash: TabulationHash,
    k: usize,
    /// The k smallest distinct hash values seen.
    mins: BTreeSet<u64>,
}

impl DistinctSketch {
    /// A sketch keeping `k ≥ 2` minima, seeded from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "k must be at least 2");
        Self {
            // Full 64-bit range; tabulation is plenty for KMV.
            hash: TabulationHash::from_seed(SeedSequence::new(seed).fork(0xD157), usize::MAX),
            k,
            mins: BTreeSet::new(),
        }
    }

    /// Observes a value.
    pub fn observe(&mut self, v: u64) {
        let h = self.hash.hash(v);
        if self.mins.len() < self.k {
            self.mins.insert(h);
            return;
        }
        let current_max = *self.mins.iter().next_back().expect("nonempty");
        if h < current_max && !self.mins.contains(&h) {
            self.mins.insert(h);
            self.mins.remove(&current_max);
        }
    }

    /// Estimated number of distinct values observed.
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            // Fewer than k distinct hashes seen: the set is (whp) exact.
            return self.mins.len() as f64;
        }
        let kth = *self.mins.iter().next_back().expect("nonempty");
        let normalized = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / normalized
    }

    /// Merges another sketch built with the same `k` and seed (union
    /// semantics: the estimate covers values seen by either).
    pub fn merge_from(&mut self, other: &DistinctSketch) {
        assert_eq!(self.k, other.k, "k mismatch");
        for &h in &other.mins {
            self.mins.insert(h);
        }
        while self.mins.len() > self.k {
            let max = *self.mins.iter().next_back().expect("nonempty");
            self.mins.remove(&max);
        }
    }

    /// Memory footprint in retained hash values.
    pub fn retained(&self) -> usize {
        self.mins.len()
    }
}

impl StreamSink for DistinctSketch {
    fn update(&mut self, u: Update) {
        // Deletions cannot be reflected without per-value multiplicity;
        // KMV counts ever-seen distinct values (documented semantics).
        if u.weight > 0 {
            self.observe(u.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_below_k() {
        let mut sk = DistinctSketch::new(64, 1);
        for v in 0..50u64 {
            sk.observe(v);
            sk.observe(v); // duplicates must not inflate
        }
        assert_eq!(sk.estimate(), 50.0);
    }

    #[test]
    fn estimates_large_cardinalities() {
        let mut sk = DistinctSketch::new(256, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let truth = 100_000u64;
        for _ in 0..300_000 {
            sk.observe(rng.gen_range(0..truth));
        }
        // Not all 100k values will be drawn; compute the exact count.
        let mut seen = std::collections::HashSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300_000 {
            seen.insert(rng.gen_range(0..truth));
        }
        let est = sk.estimate();
        let rel = (est - seen.len() as f64).abs() / seen.len() as f64;
        // k = 256 → stderr ≈ 1/16 ≈ 6%; allow 3 sigma.
        assert!(rel < 0.2, "est={est} truth={} rel={rel}", seen.len());
    }

    #[test]
    fn duplicates_do_not_move_the_estimate() {
        let mut a = DistinctSketch::new(64, 4);
        let mut b = DistinctSketch::new(64, 4);
        for v in 0..1000u64 {
            a.observe(v);
            b.observe(v);
            b.observe(v);
            b.observe(v);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn merge_is_union() {
        let mut a = DistinctSketch::new(128, 5);
        let mut b = DistinctSketch::new(128, 5);
        let mut all = DistinctSketch::new(128, 5);
        for v in 0..5000u64 {
            if v % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        a.merge_from(&b);
        assert_eq!(a.estimate(), all.estimate());
        assert!(a.retained() <= 128);
    }

    #[test]
    fn deletes_are_ignored_by_design() {
        let mut sk = DistinctSketch::new(16, 6);
        sk.update(Update::insert(7));
        sk.update(Update::delete(7));
        assert_eq!(sk.estimate(), 1.0, "KMV counts ever-seen values");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_k_rejected() {
        let _ = DistinctSketch::new(1, 0);
    }
}
