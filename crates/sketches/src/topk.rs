//! Streaming top-k tracking over a hash sketch — the full COUNTSKETCH
//! algorithm of \[8\].
//!
//! The hash sketch alone answers point queries; the original CountSketch
//! algorithm additionally maintains, online, the set of `k` values whose
//! estimated frequencies are largest. SKIMDENSE's naive variant instead
//! scans the whole domain after the fact; this tracker is the streaming
//! counterpart (and backs the query engine's continuous heavy-hitter
//! reporting).

use crate::hash_sketch::HashSketch;
use std::collections::HashMap;
use stream_model::update::{StreamSink, Update};

/// CountSketch with an online top-k candidate set.
#[derive(Debug, Clone)]
pub struct TopKSketch {
    sketch: HashSketch,
    k: usize,
    /// Current candidates: value → last point estimate.
    candidates: HashMap<u64, i64>,
    /// Smallest estimate currently in the candidate set (refreshed lazily).
    floor: i64,
}

impl TopKSketch {
    /// Wraps `sketch` (normally empty) with a top-`k` tracker.
    pub fn new(sketch: HashSketch, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            sketch,
            k,
            candidates: HashMap::with_capacity(2 * k),
            floor: 0,
        }
    }

    /// The underlying hash sketch.
    pub fn sketch(&self) -> &HashSketch {
        &self.sketch
    }

    /// Current top-k candidates as `(value, estimated frequency)`, sorted
    /// by decreasing estimate.
    pub fn top(&self) -> Vec<(u64, i64)> {
        let mut out: Vec<(u64, i64)> = self.candidates.iter().map(|(&v, &e)| (v, e)).collect();
        out.sort_by_key(|&(v, e)| (std::cmp::Reverse(e), v));
        out.truncate(self.k);
        out
    }

    fn shrink(&mut self) {
        // Keep at most 2k candidates; drop the weakest half by estimate.
        if self.candidates.len() <= 2 * self.k {
            return;
        }
        let mut all: Vec<(u64, i64)> = self.candidates.drain().collect();
        all.sort_by_key(|&(v, e)| (std::cmp::Reverse(e), v));
        all.truncate(2 * self.k);
        self.floor = all.last().map(|&(_, e)| e).unwrap_or(0);
        self.candidates = all.into_iter().collect();
    }
}

impl StreamSink for TopKSketch {
    fn update(&mut self, u: Update) {
        self.sketch.update(u);
        let est = self.sketch.point_estimate(u.value);
        if self.candidates.contains_key(&u.value) {
            if est <= 0 {
                self.candidates.remove(&u.value);
            } else {
                self.candidates.insert(u.value, est);
            }
        } else if est > self.floor || self.candidates.len() < self.k {
            self.candidates.insert(u.value, est);
            self.shrink();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_sketch::HashSketchSchema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::{Domain, FrequencyVector};

    #[test]
    fn finds_planted_heavy_hitters() {
        let schema = HashSketchSchema::new(5, 256, 1);
        let mut tk = TopKSketch::new(HashSketch::new(schema), 3);
        let d = Domain::with_log2(12);
        let zipf = ZipfGenerator::new(d, 0.5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut updates = zipf.generate(&mut rng, 5_000);
        // Plant three unmissable values.
        for _ in 0..2_000 {
            updates.push(Update::insert(100));
            updates.push(Update::insert(200));
            updates.push(Update::insert(300));
        }
        let fv = FrequencyVector::from_updates(d, updates.iter().copied());
        for u in updates {
            tk.update(u);
        }
        let top: Vec<u64> = tk.top().iter().map(|&(v, _)| v).collect();
        for planted in [100, 200, 300] {
            assert!(top.contains(&planted), "missing {planted}, top={top:?}");
        }
        // Estimates near the truth.
        for (v, e) in tk.top() {
            let actual = fv.get(v);
            assert!(
                (e - actual).abs() as f64 <= 0.2 * actual as f64 + 50.0,
                "v={v} est={e} actual={actual}"
            );
        }
    }

    #[test]
    fn deleted_values_fall_out() {
        let schema = HashSketchSchema::new(5, 64, 2);
        let mut tk = TopKSketch::new(HashSketch::new(schema), 2);
        for _ in 0..100 {
            tk.update(Update::insert(7));
        }
        assert!(tk.top().iter().any(|&(v, _)| v == 7));
        for _ in 0..100 {
            tk.update(Update::delete(7));
        }
        assert!(!tk.top().iter().any(|&(v, _)| v == 7), "top={:?}", tk.top());
    }

    #[test]
    fn candidate_set_stays_bounded() {
        let schema = HashSketchSchema::new(3, 64, 3);
        let mut tk = TopKSketch::new(HashSketch::new(schema), 5);
        let mut rng = StdRng::seed_from_u64(4);
        let uni = stream_model::gen::UniformGenerator::new(Domain::with_log2(14));
        for u in uni.generate(&mut rng, 20_000) {
            tk.update(u);
        }
        assert!(tk.candidates.len() <= 10 + 1);
        assert!(tk.top().len() <= 5);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let schema = HashSketchSchema::new(2, 8, 0);
        let _ = TopKSketch::new(HashSketch::new(schema), 0);
    }
}
