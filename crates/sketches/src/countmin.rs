//! Count-Min sketch (Cormode & Muthukrishnan) — ablation comparator.
//!
//! Not part of the paper's 2004 toolbox, but the natural modern question
//! about SKIMDENSE is "why CountSketch-style ±1 buckets rather than
//! Count-Min?". The answer — Count-Min's point estimates carry a one-sided
//! `O(L1/b)` bias that scales with the *first* moment while CountSketch's
//! two-sided error scales with `√(F₂/b)` — is demonstrated empirically by
//! the `ablation_threshold` harness, which needs this implementation.

use crate::hash_sketch::BATCH_CHUNK;
use crate::linear::LinearSynopsis;
use std::sync::Arc;
use stream_hash::lanes;
use stream_hash::prime::reduce;
use stream_hash::{PairwiseHash, SeedSequence};
use stream_model::update::{StreamSink, Update};

/// Shared hash functions for a family of Count-Min sketches.
#[derive(Debug)]
pub struct CountMinSchema {
    depth: usize,
    width: usize,
    seed: u64,
    hashes: Vec<PairwiseHash>,
}

impl CountMinSchema {
    /// Creates a schema of `depth` rows × `width` counters from `seed`.
    pub fn new(depth: usize, width: usize, seed: u64) -> Arc<Self> {
        assert!(depth > 0 && width > 0, "schema must be non-degenerate");
        let root = SeedSequence::new(seed).fork(0x434D /* "CM" */);
        let hashes = (0..depth)
            // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
            .map(|i| PairwiseHash::from_seed(root.fork(i as u64), width))
            .collect();
        Arc::new(Self {
            depth,
            width,
            seed,
            hashes,
        })
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.depth * self.width
    }

    #[inline]
    fn bucket(&self, row: usize, v: u64) -> usize {
        self.hashes[row].bucket(v)
    }
}

/// A Count-Min sketch of one stream.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    schema: Arc<CountMinSchema>,
    counters: Vec<i64>,
}

impl CountMinSketch {
    /// An empty sketch under `schema`.
    pub fn new(schema: Arc<CountMinSchema>) -> Self {
        let n = schema.words();
        Self {
            schema,
            counters: vec![0; n],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<CountMinSchema> {
        &self.schema
    }

    /// Point estimate of `f(v)`: minimum over rows. An *over*-estimate in
    /// expectation for non-negative streams (error ≤ `2·L1/width` w.p. ≥ ½
    /// per row).
    pub fn point_estimate(&self, v: u64) -> i64 {
        let w = self.schema.width;
        (0..self.schema.depth)
            .map(|r| self.counters[r * w + self.schema.bucket(r, v)])
            .min()
            // ss-analyze: allow(a10-reachable-panic) -- schema depth is validated nonzero at construction, so the row iterator is nonempty
            .expect("depth > 0")
    }

    /// Inner-product estimate: minimum over rows of the bucket-wise
    /// product — an upper bound in expectation for non-negative streams.
    pub fn join_estimate(&self, other: &CountMinSketch) -> f64 {
        assert!(
            self.compatible(other),
            "join estimation requires sketches under the same schema"
        );
        let w = self.schema.width;
        (0..self.schema.depth)
            .map(|r| {
                let base = r * w;
                (0..w)
                    .map(|q| self.counters[base + q] as i128 * other.counters[base + q] as i128)
                    .sum::<i128>()
            })
            .min()
            // ss-analyze: allow(a10-reachable-panic) -- schema depth is validated nonzero at construction, so the row iterator is nonempty
            .expect("depth > 0") as f64
    }

    /// Applies a batch of updates with the loops interchanged: outer loop
    /// over rows, inner loop over a stack-resident chunk of the batch.
    /// Values are reduced into the hash field once per chunk and shared by
    /// every row. On AVX2-or-wider targets ([`lanes::VECTOR_KERNEL`]) the
    /// bucket hashes run the blocked 32-bit limb-lane kernel. Counters are
    /// bit-identical to the per-update path either way.
    pub fn add_batch(&mut self, batch: &[Update]) {
        if stream_telemetry::ENABLED {
            static STATS: std::sync::OnceLock<crate::telem::BatchStats> =
                std::sync::OnceLock::new();
            crate::telem::batch_stats(&STATS, "countmin")
                .note(batch.len(), batch.len() * self.schema.depth);
        }
        if lanes::VECTOR_KERNEL {
            self.add_batch_limb_lanes(batch);
        } else {
            self.add_batch_lazy128(batch);
        }
    }

    /// Blocked limb-lane kernel: keys split into 32-bit limbs once per
    /// chunk, buckets evaluated per row via [`PairwiseHash::bucket_block`].
    ///
    /// Public so benches and property tests can pin this kernel regardless
    /// of what [`CountMinSketch::add_batch`] would select; production code
    /// should call `add_batch` and let the selector pick.
    pub fn add_batch_limb_lanes(&mut self, batch: &[Update]) {
        let w = self.schema.width;
        let mut x0 = [0u64; BATCH_CHUNK];
        let mut x1 = [0u64; BATCH_CHUNK];
        let mut weights = [0i64; BATCH_CHUNK];
        let mut buckets = [0usize; BATCH_CHUNK];
        for chunk in batch.chunks(BATCH_CHUNK) {
            let n = chunk.len();
            for (j, u) in chunk.iter().enumerate() {
                let (lo, hi) = lanes::split61(reduce(u.value));
                x0[j] = lo;
                x1[j] = hi;
                weights[j] = u.weight;
            }
            for r in 0..self.schema.depth {
                self.schema.hashes[r].bucket_block(&x0[..n], &x1[..n], &mut buckets[..n]);
                let row = &mut self.counters[r * w..(r + 1) * w];
                if w.is_power_of_two() {
                    let m = w - 1;
                    for j in 0..n {
                        row[buckets[j] & m] += weights[j];
                    }
                } else {
                    for j in 0..n {
                        row[buckets[j]] += weights[j];
                    }
                }
            }
        }
    }

    /// Lazy-`u128` kernel (the scalar-multiplier path).
    ///
    /// Public so benches and property tests can pin this kernel regardless
    /// of what [`CountMinSketch::add_batch`] would select; production code
    /// should call `add_batch` and let the selector pick.
    pub fn add_batch_lazy128(&mut self, batch: &[Update]) {
        let w = self.schema.width;
        let mut reduced = [0u64; BATCH_CHUNK];
        let mut weights = [0i64; BATCH_CHUNK];
        let mut buckets = [0usize; BATCH_CHUNK];
        for chunk in batch.chunks(BATCH_CHUNK) {
            let n = chunk.len();
            for (j, u) in chunk.iter().enumerate() {
                reduced[j] = reduce(u.value);
                weights[j] = u.weight;
            }
            for r in 0..self.schema.depth {
                self.schema.hashes[r].bucket_batch(&reduced[..n], &mut buckets[..n]);
                let row = &mut self.counters[r * w..(r + 1) * w];
                for j in 0..n {
                    row[buckets[j]] += weights[j];
                }
            }
        }
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.schema.words()
    }

    /// Raw counters (row-major).
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Replaces the counter image (wire-codec reconstruction).
    pub(crate) fn overwrite_counters(&mut self, counters: &[i64]) {
        assert_eq!(counters.len(), self.counters.len());
        self.counters.copy_from_slice(counters);
    }
}

impl StreamSink for CountMinSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        let w = self.schema.width;
        for r in 0..self.schema.depth {
            self.counters[r * w + self.schema.bucket(r, u.value)] += u.weight;
        }
    }

    fn update_batch(&mut self, batch: &[Update]) {
        self.add_batch(batch);
    }
}

impl LinearSynopsis for CountMinSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema)
            || (self.schema.seed == other.schema.seed
                && self.schema.depth == other.schema.depth
                && self.schema.width == other.schema.width)
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible Count-Min sketches");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn negate(&mut self) {
        for c in &mut self.counters {
            *c = -*c;
        }
    }

    fn clear(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn point_estimate_never_underestimates_nonneg_streams() {
        let schema = CountMinSchema::new(4, 64, 1);
        let mut sk = CountMinSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = vec![0i64; 1024];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..1024u64);
            truth[v as usize] += 1;
            sk.update(Update::insert(v));
        }
        for v in 0..1024u64 {
            assert!(sk.point_estimate(v) >= truth[v as usize], "v={v}");
        }
    }

    #[test]
    fn point_estimate_error_bounded_by_l1_over_width() {
        let schema = CountMinSchema::new(5, 256, 2);
        let mut sk = CountMinSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000u64;
        let mut truth = vec![0i64; 4096];
        for _ in 0..n {
            let v = rng.gen_range(0..4096u64);
            truth[v as usize] += 1;
            sk.update(Update::insert(v));
        }
        // With depth 5, overshoot beyond 2·L1/width on all rows at once is
        // very unlikely; allow a couple of stragglers.
        let bound = 2 * n as i64 / 256;
        let violations = (0..4096u64)
            .filter(|&v| sk.point_estimate(v) - truth[v as usize] > bound)
            .count();
        assert!(violations < 8, "violations={violations}");
    }

    #[test]
    fn join_estimate_upper_bounds_truth_on_average() {
        let schema = CountMinSchema::new(4, 128, 3);
        let mut f = CountMinSketch::new(schema.clone());
        let mut g = CountMinSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(3);
        let mut tf = vec![0i64; 512];
        let mut tg = vec![0i64; 512];
        for _ in 0..5_000 {
            let v = rng.gen_range(0..512u64);
            tf[v as usize] += 1;
            f.update(Update::insert(v));
            let w = rng.gen_range(0..512u64);
            tg[w as usize] += 1;
            g.update(Update::insert(w));
        }
        let actual: i64 = tf.iter().zip(&tg).map(|(&a, &b)| a * b).sum();
        let est = f.join_estimate(&g);
        assert!(est >= actual as f64 * 0.99, "est={est} actual={actual}");
    }

    #[test]
    fn update_batch_matches_scalar_updates() {
        let mut rng = StdRng::seed_from_u64(44);
        for &width in &[64usize, 100] {
            for &len in &[0usize, 1, 256, 257, 900] {
                let batch: Vec<Update> = (0..len)
                    .map(|_| Update {
                        value: rng.gen_range(0..1u64 << 20),
                        weight: rng.gen_range(-3i64..=3),
                    })
                    .collect();
                let schema = CountMinSchema::new(4, width, 45);
                let mut batched = CountMinSketch::new(schema.clone());
                let mut limb = CountMinSketch::new(schema.clone());
                let mut lazy = CountMinSketch::new(schema.clone());
                let mut scalar = CountMinSketch::new(schema);
                batched.update_batch(&batch);
                limb.add_batch_limb_lanes(&batch);
                lazy.add_batch_lazy128(&batch);
                for &u in &batch {
                    scalar.update(u);
                }
                assert_eq!(
                    batched.counters(),
                    scalar.counters(),
                    "width={width} len={len}"
                );
                assert_eq!(
                    limb.counters(),
                    scalar.counters(),
                    "limb-lane kernel, width={width} len={len}"
                );
                assert_eq!(
                    lazy.counters(),
                    scalar.counters(),
                    "lazy128 kernel, width={width} len={len}"
                );
            }
        }
    }

    #[test]
    fn merge_and_negate_cancel() {
        let schema = CountMinSchema::new(3, 32, 4);
        let mut a = CountMinSketch::new(schema.clone());
        for v in 0..100 {
            a.update(Update::insert(v % 17));
        }
        let mut b = a.clone();
        b.negate();
        a.merge_from(&b);
        assert!(a.counters.iter().all(|&c| c == 0));
    }
}
