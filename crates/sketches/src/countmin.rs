//! Count-Min sketch (Cormode & Muthukrishnan) — ablation comparator.
//!
//! Not part of the paper's 2004 toolbox, but the natural modern question
//! about SKIMDENSE is "why CountSketch-style ±1 buckets rather than
//! Count-Min?". The answer — Count-Min's point estimates carry a one-sided
//! `O(L1/b)` bias that scales with the *first* moment while CountSketch's
//! two-sided error scales with `√(F₂/b)` — is demonstrated empirically by
//! the `ablation_threshold` harness, which needs this implementation.

use crate::linear::LinearSynopsis;
use std::sync::Arc;
use stream_hash::{PairwiseHash, SeedSequence};
use stream_model::update::{StreamSink, Update};

/// Shared hash functions for a family of Count-Min sketches.
#[derive(Debug)]
pub struct CountMinSchema {
    depth: usize,
    width: usize,
    seed: u64,
    hashes: Vec<PairwiseHash>,
}

impl CountMinSchema {
    /// Creates a schema of `depth` rows × `width` counters from `seed`.
    pub fn new(depth: usize, width: usize, seed: u64) -> Arc<Self> {
        assert!(depth > 0 && width > 0, "schema must be non-degenerate");
        let root = SeedSequence::new(seed).fork(0x434D /* "CM" */);
        let hashes = (0..depth)
            .map(|i| PairwiseHash::from_seed(root.fork(i as u64), width))
            .collect();
        Arc::new(Self {
            depth,
            width,
            seed,
            hashes,
        })
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.depth * self.width
    }

    #[inline]
    fn bucket(&self, row: usize, v: u64) -> usize {
        self.hashes[row].bucket(v)
    }
}

/// A Count-Min sketch of one stream.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    schema: Arc<CountMinSchema>,
    counters: Vec<i64>,
}

impl CountMinSketch {
    /// An empty sketch under `schema`.
    pub fn new(schema: Arc<CountMinSchema>) -> Self {
        let n = schema.words();
        Self {
            schema,
            counters: vec![0; n],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<CountMinSchema> {
        &self.schema
    }

    /// Point estimate of `f(v)`: minimum over rows. An *over*-estimate in
    /// expectation for non-negative streams (error ≤ `2·L1/width` w.p. ≥ ½
    /// per row).
    pub fn point_estimate(&self, v: u64) -> i64 {
        let w = self.schema.width;
        (0..self.schema.depth)
            .map(|r| self.counters[r * w + self.schema.bucket(r, v)])
            .min()
            .expect("depth > 0")
    }

    /// Inner-product estimate: minimum over rows of the bucket-wise
    /// product — an upper bound in expectation for non-negative streams.
    pub fn join_estimate(&self, other: &CountMinSketch) -> f64 {
        assert!(
            self.compatible(other),
            "join estimation requires sketches under the same schema"
        );
        let w = self.schema.width;
        (0..self.schema.depth)
            .map(|r| {
                let base = r * w;
                (0..w)
                    .map(|q| self.counters[base + q] as i128 * other.counters[base + q] as i128)
                    .sum::<i128>()
            })
            .min()
            .expect("depth > 0") as f64
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.schema.words()
    }

    /// Raw counters (row-major).
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Replaces the counter image (wire-codec reconstruction).
    pub(crate) fn overwrite_counters(&mut self, counters: &[i64]) {
        assert_eq!(counters.len(), self.counters.len());
        self.counters.copy_from_slice(counters);
    }
}

impl StreamSink for CountMinSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        let w = self.schema.width;
        for r in 0..self.schema.depth {
            self.counters[r * w + self.schema.bucket(r, u.value)] += u.weight;
        }
    }
}

impl LinearSynopsis for CountMinSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema)
            || (self.schema.seed == other.schema.seed
                && self.schema.depth == other.schema.depth
                && self.schema.width == other.schema.width)
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible Count-Min sketches");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn negate(&mut self) {
        for c in &mut self.counters {
            *c = -*c;
        }
    }

    fn clear(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn point_estimate_never_underestimates_nonneg_streams() {
        let schema = CountMinSchema::new(4, 64, 1);
        let mut sk = CountMinSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = vec![0i64; 1024];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..1024u64);
            truth[v as usize] += 1;
            sk.update(Update::insert(v));
        }
        for v in 0..1024u64 {
            assert!(sk.point_estimate(v) >= truth[v as usize], "v={v}");
        }
    }

    #[test]
    fn point_estimate_error_bounded_by_l1_over_width() {
        let schema = CountMinSchema::new(5, 256, 2);
        let mut sk = CountMinSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000u64;
        let mut truth = vec![0i64; 4096];
        for _ in 0..n {
            let v = rng.gen_range(0..4096u64);
            truth[v as usize] += 1;
            sk.update(Update::insert(v));
        }
        // With depth 5, overshoot beyond 2·L1/width on all rows at once is
        // very unlikely; allow a couple of stragglers.
        let bound = 2 * n as i64 / 256;
        let violations = (0..4096u64)
            .filter(|&v| sk.point_estimate(v) - truth[v as usize] > bound)
            .count();
        assert!(violations < 8, "violations={violations}");
    }

    #[test]
    fn join_estimate_upper_bounds_truth_on_average() {
        let schema = CountMinSchema::new(4, 128, 3);
        let mut f = CountMinSketch::new(schema.clone());
        let mut g = CountMinSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(3);
        let mut tf = vec![0i64; 512];
        let mut tg = vec![0i64; 512];
        for _ in 0..5_000 {
            let v = rng.gen_range(0..512u64);
            tf[v as usize] += 1;
            f.update(Update::insert(v));
            let w = rng.gen_range(0..512u64);
            tg[w as usize] += 1;
            g.update(Update::insert(w));
        }
        let actual: i64 = tf.iter().zip(&tg).map(|(&a, &b)| a * b).sum();
        let est = f.join_estimate(&g);
        assert!(est >= actual as f64 * 0.99, "est={est} actual={actual}");
    }

    #[test]
    fn merge_and_negate_cancel() {
        let schema = CountMinSchema::new(3, 32, 4);
        let mut a = CountMinSketch::new(schema.clone());
        for v in 0..100 {
            a.update(Update::insert(v % 17));
        }
        let mut b = a.clone();
        b.negate();
        a.merge_from(&b);
        assert!(a.counters.iter().all(|&c| c == 0));
    }
}
