//! Basic AGMS ("tug-of-war") sketching — the paper's baseline \[3, 4\].
//!
//! The synopsis is an `s1 × s2` array of *atomic sketches*
//! `X[i][k] = Σ_v f(v)·ξ_{ik}(v)`, each with an independent four-wise ±1
//! family. ESTJOINSIZE (Fig. 2 of the paper) estimates `f·g` as the median
//! over the `s1` rows of the per-row average of `X_F[i][k]·X_G[i][k]`:
//! averaging over `s2` shrinks the variance, the median boosts the success
//! probability.
//!
//! The two costs that motivate the skimmed-sketch algorithm are visible
//! directly in this module: every update touches **all** `s1·s2` counters,
//! and matching a given additive-error target requires
//! `s2 = O(SJ(F)·SJ(G)/ε²J²)` — the *square* of the space lower bound.

use crate::hash_sketch::BATCH_CHUNK;
use crate::linear::LinearSynopsis;
use std::sync::Arc;
use stream_hash::{BchKey, BchSignFamily, SeedSequence};
use stream_model::metrics::median_f64;
use stream_model::update::{StreamSink, Update};

/// Shared randomness for a family of compatible AGMS sketches.
///
/// The join estimator requires the `F` and `G` sketches to use the *same*
/// sign families; constructing both from one `Arc<AgmsSchema>` guarantees
/// it (and `estimate_join` enforces it).
#[derive(Debug)]
pub struct AgmsSchema {
    rows: usize,
    cols: usize,
    seed: u64,
    signs: Vec<BchSignFamily>,
}

impl AgmsSchema {
    /// Creates a schema with `rows` (= `s1`, median boosting) and `cols`
    /// (= `s2`, averaging) atomic sketches, derived from `seed`.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Arc<Self> {
        assert!(rows > 0 && cols > 0, "schema must have at least one cell");
        let root = SeedSequence::new(seed).fork(0x41474D53 /* "AGMS" */);
        let signs = (0..rows * cols)
            // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
            .map(|i| BchSignFamily::from_seed(root.fork(i as u64)))
            .collect();
        Arc::new(Self {
            rows,
            cols,
            seed,
            signs,
        })
    }

    /// Number of rows (`s1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`s2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Root seed the families were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total synopsis size in counters ("words", as the paper counts
    /// space).
    pub fn words(&self) -> usize {
        self.rows * self.cols
    }

    /// Sign of value `v` in cell `idx` (row-major).
    #[inline]
    pub fn sign(&self, idx: usize, v: u64) -> i64 {
        self.signs[idx].sign(v)
    }

    /// Sign of a precomputed BCH key in cell `idx`.
    #[inline]
    fn sign_key(&self, idx: usize, key: BchKey) -> i64 {
        self.signs[idx].sign_key(key)
    }
}

/// A basic AGMS sketch of one stream.
///
/// # Examples
///
/// ```
/// use stream_sketches::{AgmsSchema, AgmsSketch};
/// use stream_model::{StreamSink, Update};
///
/// let schema = AgmsSchema::new(5, 256, 1);
/// let mut f = AgmsSketch::new(schema.clone());
/// let mut g = AgmsSketch::new(schema);
/// for v in 0..1000u64 {
///     f.update(Update::insert(v % 50));
///     g.update(Update::insert(v % 100));
/// }
/// // True join: 50 shared values × 20 × 10 = 10000.
/// let est = f.estimate_join(&g);
/// assert!((est - 10_000.0).abs() < 4_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct AgmsSketch {
    schema: Arc<AgmsSchema>,
    counters: Vec<i64>,
}

impl AgmsSketch {
    /// An empty sketch under `schema`.
    pub fn new(schema: Arc<AgmsSchema>) -> Self {
        let n = schema.words();
        Self {
            schema,
            counters: vec![0; n],
        }
    }

    /// The schema this sketch was built under.
    pub fn schema(&self) -> &Arc<AgmsSchema> {
        &self.schema
    }

    /// Raw counter values (row-major), for tests and serialization.
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Builds a sketch directly from an explicit frequency vector — the
    /// bulk path the experiment harness uses for static workloads. By
    /// linearity this is *identical* to replaying the stream update by
    /// update, just cheaper: one pass over the nonzero frequencies.
    pub fn from_frequencies<'a, I>(schema: Arc<AgmsSchema>, frequencies: I) -> Self
    where
        I: IntoIterator<Item = (u64, i64)> + 'a,
    {
        let mut sk = Self::new(schema);
        for (v, f) in frequencies {
            if f != 0 {
                sk.add_weighted(v, f);
            }
        }
        sk
    }

    /// Adds `w` copies of `v` to every atomic sketch. The expensive field
    /// cube of the BCH extension is computed once and shared by all
    /// `s1·s2` families.
    #[inline]
    pub fn add_weighted(&mut self, v: u64, w: i64) {
        let key = BchKey::new(v);
        for (idx, c) in self.counters.iter_mut().enumerate() {
            *c += w * self.schema.sign_key(idx, key);
        }
    }

    /// Applies a batch of updates with the loops interchanged: outer loop
    /// over the `s1·s2` cells, inner loop over a chunk of the batch.
    ///
    /// BCH keys (the field cubes) are computed once per element per chunk
    /// and shared by every cell; each cell's contribution is summed in a
    /// register and written back once, so the counter array is walked a
    /// single time per chunk instead of once per update. Counters are
    /// bit-identical to the per-update path.
    pub fn add_batch(&mut self, batch: &[Update]) {
        if stream_telemetry::ENABLED {
            static STATS: std::sync::OnceLock<crate::telem::BatchStats> =
                std::sync::OnceLock::new();
            // Basic AGMS touches every one of the s1·s2 counters per update.
            crate::telem::batch_stats(&STATS, "agms")
                .note(batch.len(), batch.len() * self.schema.words());
        }
        let mut keyed: Vec<(BchKey, i64)> = Vec::with_capacity(batch.len().min(BATCH_CHUNK));
        for chunk in batch.chunks(BATCH_CHUNK) {
            keyed.clear();
            keyed.extend(chunk.iter().map(|u| (BchKey::new(u.value), u.weight)));
            for (idx, c) in self.counters.iter_mut().enumerate() {
                let fam = &self.schema.signs[idx];
                let mut acc = 0i64;
                for &(key, w) in &keyed {
                    acc += w * fam.sign_key(key);
                }
                *c += acc;
            }
        }
    }

    /// ESTJOINSIZE (Fig. 2): estimate `f·g` from two sketches under the
    /// same schema.
    ///
    /// # Panics
    /// If the sketches were built under different schemas.
    pub fn estimate_join(&self, other: &AgmsSketch) -> f64 {
        assert!(
            self.compatible(other),
            "join estimation requires sketches under the same schema"
        );
        let (rows, cols) = (self.schema.rows, self.schema.cols);
        let mut row_means = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut acc: i128 = 0;
            let base = i * cols;
            for k in 0..cols {
                acc += self.counters[base + k] as i128 * other.counters[base + k] as i128;
            }
            row_means.push(acc as f64 / cols as f64);
        }
        median_f64(&mut row_means)
    }

    /// ESTSJSIZE: estimate the self-join size `F₂ = Σ f(v)²`.
    pub fn estimate_self_join(&self) -> f64 {
        self.estimate_join(self)
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.schema.words()
    }

    /// Replaces the counter image (wire-codec reconstruction).
    pub(crate) fn overwrite_counters(&mut self, counters: &[i64]) {
        assert_eq!(counters.len(), self.counters.len());
        self.counters.copy_from_slice(counters);
    }
}

impl StreamSink for AgmsSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        self.add_weighted(u.value, u.weight);
    }

    fn update_batch(&mut self, batch: &[Update]) {
        self.add_batch(batch);
    }
}

impl LinearSynopsis for AgmsSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema)
            || (self.schema.seed == other.schema.seed
                && self.schema.rows == other.schema.rows
                && self.schema.cols == other.schema.cols)
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible AGMS sketches");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn negate(&mut self) {
        for c in &mut self.counters {
            *c = -*c;
        }
    }

    fn clear(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stream_model::{Domain, FrequencyVector};

    fn random_freqs(seed: u64, domain: usize, max: i64) -> FrequencyVector {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Domain::covering(domain as u64);
        let counts = (0..d.size()).map(|_| rng.gen_range(0..=max)).collect();
        FrequencyVector::from_counts(d, counts)
    }

    #[test]
    fn atomic_sketch_matches_manual_projection() {
        let schema = AgmsSchema::new(2, 3, 7);
        let mut sk = AgmsSketch::new(schema.clone());
        sk.update(Update::with_measure(4, 5));
        sk.update(Update::insert(9));
        for idx in 0..schema.words() {
            let expect = 5 * schema.sign(idx, 4) + schema.sign(idx, 9);
            assert_eq!(sk.counters()[idx], expect);
        }
    }

    #[test]
    fn insert_then_delete_is_empty() {
        let schema = AgmsSchema::new(3, 5, 11);
        let mut sk = AgmsSketch::new(schema);
        for v in 0..100 {
            sk.update(Update::insert(v));
        }
        for v in 0..100 {
            sk.update(Update::delete(v));
        }
        assert!(sk.counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn from_frequencies_equals_replay() {
        let fv = random_freqs(1, 256, 5);
        let schema = AgmsSchema::new(5, 7, 13);
        let bulk = AgmsSketch::from_frequencies(schema.clone(), fv.nonzero());
        let mut replay = AgmsSketch::new(schema);
        for u in fv.to_unit_updates() {
            replay.update(u);
        }
        assert_eq!(bulk.counters(), replay.counters());
    }

    #[test]
    fn merge_equals_union() {
        let f = random_freqs(2, 128, 4);
        let g = random_freqs(3, 128, 4);
        let schema = AgmsSchema::new(3, 3, 17);
        let mut a = AgmsSketch::from_frequencies(schema.clone(), f.nonzero());
        let b = AgmsSketch::from_frequencies(schema.clone(), g.nonzero());
        a.merge_from(&b);
        let union = AgmsSketch::from_frequencies(schema, f.add(&g).nonzero());
        assert_eq!(a.counters(), union.counters());
    }

    #[test]
    fn subtract_then_clear() {
        let f = random_freqs(4, 64, 4);
        let schema = AgmsSchema::new(2, 2, 19);
        let mut a = AgmsSketch::from_frequencies(schema.clone(), f.nonzero());
        let b = a.clone();
        a.subtract_from(&b);
        assert!(a.counters().iter().all(|&c| c == 0));
        let mut c = b.clone();
        c.clear();
        assert!(c.counters().iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "same schema")]
    fn join_across_schemas_panics() {
        let a = AgmsSketch::new(AgmsSchema::new(2, 2, 1));
        let b = AgmsSketch::new(AgmsSchema::new(2, 2, 2));
        let _ = a.estimate_join(&b);
    }

    #[test]
    fn self_join_estimate_is_accurate_on_uniform_data() {
        let fv = random_freqs(5, 1024, 10);
        let schema = AgmsSchema::new(7, 200, 23);
        let sk = AgmsSketch::from_frequencies(schema, fv.nonzero());
        let est = sk.estimate_self_join();
        let actual = fv.self_join() as f64;
        let rel = (est - actual).abs() / actual;
        // With s2=200 the standard error is ~sqrt(2/200) ≈ 10%.
        assert!(rel < 0.3, "rel={rel} est={est} actual={actual}");
    }

    #[test]
    fn join_estimate_is_accurate_on_uniform_data() {
        let f = random_freqs(6, 1024, 10);
        let g = random_freqs(7, 1024, 10);
        let schema = AgmsSchema::new(7, 200, 29);
        let sf = AgmsSketch::from_frequencies(schema.clone(), f.nonzero());
        let sg = AgmsSketch::from_frequencies(schema, g.nonzero());
        let est = sf.estimate_join(&sg);
        let actual = f.join(&g) as f64;
        let rel = (est - actual).abs() / actual;
        assert!(rel < 0.3, "rel={rel} est={est} actual={actual}");
    }

    #[test]
    fn join_estimate_is_unbiased_across_seeds() {
        // Average the estimator over many independent schemas; the mean
        // must approach the true join size (Thm 2's expectation claim).
        let f = random_freqs(8, 64, 3);
        let g = random_freqs(9, 64, 3);
        let actual = f.join(&g) as f64;
        let trials = 300;
        let mut sum = 0.0;
        for t in 0..trials {
            let schema = AgmsSchema::new(1, 16, 1000 + t);
            let sf = AgmsSketch::from_frequencies(schema.clone(), f.nonzero());
            let sg = AgmsSketch::from_frequencies(schema, g.nonzero());
            sum += sf.estimate_join(&sg);
        }
        let mean = sum / trials as f64;
        let rel = (mean - actual).abs() / actual;
        assert!(rel < 0.15, "mean={mean} actual={actual}");
    }

    #[test]
    fn words_counts_all_counters() {
        assert_eq!(AgmsSketch::new(AgmsSchema::new(5, 11, 0)).words(), 55);
    }

    #[test]
    fn update_batch_matches_scalar_updates() {
        let mut rng = StdRng::seed_from_u64(33);
        for &len in &[0usize, 1, 255, 256, 257, 700] {
            let batch: Vec<Update> = (0..len)
                .map(|_| Update {
                    value: rng.gen_range(0..1u64 << 20),
                    weight: rng.gen_range(-3i64..=3),
                })
                .collect();
            let schema = AgmsSchema::new(4, 8, 35);
            let mut batched = AgmsSketch::new(schema.clone());
            let mut scalar = AgmsSketch::new(schema);
            batched.update_batch(&batch);
            for &u in &batch {
                scalar.update(u);
            }
            assert_eq!(batched.counters(), scalar.counters(), "len={len}");
        }
    }
}
