//! # ss-retry
//!
//! The workspace's one retry-delay policy: capped exponential backoff
//! with deterministic half-range jitter.
//!
//! Every retry loop in the system — the client absorbing THROTTLE
//! negative-acks, [`ResilientClient`]'s reconnect ladder, the cluster
//! router re-dialling a crashed shard — backs off through this type, so
//! retry timing has exactly one definition and one test pinning it.
//! Determinism is load-bearing: the jitter PRNG is seeded, so a chaos
//! test that replays the same fault schedule sees the same delays, while
//! different seeds keep a fleet of producers that were throttled
//! together from retrying in lockstep.
//!
//! [`ResilientClient`]: https://docs.rs/stream-server

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use std::time::Duration;

/// Knobs for [`Backoff`]: capped exponential delay with deterministic
/// jitter.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// First delay (the exponential's starting step).
    pub base: Duration,
    /// Largest step the exponential is allowed to reach.
    pub cap: Duration,
    /// Seed of the jitter PRNG — fixed seed, fixed delay sequence, so
    /// retry timing is reproducible in tests.
    pub seed: u64,
}

impl Default for BackoffConfig {
    /// 200 µs first delay (the old fixed throttle pause), capped at
    /// 50 ms.
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(50),
            seed: 0x5EED_BACC,
        }
    }
}

/// Capped exponential backoff with half-range deterministic jitter:
/// the n-th delay is uniform in `[step/2, step]` where
/// `step = min(base · 2ⁿ, cap)`. Jitter keeps a fleet of producers that
/// were throttled together from retrying in lockstep; determinism (via
/// the seeded PRNG) keeps chaos tests reproducible.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    step: Duration,
    rng: u64,
}

impl Backoff {
    /// A fresh sequence starting at `config.base`.
    pub fn new(config: &BackoffConfig) -> Self {
        Backoff {
            base: config.base,
            cap: config.cap,
            step: config.base.min(config.cap),
            rng: config.seed | 1, // xorshift64 must not start at 0
        }
    }

    /// The next delay; doubles the step (up to the cap) each call.
    pub fn delay(&mut self) -> Duration {
        let step = self.step.as_nanos() as u64;
        self.step = (self.step * 2).min(self.cap);
        let half = step / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.next_rand() % (half + 1)
        };
        Duration::from_nanos(half + jitter)
    }

    /// Back to the base step (call after a success).
    pub fn reset(&mut self) {
        self.step = self.base.min(self.cap);
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_to_cap_and_is_deterministic() {
        let config = BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            seed: 42,
        };
        let mut a = Backoff::new(&config);
        let mut b = Backoff::new(&config);
        let da: Vec<Duration> = (0..8).map(|_| a.delay()).collect();
        let db: Vec<Duration> = (0..8).map(|_| b.delay()).collect();
        assert_eq!(da, db, "same seed, same delays");
        // Every delay sits in [step/2, step] for its (capped) step.
        let mut step = config.base;
        for d in &da {
            assert!(*d >= step / 2 && *d <= step, "delay {d:?} vs step {step:?}");
            step = (step * 2).min(config.cap);
        }
        // The tail is capped: no delay beyond the cap.
        assert!(da.iter().all(|d| *d <= config.cap));
        // Reset rewinds the exponent.
        a.reset();
        assert!(a.delay() <= config.base);
    }

    #[test]
    fn backoff_jitter_varies_with_seed() {
        let mk = |seed| {
            let mut b = Backoff::new(&BackoffConfig {
                base: Duration::from_millis(4),
                cap: Duration::from_secs(1),
                seed,
            });
            (0..6).map(|_| b.delay()).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2), "different seeds, different jitter");
    }

    /// Pins the exact jitter sequence for a fixed seed. This is the
    /// hoisted policy's compatibility contract: the serving client and
    /// the cluster router both retry on these delays, and a refactor
    /// that changes the PRNG, the halving, or the capping would silently
    /// change retry behaviour everywhere at once. If this test fails,
    /// the policy changed — that must be a deliberate decision, not a
    /// side effect.
    #[test]
    fn jitter_sequence_is_pinned_for_fixed_seed() {
        let mut b = Backoff::new(&BackoffConfig {
            base: Duration::from_nanos(1_000),
            cap: Duration::from_nanos(16_000),
            seed: 0xDEAD_BEEF,
        });
        let got: Vec<u64> = (0..8).map(|_| b.delay().as_nanos() as u64).collect();
        // Derived once from the xorshift64* stream of seed 0xDEAD_BEEF
        // (seed | 1, taps 13/7/17, odd multiplier 0x2545_F491_4F6C_DD1D),
        // delay_n = step_n/2 + rand_n % (step_n/2 + 1),
        // step_n = min(1000 · 2ⁿ, 16000).
        let expected = [633, 1536, 3100, 7649, 11326, 11376, 15621, 13138];
        assert_eq!(got, expected, "pinned delay sequence changed");
    }
}
