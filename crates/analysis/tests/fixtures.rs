//! Golden fixtures: one pair per lint. Each lint gets a minimal source
//! (or manifest) that must trigger exactly the expected finding, and a
//! suppressed twin whose `ss-analyze: allow` directive must silence it
//! without tripping the A0 hygiene lints. Together they pin both halves
//! of the contract: true positives are caught, justified false
//! positives stay quiet.

use ss_analyze::manifest::{self, Manifest};
use ss_analyze::source::SourceFile;
use ss_analyze::{analyze_parsed, Analysis};

fn run(files: &[(&str, &str)]) -> Analysis {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    analyze_parsed(&parsed, &[])
}

fn run_manifests(manifests: &[(&str, &str)]) -> Analysis {
    let parsed: Vec<Manifest> = manifests
        .iter()
        .map(|(p, s)| manifest::parse(p, s))
        .collect();
    analyze_parsed(&[], &parsed)
}

fn lints(a: &Analysis) -> Vec<&'static str> {
    a.findings.iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_unjustified_relaxed_is_caught() {
    let a = run(&[(
        "crates/core/src/thing.rs",
        "fn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n\
         \u{20}   x.load(Ordering::Relaxed)\n\
         }\n",
    )]);
    assert_eq!(lints(&a), ["a1-atomic-ordering"]);
    assert_eq!(a.findings[0].line, 2);
}

#[test]
fn a1_ordering_comment_and_suppression_are_both_honored() {
    // A trailing `ordering:` justification satisfies the lint directly…
    let a = run(&[(
        "crates/core/src/thing.rs",
        "fn f(x: &A) -> u64 { x.load(Ordering::Relaxed) } // ordering: monotone counter, no edge needed\n",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // …and an explicit allow directive silences it too, without going
    // stale (no a0-unused-suppression).
    let b = run(&[(
        "crates/core/src/thing.rs",
        "// ss-analyze: allow(a1-atomic-ordering) -- fixture: justified elsewhere\n\
         fn f(x: &A) -> u64 { x.load(Ordering::Relaxed) }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A2

#[test]
fn a2_unwrap_in_serving_code_is_caught() {
    let a = run(&[(
        "crates/server/src/lib.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )]);
    assert_eq!(lints(&a), ["a2-panic-free"]);
}

#[test]
fn a2_index_expression_is_caught_but_slice_pattern_is_not() {
    let a = run(&[(
        "crates/wire/src/frame.rs",
        "fn f(v: &[u8]) -> u8 { v[0] }\n",
    )]);
    assert_eq!(lints(&a), ["a2-panic-free"]);
    let b = run(&[(
        "crates/wire/src/frame.rs",
        "fn f(v: [u8; 2]) -> u8 { let [a, _b] = v; a }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

#[test]
fn a2_is_scoped_suppressed_and_test_masked() {
    // Same source outside the serving crates: not a finding.
    let a = run(&[(
        "crates/bench/src/grid.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )]);
    assert!(a.findings.is_empty());
    // Suppression with a reason silences it in scope.
    let b = run(&[(
        "crates/ingest/src/lib.rs",
        "fn f(x: Option<u8>) -> u8 {\n\
         \u{20}   // ss-analyze: allow(a2-panic-free) -- fixture: invariant holds\n\
         \u{20}   x.unwrap()\n\
         }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
    // `#[cfg(test)] mod tests` is masked wholesale.
    let c = run(&[(
        "crates/durability/src/wal.rs",
        "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n",
    )]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

// ---------------------------------------------------------------- A3

const A3_TELEMETRY_TOML: &str = "[package]\n\
    name = \"stream-telemetry\"\n\
    [features]\n\
    enabled = []\n";

#[test]
fn a3_default_features_edge_is_caught() {
    let a = run_manifests(&[
        ("crates/telemetry/Cargo.toml", A3_TELEMETRY_TOML),
        (
            "crates/foo/Cargo.toml",
            "[package]\n\
             name = \"foo\"\n\
             [dependencies]\n\
             stream-telemetry = { path = \"../telemetry\" }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a3-telemetry-edge"]);
    assert_eq!(a.findings[0].path, "crates/foo/Cargo.toml");
}

#[test]
fn a3_clean_edge_and_suppressed_edge_are_quiet() {
    // default-features = false + gate forwarding: clean.
    let a = run_manifests(&[
        ("crates/telemetry/Cargo.toml", A3_TELEMETRY_TOML),
        (
            "crates/foo/Cargo.toml",
            "[package]\n\
             name = \"foo\"\n\
             [dependencies]\n\
             stream-telemetry = { path = \"../telemetry\", default-features = false }\n\
             [features]\n\
             telemetry = [\"stream-telemetry/enabled\"]\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // TOML suppressions use `#` comments and the same directive grammar.
    let b = run_manifests(&[
        ("crates/telemetry/Cargo.toml", A3_TELEMETRY_TOML),
        (
            "crates/foo/Cargo.toml",
            "[package]\n\
             name = \"foo\"\n\
             [dependencies]\n\
             # ss-analyze: allow(a3-telemetry-edge) -- fixture: intentional default edge\n\
             stream-telemetry = { path = \"../telemetry\" }\n",
        ),
    ]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A4

#[test]
fn a4_mutex_in_hot_path_is_caught() {
    let a = run(&[(
        "crates/sketches/src/agms.rs",
        "fn f() { let _m = Mutex::new(0u8); }\n",
    )]);
    assert_eq!(lints(&a), ["a4-blocking-hot-path"]);
}

#[test]
fn a4_use_statement_and_suppression_are_quiet() {
    // `use std::sync::{Arc, Mutex};` is an import, not a lock.
    let a = run(&[(
        "crates/telemetry/src/gauges.rs",
        "use std::sync::{Arc, Mutex};\nfn f() {}\n",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    let b = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a4-blocking-hot-path) -- fixture: cold registration path\n\
         fn f() { let _m = Mutex::new(0u8); }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

#[test]
fn a4_scope_covers_replication_modules() {
    // The replication poll/gate module and the WAL tailer joined the
    // hot-path scope with the failover work: both serve every
    // replication poll (and the ack gate sits before every sequenced
    // ack), so an unjustified block there stalls producers fleet-wide.
    let a = run(&[(
        "crates/server/src/replication.rs",
        "fn f() { std::thread::sleep(d); }\n",
    )]);
    assert_eq!(lints(&a), ["a4-blocking-hot-path"]);
    let b = run(&[(
        "crates/durability/src/tailer.rs",
        "fn f() { let _m = Mutex::new(0u8); }\n",
    )]);
    assert_eq!(lints(&b), ["a4-blocking-hot-path"]);
    // Client-side retry code stays out of scope: its sleeps are the
    // backoff design, not a hot-path hazard.
    let c = run(&[(
        "crates/server/src/resilient.rs",
        "fn f() { std::thread::sleep(d); }\n",
    )]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

// ---------------------------------------------------------------- A5

#[test]
fn a5_narrowing_cast_in_codec_is_caught() {
    let a = run(&[(
        "crates/sketches/src/codec.rs",
        "fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert_eq!(lints(&a), ["a5-numeric-narrowing"]);
}

#[test]
fn a5_scope_usize_and_suppression_are_quiet() {
    // Out of scope (not a codec/estimator module): quiet.
    let a = run(&[(
        "crates/stream/src/model.rs",
        "fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert!(a.findings.is_empty());
    // `as usize` is sanctioned (bounds-checked at the use site).
    let b = run(&[(
        "crates/core/src/estimator.rs",
        "fn f(x: u64) -> usize { x as usize }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
    let c = run(&[(
        "crates/core/src/dyadic.rs",
        "// ss-analyze: allow(a5-numeric-narrowing) -- fixture: format-bounded field\n\
         fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

// ---------------------------------------------------------------- A6

/// The fixture frame enum: three kinds, so a match naming only one and
/// absorbing the rest with `_` is a hole.
const A6_FRAME_RS: &str = "pub enum Frame {\n\
    \u{20}   Hello,\n\
    \u{20}   BatchAck { seq: u64 },\n\
    \u{20}   Goodbye,\n\
    }\n";

#[test]
fn a6_catch_all_over_frame_is_caught() {
    let a = run(&[
        ("crates/wire/src/frame.rs", A6_FRAME_RS),
        (
            "crates/server/src/lib.rs",
            "fn f(fr: Frame) -> u8 {\n\
             \u{20}   match fr {\n\
             \u{20}       Frame::Hello => 1,\n\
             \u{20}       _ => 0,\n\
             \u{20}   }\n\
             }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a6-frame-exhaustive"]);
    assert!(
        a.findings[0].message.contains("BatchAck") && a.findings[0].message.contains("Goodbye"),
        "{}",
        a.findings[0].message
    );
}

#[test]
fn a6_exhaustive_match_and_suppression_are_quiet() {
    // Naming every variant (struct patterns included) is clean even
    // with no catch-all possible.
    let a = run(&[
        ("crates/wire/src/frame.rs", A6_FRAME_RS),
        (
            "crates/server/src/lib.rs",
            "fn f(fr: Frame) -> u8 {\n\
             \u{20}   match fr {\n\
             \u{20}       Frame::Hello => 1,\n\
             \u{20}       Frame::BatchAck { .. } => 2,\n\
             \u{20}       Frame::Goodbye => 3,\n\
             \u{20}   }\n\
             }\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // A justified catch-all stays quiet via the directive on the arm.
    let b = run(&[
        ("crates/wire/src/frame.rs", A6_FRAME_RS),
        (
            "crates/server/src/lib.rs",
            "fn f(fr: Frame) -> u8 {\n\
             \u{20}   match fr {\n\
             \u{20}       Frame::Hello => 1,\n\
             \u{20}       // ss-analyze: allow(a6-frame-exhaustive) -- fixture: uniform rejection\n\
             \u{20}       _ => 0,\n\
             \u{20}   }\n\
             }\n",
        ),
    ]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ------------------------------------------------------- A0 hygiene

#[test]
fn a0_stale_suppression_is_itself_a_finding() {
    let a = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a5-numeric-narrowing) -- fixture: nothing here narrows\n\
         fn f(x: u64) -> u64 { x }\n",
    )]);
    assert_eq!(lints(&a), ["a0-unused-suppression"]);
}

#[test]
fn a0_missing_reason_and_unknown_lint_are_findings() {
    let a = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a5-numeric-narrowing)\n\
         fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert!(
        lints(&a).contains(&"a0-bad-suppression"),
        "{:?}",
        a.findings
    );
    let b = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a9-no-such-lint) -- fixture\nfn f(x: u64) -> u64 { x }\n",
    )]);
    assert!(lints(&b).contains(&"a0-unknown-lint"), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A7

/// Minimal wire `Kind` enum the a7 pass derives the v3 variant set
/// from: `Promote = 23` is v3-only, `Hello = 1` is not.
const FRAME_RS: (&str, &str) = (
    "crates/wire/src/frame.rs",
    "pub enum Kind { Hello = 1, Promote = 23 }\n",
);

#[test]
fn a7_ungated_v3_construction_is_caught() {
    let a = run(&[
        FRAME_RS,
        (
            "crates/server/src/lib.rs",
            "fn send(out: &mut O) { out.emit(Frame::Promote { epoch: 1 }); }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a7-version-gating"]);
    assert!(a.findings[0].message.contains("Frame::Promote"));
}

#[test]
fn a7_local_gate_caller_gate_and_suppression_are_honored() {
    // A protocol guard earlier in the same body gates the construction…
    let a = run(&[
        FRAME_RS,
        (
            "crates/server/src/lib.rs",
            "fn send(session_protocol: u16, out: &mut O) {\n\
             \u{20}   if session_protocol < 3 { return; }\n\
             \u{20}   out.emit(Frame::Promote { epoch: 1 });\n\
             }\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // …a guard in the sole (non-test) caller gates it transitively…
    let b = run(&[
        FRAME_RS,
        (
            "crates/server/src/lib.rs",
            "fn dispatch(session_protocol: u16, out: &mut O) {\n\
             \u{20}   if session_protocol < 3 { return; }\n\
             \u{20}   send_promote(out);\n\
             }\n\
             fn send_promote(out: &mut O) { out.emit(Frame::Promote { epoch: 1 }); }\n",
        ),
    ]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
    // …and an explicit allow directive silences an ungated one.
    let c = run(&[
        FRAME_RS,
        (
            "crates/server/src/lib.rs",
            "// ss-analyze: allow(a7-version-gating) -- fixture: v2 peers filtered upstream\n\
             fn send(out: &mut O) { out.emit(Frame::Promote { epoch: 1 }); }\n",
        ),
    ]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

#[test]
fn a7_patterns_and_the_codec_crate_are_exempt() {
    // Matching on a v3 frame is how v2 paths *reject* it — only
    // construction is gated. The codec crate itself must name every
    // kind and is exempt wholesale.
    let a = run(&[
        FRAME_RS,
        (
            "crates/server/src/lib.rs",
            "fn epoch_of(f: &Frame) -> u64 {\n\
             \u{20}   if let Frame::Promote { epoch } = f { *epoch } else { 0 }\n\
             }\n",
        ),
        (
            "crates/wire/src/codec.rs",
            "fn encode() -> Frame { Frame::Promote { epoch: 1 } }\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

// ---------------------------------------------------------------- A8

#[test]
fn a8_role_read_before_epoch_comparison_is_caught() {
    // Seeded reorder: the handler consults its role, *then* compares
    // the caller's fencing epoch — the stale-role window.
    let a = run(&[(
        "crates/server/src/replication.rs",
        "fn apply(epoch: u64, state: &S) -> bool {\n\
         \u{20}   if state.role() != Role::Primary { return false; }\n\
         \u{20}   if epoch < state.epoch() { return false; }\n\
         \u{20}   true\n\
         }\n",
    )]);
    assert_eq!(lints(&a), ["a8-fence-order"]);
    assert!(a.findings[0].message.contains("stale-role"));
}

#[test]
fn a8_fence_first_and_suppression_are_honored() {
    // The hoisted epoch comparison dominates the role read: clean.
    let a = run(&[(
        "crates/server/src/replication.rs",
        "fn apply(epoch: u64, state: &S) -> bool {\n\
         \u{20}   if epoch < state.epoch() { return false; }\n\
         \u{20}   if state.role() != Role::Primary { return false; }\n\
         \u{20}   true\n\
         }\n",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // A justified suppression on the role-read line is honored.
    let b = run(&[(
        "crates/server/src/replication.rs",
        "fn observe(epoch: u64, state: &S) -> bool {\n\
         \u{20}   // ss-analyze: allow(a8-fence-order) -- fixture: read-only probe, role is advisory\n\
         \u{20}   state.role() == Role::Primary && epoch > 0\n\
         }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A9

#[test]
fn a9_bump_before_append_is_caught() {
    // Seeded reorder: dedup frontier advanced before the WAL append —
    // a crash between them loses a batch the frontier claims applied.
    let a = run(&[(
        "crates/server/src/ingest.rs",
        "fn handle(w: &mut W, seq: u64) {\n\
         \u{20}   w.bump_dedup(seq);\n\
         \u{20}   w.wal.append(seq);\n\
         \u{20}   ack(seq);\n\
         }\n",
    )]);
    assert_eq!(lints(&a), ["a9-persist-order"]);
    assert!(a.findings[0].message.contains("before the WAL append"));
}

#[test]
fn a9_ack_before_bump_is_caught() {
    // Seeded reorder: the ack leaves before the dedup bump that covers
    // it — recovery re-applies a batch the producer saw acknowledged.
    let a = run(&[(
        "crates/server/src/ingest.rs",
        "fn handle(w: &mut W, seq: u64) {\n\
         \u{20}   w.wal.append(seq);\n\
         \u{20}   ack(seq);\n\
         \u{20}   w.bump_dedup(seq);\n\
         }\n",
    )]);
    assert_eq!(lints(&a), ["a9-persist-order"]);
    assert!(a.findings[0].message.contains("ack before the dedup bump"));
}

#[test]
fn a9_correct_order_and_suppression_are_honored() {
    // append -> bump -> ack is the documented order: clean. The early
    // duplicate-ack path (ack, then the real sequence later) is
    // tolerated by the last-occurrence reading.
    let a = run(&[(
        "crates/server/src/ingest.rs",
        "fn handle(w: &mut W, seq: u64) {\n\
         \u{20}   if w.seen(seq) { ack(seq); return; }\n\
         \u{20}   w.wal.append(seq);\n\
         \u{20}   w.bump_dedup(seq);\n\
         \u{20}   ack(seq);\n\
         }\n",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // A justified suppression on the offending token's line is honored.
    let b = run(&[(
        "crates/server/src/ingest.rs",
        "fn replay(w: &mut W, seq: u64) { w.bump_dedup(seq); w.wal.append(seq); ack(seq); } // ss-analyze: allow(a9-persist-order) -- fixture: recovery replay, frontier restored from the log itself\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A10

#[test]
fn a10_panic_reachable_from_entry_point_is_caught() {
    // `handle_connection` (a serving entry point) calls into a crate
    // outside a2's module allowlist; the unwrap there is reachable.
    // The uncalled neighbor with the same unwrap is not flagged.
    let a = run(&[
        (
            "crates/server/src/lib.rs",
            "fn handle_connection(x: Option<u8>) -> u8 { helper_crunch(x) }\n",
        ),
        (
            "crates/query/src/lib.rs",
            "pub fn helper_crunch(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub fn lonely(x: Option<u8>) -> u8 { x.unwrap() }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a10-reachable-panic"]);
    assert!(a.findings[0].message.contains("helper_crunch"));
    assert_eq!(a.findings[0].path, "crates/query/src/lib.rs");
}

#[test]
fn a10_blocking_reachable_from_entry_point_is_caught() {
    let a = run(&[
        (
            "crates/cluster/src/router.rs",
            "fn supervise(d: Duration) { pause_helper(d); }\n",
        ),
        (
            "crates/query/src/lib.rs",
            "pub fn pause_helper(d: Duration) { std::thread::sleep(d); }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a10-reachable-blocking"]);
    assert!(a.findings[0].message.contains("pause_helper"));
}

#[test]
fn a10_suppressions_are_honored() {
    let a = run(&[
        (
            "crates/server/src/lib.rs",
            "fn handle_connection(x: Option<u8>) -> u8 { helper_crunch(x) }\n",
        ),
        (
            "crates/query/src/lib.rs",
            "pub fn helper_crunch(x: Option<u8>) -> u8 {\n\
             \u{20}   // ss-analyze: allow(a10-reachable-panic) -- fixture: Some by construction\n\
             \u{20}   x.unwrap()\n\
             }\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    let b = run(&[
        (
            "crates/cluster/src/router.rs",
            "fn supervise(d: Duration) { pause_helper(d); }\n",
        ),
        (
            "crates/query/src/lib.rs",
            "pub fn pause_helper(d: Duration) {\n\
             \u{20}   // ss-analyze: allow(a10-reachable-blocking) -- fixture: cold supervision tick\n\
             \u{20}   std::thread::sleep(d);\n\
             }\n",
        ),
    ]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ------------------------------------------------- A0 rename orphan

#[test]
fn a0_suppression_orphaned_by_file_rename_is_reported() {
    // A suppression written when this code lived in a linted path
    // (say `crates/server/src/query.rs`, inside a2's allowlist)
    // travels with the code to a path the lint does not cover. The
    // directive now matches nothing — A0 reports it instead of letting
    // a dead `allow` rot in place and silently mask a future finding.
    let src = "fn pick(x: Option<u8>) -> u8 {\n\
               \u{20}   // ss-analyze: allow(a2-panic-free) -- checked by caller\n\
               \u{20}   x.unwrap()\n\
               }\n";
    // In the original location the suppression is live: no findings.
    let before = run(&[("crates/server/src/query.rs", src)]);
    assert!(before.findings.is_empty(), "{:?}", before.findings);
    // After the rename, a2 no longer applies and the directive is
    // orphaned: exactly one a0-unused-suppression, anchored to it.
    let after = run(&[("crates/query/src/pick.rs", src)]);
    assert_eq!(lints(&after), ["a0-unused-suppression"]);
    assert_eq!(after.findings[0].line, 2);
}
