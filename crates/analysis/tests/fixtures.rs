//! Golden fixtures: one pair per lint. Each lint gets a minimal source
//! (or manifest) that must trigger exactly the expected finding, and a
//! suppressed twin whose `ss-analyze: allow` directive must silence it
//! without tripping the A0 hygiene lints. Together they pin both halves
//! of the contract: true positives are caught, justified false
//! positives stay quiet.

use ss_analyze::manifest::{self, Manifest};
use ss_analyze::source::SourceFile;
use ss_analyze::{analyze_parsed, Analysis};

fn run(files: &[(&str, &str)]) -> Analysis {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    analyze_parsed(&parsed, &[])
}

fn run_manifests(manifests: &[(&str, &str)]) -> Analysis {
    let parsed: Vec<Manifest> = manifests
        .iter()
        .map(|(p, s)| manifest::parse(p, s))
        .collect();
    analyze_parsed(&[], &parsed)
}

fn lints(a: &Analysis) -> Vec<&'static str> {
    a.findings.iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_unjustified_relaxed_is_caught() {
    let a = run(&[(
        "crates/core/src/thing.rs",
        "fn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n\
         \u{20}   x.load(Ordering::Relaxed)\n\
         }\n",
    )]);
    assert_eq!(lints(&a), ["a1-atomic-ordering"]);
    assert_eq!(a.findings[0].line, 2);
}

#[test]
fn a1_ordering_comment_and_suppression_are_both_honored() {
    // A trailing `ordering:` justification satisfies the lint directly…
    let a = run(&[(
        "crates/core/src/thing.rs",
        "fn f(x: &A) -> u64 { x.load(Ordering::Relaxed) } // ordering: monotone counter, no edge needed\n",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // …and an explicit allow directive silences it too, without going
    // stale (no a0-unused-suppression).
    let b = run(&[(
        "crates/core/src/thing.rs",
        "// ss-analyze: allow(a1-atomic-ordering) -- fixture: justified elsewhere\n\
         fn f(x: &A) -> u64 { x.load(Ordering::Relaxed) }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A2

#[test]
fn a2_unwrap_in_serving_code_is_caught() {
    let a = run(&[(
        "crates/server/src/lib.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )]);
    assert_eq!(lints(&a), ["a2-panic-free"]);
}

#[test]
fn a2_index_expression_is_caught_but_slice_pattern_is_not() {
    let a = run(&[(
        "crates/wire/src/frame.rs",
        "fn f(v: &[u8]) -> u8 { v[0] }\n",
    )]);
    assert_eq!(lints(&a), ["a2-panic-free"]);
    let b = run(&[(
        "crates/wire/src/frame.rs",
        "fn f(v: [u8; 2]) -> u8 { let [a, _b] = v; a }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

#[test]
fn a2_is_scoped_suppressed_and_test_masked() {
    // Same source outside the serving crates: not a finding.
    let a = run(&[(
        "crates/bench/src/grid.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )]);
    assert!(a.findings.is_empty());
    // Suppression with a reason silences it in scope.
    let b = run(&[(
        "crates/ingest/src/lib.rs",
        "fn f(x: Option<u8>) -> u8 {\n\
         \u{20}   // ss-analyze: allow(a2-panic-free) -- fixture: invariant holds\n\
         \u{20}   x.unwrap()\n\
         }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
    // `#[cfg(test)] mod tests` is masked wholesale.
    let c = run(&[(
        "crates/durability/src/wal.rs",
        "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n",
    )]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

// ---------------------------------------------------------------- A3

const A3_TELEMETRY_TOML: &str = "[package]\n\
    name = \"stream-telemetry\"\n\
    [features]\n\
    enabled = []\n";

#[test]
fn a3_default_features_edge_is_caught() {
    let a = run_manifests(&[
        ("crates/telemetry/Cargo.toml", A3_TELEMETRY_TOML),
        (
            "crates/foo/Cargo.toml",
            "[package]\n\
             name = \"foo\"\n\
             [dependencies]\n\
             stream-telemetry = { path = \"../telemetry\" }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a3-telemetry-edge"]);
    assert_eq!(a.findings[0].path, "crates/foo/Cargo.toml");
}

#[test]
fn a3_clean_edge_and_suppressed_edge_are_quiet() {
    // default-features = false + gate forwarding: clean.
    let a = run_manifests(&[
        ("crates/telemetry/Cargo.toml", A3_TELEMETRY_TOML),
        (
            "crates/foo/Cargo.toml",
            "[package]\n\
             name = \"foo\"\n\
             [dependencies]\n\
             stream-telemetry = { path = \"../telemetry\", default-features = false }\n\
             [features]\n\
             telemetry = [\"stream-telemetry/enabled\"]\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // TOML suppressions use `#` comments and the same directive grammar.
    let b = run_manifests(&[
        ("crates/telemetry/Cargo.toml", A3_TELEMETRY_TOML),
        (
            "crates/foo/Cargo.toml",
            "[package]\n\
             name = \"foo\"\n\
             [dependencies]\n\
             # ss-analyze: allow(a3-telemetry-edge) -- fixture: intentional default edge\n\
             stream-telemetry = { path = \"../telemetry\" }\n",
        ),
    ]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ---------------------------------------------------------------- A4

#[test]
fn a4_mutex_in_hot_path_is_caught() {
    let a = run(&[(
        "crates/sketches/src/agms.rs",
        "fn f() { let _m = Mutex::new(0u8); }\n",
    )]);
    assert_eq!(lints(&a), ["a4-blocking-hot-path"]);
}

#[test]
fn a4_use_statement_and_suppression_are_quiet() {
    // `use std::sync::{Arc, Mutex};` is an import, not a lock.
    let a = run(&[(
        "crates/telemetry/src/gauges.rs",
        "use std::sync::{Arc, Mutex};\nfn f() {}\n",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    let b = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a4-blocking-hot-path) -- fixture: cold registration path\n\
         fn f() { let _m = Mutex::new(0u8); }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

#[test]
fn a4_scope_covers_replication_modules() {
    // The replication poll/gate module and the WAL tailer joined the
    // hot-path scope with the failover work: both serve every
    // replication poll (and the ack gate sits before every sequenced
    // ack), so an unjustified block there stalls producers fleet-wide.
    let a = run(&[(
        "crates/server/src/replication.rs",
        "fn f() { std::thread::sleep(d); }\n",
    )]);
    assert_eq!(lints(&a), ["a4-blocking-hot-path"]);
    let b = run(&[(
        "crates/durability/src/tailer.rs",
        "fn f() { let _m = Mutex::new(0u8); }\n",
    )]);
    assert_eq!(lints(&b), ["a4-blocking-hot-path"]);
    // Client-side retry code stays out of scope: its sleeps are the
    // backoff design, not a hot-path hazard.
    let c = run(&[(
        "crates/server/src/resilient.rs",
        "fn f() { std::thread::sleep(d); }\n",
    )]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

// ---------------------------------------------------------------- A5

#[test]
fn a5_narrowing_cast_in_codec_is_caught() {
    let a = run(&[(
        "crates/sketches/src/codec.rs",
        "fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert_eq!(lints(&a), ["a5-numeric-narrowing"]);
}

#[test]
fn a5_scope_usize_and_suppression_are_quiet() {
    // Out of scope (not a codec/estimator module): quiet.
    let a = run(&[(
        "crates/stream/src/model.rs",
        "fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert!(a.findings.is_empty());
    // `as usize` is sanctioned (bounds-checked at the use site).
    let b = run(&[(
        "crates/core/src/estimator.rs",
        "fn f(x: u64) -> usize { x as usize }\n",
    )]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
    let c = run(&[(
        "crates/core/src/dyadic.rs",
        "// ss-analyze: allow(a5-numeric-narrowing) -- fixture: format-bounded field\n\
         fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert!(c.findings.is_empty(), "{:?}", c.findings);
}

// ---------------------------------------------------------------- A6

/// The fixture frame enum: three kinds, so a match naming only one and
/// absorbing the rest with `_` is a hole.
const A6_FRAME_RS: &str = "pub enum Frame {\n\
    \u{20}   Hello,\n\
    \u{20}   BatchAck { seq: u64 },\n\
    \u{20}   Goodbye,\n\
    }\n";

#[test]
fn a6_catch_all_over_frame_is_caught() {
    let a = run(&[
        ("crates/wire/src/frame.rs", A6_FRAME_RS),
        (
            "crates/server/src/lib.rs",
            "fn f(fr: Frame) -> u8 {\n\
             \u{20}   match fr {\n\
             \u{20}       Frame::Hello => 1,\n\
             \u{20}       _ => 0,\n\
             \u{20}   }\n\
             }\n",
        ),
    ]);
    assert_eq!(lints(&a), ["a6-frame-exhaustive"]);
    assert!(
        a.findings[0].message.contains("BatchAck") && a.findings[0].message.contains("Goodbye"),
        "{}",
        a.findings[0].message
    );
}

#[test]
fn a6_exhaustive_match_and_suppression_are_quiet() {
    // Naming every variant (struct patterns included) is clean even
    // with no catch-all possible.
    let a = run(&[
        ("crates/wire/src/frame.rs", A6_FRAME_RS),
        (
            "crates/server/src/lib.rs",
            "fn f(fr: Frame) -> u8 {\n\
             \u{20}   match fr {\n\
             \u{20}       Frame::Hello => 1,\n\
             \u{20}       Frame::BatchAck { .. } => 2,\n\
             \u{20}       Frame::Goodbye => 3,\n\
             \u{20}   }\n\
             }\n",
        ),
    ]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    // A justified catch-all stays quiet via the directive on the arm.
    let b = run(&[
        ("crates/wire/src/frame.rs", A6_FRAME_RS),
        (
            "crates/server/src/lib.rs",
            "fn f(fr: Frame) -> u8 {\n\
             \u{20}   match fr {\n\
             \u{20}       Frame::Hello => 1,\n\
             \u{20}       // ss-analyze: allow(a6-frame-exhaustive) -- fixture: uniform rejection\n\
             \u{20}       _ => 0,\n\
             \u{20}   }\n\
             }\n",
        ),
    ]);
    assert!(b.findings.is_empty(), "{:?}", b.findings);
}

// ------------------------------------------------------- A0 hygiene

#[test]
fn a0_stale_suppression_is_itself_a_finding() {
    let a = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a5-numeric-narrowing) -- fixture: nothing here narrows\n\
         fn f(x: u64) -> u64 { x }\n",
    )]);
    assert_eq!(lints(&a), ["a0-unused-suppression"]);
}

#[test]
fn a0_missing_reason_and_unknown_lint_are_findings() {
    let a = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a5-numeric-narrowing)\n\
         fn f(x: u64) -> u32 { x as u32 }\n",
    )]);
    assert!(
        lints(&a).contains(&"a0-bad-suppression"),
        "{:?}",
        a.findings
    );
    let b = run(&[(
        "crates/core/src/estimator.rs",
        "// ss-analyze: allow(a9-no-such-lint) -- fixture\nfn f(x: u64) -> u64 { x }\n",
    )]);
    assert!(lints(&b).contains(&"a0-unknown-lint"), "{:?}", b.findings);
}
