//! Workspace call graph over the extracted [`FnItem`]s.
//!
//! Call sites are recognized lexically (`name(`, `path::name(`,
//! `.name(`) and resolved by name with locality preference: candidates
//! in the same file win over same-crate candidates, which win over the
//! rest of the workspace. Resolution is deliberately
//! *over-approximate* — a method call resolves to every workspace impl
//! fn of that name when no closer candidate exists — because the
//! passes built on top (reachability, gating propagation) are sound
//! under over-approximation: extra edges can only widen the set of
//! functions a lint inspects, never exempt one.
//!
//! Calls into `std` or shimmed externals resolve to nothing and simply
//! produce no edge.

use crate::items::FnItem;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::HashMap;

/// One lexical call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name, raw-identifier prefix stripped.
    pub callee: String,
    /// The path segment directly before `::callee(`, when present
    /// (`Wal::open(` → `Some("Wal")`, `wal.append(` → `None`).
    pub qualifier: Option<String>,
    /// `true` for `.callee(` method-call syntax.
    pub method: bool,
    /// Token index of the callee ident.
    pub tok: usize,
}

/// The workspace call graph: `edges[f]` lists the fn indices `f` may
/// call, deduplicated, in source order of their call sites.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per fn index.
    pub edges: Vec<Vec<usize>>,
    /// Incoming edges per fn index (computed alongside `edges`).
    pub callers: Vec<Vec<usize>>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "in", "move", "fn", "as", "loop", "else", "let",
    "mut", "ref", "box", "dyn", "impl", "where", "use", "pub", "crate", "super", "self", "Self",
];

/// Extracts the call sites of `item` from its body token span, skipping
/// spans that belong to fns nested inside it (their calls are their
/// own).
pub fn call_sites(file: &SourceFile, item: &FnItem, all_in_file: &[&FnItem]) -> Vec<CallSite> {
    let Some((open, close)) = item.body else {
        return Vec::new();
    };
    // Body spans of fns nested strictly inside this one.
    let nested: Vec<(usize, usize)> = all_in_file
        .iter()
        .filter_map(|f| f.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect();
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        if nested.iter().any(|&(o, c)| j >= o && j <= c) {
            j += 1;
            continue;
        }
        let t = &toks[j];
        if t.kind == TokKind::Ident
            && toks.get(j + 1).map(|n| n.text.as_str()) == Some("(")
            && !NON_CALL_KEYWORDS.contains(&t.ident_name())
        {
            let prev = j.checked_sub(1).map(|p| &toks[p]);
            let method = prev.map(|p| p.text.as_str()) == Some(".");
            // A macro is `name!(…)` — the `!` sits between name and `(`,
            // so `name(` is never a macro. `name !(…)` with the bang
            // before is a *different* token position and already missed.
            let qualifier = match prev {
                Some(p) if p.text == "::" => j
                    .checked_sub(2)
                    .map(|q| &toks[q])
                    .filter(|q| q.kind == TokKind::Ident)
                    .map(|q| q.ident_name().to_string()),
                _ => None,
            };
            out.push(CallSite {
                callee: t.ident_name().to_string(),
                qualifier,
                method,
                tok: j,
            });
        }
        j += 1;
    }
    out
}

/// Builds the workspace call graph for `fns` over `files`.
pub fn build(files: &[SourceFile], fns: &[FnItem]) -> CallGraph {
    // Name index: fn name → candidate indices.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let crate_of: Vec<&str> = fns.iter().map(|f| FnItem::crate_of(&files[f.file].path)).collect();

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (i, f) in fns.iter().enumerate() {
        let file = &files[f.file];
        let in_file: Vec<&FnItem> = fns.iter().filter(|g| g.file == f.file).collect();
        for site in call_sites(file, f, &in_file) {
            let Some(cands) = by_name.get(site.callee.as_str()) else {
                continue;
            };
            let resolved = resolve(&site, cands, files, fns, &crate_of, f, crate_of[i]);
            for r in resolved {
                if !edges[i].contains(&r) {
                    edges[i].push(r);
                }
            }
        }
    }
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (i, outs) in edges.iter().enumerate() {
        for &o in outs {
            if !callers[o].contains(&i) {
                callers[o].push(i);
            }
        }
    }
    CallGraph { edges, callers }
}

/// Resolves one call site to candidate fn indices with locality
/// preference: qualifier filter first, then same file → same crate →
/// whole workspace.
fn resolve(
    site: &CallSite,
    cands: &[usize],
    files: &[SourceFile],
    fns: &[FnItem],
    crate_of: &[&str],
    caller: &FnItem,
    caller_crate: &str,
) -> Vec<usize> {
    // Qualifier narrows by impl type (`Wal::open`), module/crate name
    // (`wal::recover`, `stream_wire::read_frame`), or file-stem module
    // (`replication::serve_poll` resolving into `replication.rs`). When
    // the filter matches nothing the qualifier named a non-workspace
    // type (e.g. `Vec::new`) — resolve to nothing rather than
    // over-matching.
    if let Some(q) = &site.qualifier {
        let qn = q.replace('-', "_");
        let stem_rs = format!("/{qn}.rs");
        let filtered: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                let f = &fns[c];
                f.impl_type.as_deref() == Some(q.as_str())
                    || f.modules.iter().any(|m| *m == qn)
                    || crate_of[c].replace('-', "_") == qn
                    || files[f.file].path.ends_with(&stem_rs)
                    || q == "Self"
                    || q == "self"
                    || q == "crate"
            })
            .collect();
        return prefer_local(filtered, fns, crate_of, caller, caller_crate);
    }
    if site.method {
        // Method calls bind to impl fns anywhere in the workspace;
        // free fns of the same name are not callable as `.name(…)`.
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| fns[c].impl_type.is_some() || fns[c].params.first().map(String::as_str) == Some("self"))
            .collect();
        return prefer_local(methods, fns, crate_of, caller, caller_crate);
    }
    prefer_local(cands.to_vec(), fns, crate_of, caller, caller_crate)
}

/// Keeps the closest non-empty locality tier: same file, else same
/// crate, else all candidates.
fn prefer_local(
    cands: Vec<usize>,
    fns: &[FnItem],
    crate_of: &[&str],
    caller: &FnItem,
    caller_crate: &str,
) -> Vec<usize> {
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| fns[c].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| crate_of[c] == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands
}

impl CallGraph {
    /// Every fn reachable from `entries` by following call edges,
    /// including the entries themselves.
    pub fn reachable(&self, entries: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.edges.len()];
        let mut stack: Vec<usize> = entries.to_vec();
        for &e in entries {
            if e < seen.len() {
                seen[e] = true;
            }
        }
        while let Some(f) = stack.pop() {
            for &g in &self.edges[f] {
                if !seen[g] {
                    seen[g] = true;
                    stack.push(g);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract_fns;
    use crate::source::SourceFile;

    fn ws(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<FnItem>, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect();
        let mut fns = Vec::new();
        for (i, f) in files.iter().enumerate() {
            fns.extend(extract_fns(f, i));
        }
        let graph = build(&files, &fns);
        (files, fns, graph)
    }

    fn idx(fns: &[FnItem], name: &str) -> usize {
        fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn same_file_resolution_wins() {
        let (_, fns, g) = ws(&[
            ("crates/a/src/lib.rs", "fn caller() { helper() } fn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let c = idx(&fns, "caller");
        assert_eq!(g.edges[c], vec![1]);
    }

    #[test]
    fn cross_crate_fallback_resolves_all() {
        let (_, fns, g) = ws(&[
            ("crates/a/src/lib.rs", "fn caller() { remote() }"),
            ("crates/b/src/lib.rs", "fn remote() {}"),
            ("crates/c/src/lib.rs", "fn remote() {}"),
        ]);
        let c = idx(&fns, "caller");
        assert_eq!(g.edges[c].len(), 2);
    }

    #[test]
    fn method_calls_resolve_to_impl_fns_only() {
        let (_, fns, g) = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller(w: Wal) { w.append(1) } fn append() {}",
            ),
            ("crates/b/src/lib.rs", "impl Wal { fn append(&mut self, x: u32) {} }"),
        ]);
        let c = idx(&fns, "caller");
        let target = fns
            .iter()
            .position(|f| f.impl_type.as_deref() == Some("Wal"))
            .unwrap();
        assert_eq!(g.edges[c], vec![target]);
    }

    #[test]
    fn qualified_calls_filter_by_type_and_module() {
        let (_, fns, g) = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { Wal::open(); other::open(); Vec::new() }",
            ),
            ("crates/b/src/lib.rs", "impl Wal { fn open() {} }"),
            ("crates/c/src/lib.rs", "mod other { pub fn open() {} } fn new() {}"),
        ]);
        let c = idx(&fns, "caller");
        let wal_open = fns
            .iter()
            .position(|f| f.impl_type.as_deref() == Some("Wal"))
            .unwrap();
        let mod_open = fns
            .iter()
            .position(|f| f.modules == ["other"])
            .unwrap();
        assert!(g.edges[c].contains(&wal_open));
        assert!(g.edges[c].contains(&mod_open));
        // `Vec::new` must not resolve to the unrelated free fn `new`.
        assert!(!g.edges[c].contains(&idx(&fns, "new")));
    }

    #[test]
    fn reachability_walks_transitively() {
        let (_, fns, g) = ws(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid() } fn mid() { leaf() } fn leaf() {} fn island() {}",
        )]);
        let r = g.reachable(&[idx(&fns, "entry")]);
        assert!(r[idx(&fns, "leaf")]);
        assert!(!r[idx(&fns, "island")]);
    }

    #[test]
    fn raw_identifier_calls_resolve() {
        let (_, fns, g) = ws(&[(
            "crates/a/src/lib.rs",
            "fn caller() { r#type() } fn r#type() {}",
        )]);
        let c = idx(&fns, "caller");
        assert_eq!(g.edges[c], vec![idx(&fns, "type")]);
    }

    #[test]
    fn callers_are_the_reverse_edges() {
        let (_, fns, g) = ws(&[(
            "crates/a/src/lib.rs",
            "fn a() { shared() } fn b() { shared() } fn shared() {}",
        )]);
        let s = idx(&fns, "shared");
        assert_eq!(g.callers[s].len(), 2);
    }
}
