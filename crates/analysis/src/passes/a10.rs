//! a10-reachable-panic / a10-reachable-blocking: call-graph
//! reachability from the serving entry points.
//!
//! a2/a4 scope by module allowlist, which misses helpers in "safe"
//! crates that hot paths actually call — a `query`-crate helper that
//! unwraps is invisible to a2 until a connection handler starts calling
//! it. These passes walk the call graph from the serving/replication
//! entry points and inspect every reachable fn that the module-scoped
//! lints do *not* already cover:
//!
//! * `a10-reachable-panic` — `.unwrap()` / `.expect()` /
//!   `panic!`-family macros. Slice indexing is deliberately *not*
//!   flagged here (unlike a2): the sketch kernels index on the hot path
//!   under schema-checked bounds, and a2's per-module opt-in is the
//!   right granularity for that judgement.
//! * `a10-reachable-blocking` — `Mutex` / `thread::sleep`, as in a4.
//!
//! Resolution is over-approximate (same-name fallback across crates),
//! which is the sound direction: an extra edge can only pull more code
//! under inspection.

use super::{finding, Pass, Workspace};
use crate::findings::Finding;
use crate::items::FnItem;
use crate::lexer::TokKind;
use crate::lints;
use crate::source::SourceFile;

/// The serving/replication entry points reachability starts from:
/// `(path suffix, fn name)`. Accept loops, connection handlers, frame
/// loops, the replication poll loop and its wire-facing handlers, and
/// the router's supervision/failover path.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/server/src/lib.rs", "accept_loop"),
    ("crates/server/src/lib.rs", "handle_connection"),
    ("crates/server/src/lib.rs", "serve_frames"),
    ("crates/server/src/lib.rs", "next_frame"),
    ("crates/server/src/lib.rs", "handle_update_batch"),
    ("crates/server/src/replication.rs", "run"),
    ("crates/server/src/replication.rs", "serve_poll"),
    ("crates/server/src/replication.rs", "apply_push"),
    ("crates/server/src/replication.rs", "apply_chunk"),
    ("crates/server/src/replication.rs", "promote"),
    ("crates/cluster/src/router.rs", "accept_loop"),
    ("crates/cluster/src/router.rs", "handle_connection"),
    ("crates/cluster/src/router.rs", "serve_frames"),
    ("crates/cluster/src/router.rs", "next_frame"),
    ("crates/cluster/src/router.rs", "supervise"),
    ("crates/cluster/src/router.rs", "try_failover"),
];

/// Shared sweep: indices of reachable, non-test fns whose file is *not*
/// already covered by `scope` (the module allowlist of the lexical
/// lint this pass extends).
fn uncovered_reachable(ws: &Workspace, scope: &[&str]) -> Vec<usize> {
    let entries = ws.find_entries(ENTRY_POINTS);
    let reach = ws.graph.reachable(&entries);
    (0..ws.fns.len())
        .filter(|&i| {
            reach[i]
                && !ws.fns[i].is_test
                && !lints::in_lint_scope(&ws.files[ws.fns[i].file].path, scope)
        })
        .collect()
}

/// Describes why a fn is being inspected, for the finding message.
fn via(f: &FnItem) -> String {
    format!("`{}` (reachable from serving entry points)", f.name)
}

/// The a10 panic-reachability pass.
pub struct ReachablePanic;

impl Pass for ReachablePanic {
    fn id(&self) -> &'static str {
        "a10-reachable-panic"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for i in uncovered_reachable(ws, lints::A2_SCOPE) {
            let f = &ws.fns[i];
            let file = &ws.files[f.file];
            let Some((open, close)) = f.body else {
                continue;
            };
            for j in open + 1..close {
                if file.mask[j] {
                    continue;
                }
                if let Some(what) = panic_site(file, j) {
                    out.push(finding(
                        "a10-reachable-panic",
                        &file.path,
                        &file.toks[j],
                        format!("{what} in {}", via(f)),
                    ));
                }
            }
        }
        out
    }
}

/// The a10 blocking-reachability pass.
pub struct ReachableBlocking;

impl Pass for ReachableBlocking {
    fn id(&self) -> &'static str {
        "a10-reachable-blocking"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for i in uncovered_reachable(ws, lints::A4_SCOPE) {
            let f = &ws.fns[i];
            let file = &ws.files[f.file];
            let Some((open, close)) = f.body else {
                continue;
            };
            for j in open + 1..close {
                if file.mask[j] || file.toks[j].kind != TokKind::Ident {
                    continue;
                }
                let what = match file.toks[j].text.as_str() {
                    "Mutex" => "`Mutex` (blocking lock)",
                    "sleep" => "`thread::sleep`",
                    _ => continue,
                };
                if file.in_use_statement(j) {
                    continue;
                }
                out.push(finding(
                    "a10-reachable-blocking",
                    &file.path,
                    &file.toks[j],
                    format!("{what} in {}", via(f)),
                ));
            }
        }
        out
    }
}

/// Matches the a2 panic-site shapes minus slice indexing.
fn panic_site(file: &SourceFile, j: usize) -> Option<&'static str> {
    let toks = &file.toks;
    let t = &toks[j];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev = j.checked_sub(1).map(|p| toks[p].text.as_str());
    let next = toks.get(j + 1).map(|n| n.text.as_str());
    match t.text.as_str() {
        "unwrap" if prev == Some(".") && next == Some("(") => Some("`.unwrap()`"),
        "expect" if prev == Some(".") && next == Some("(") => Some("`.expect()`"),
        "panic" if next == Some("!") => Some("`panic!`"),
        "unreachable" if next == Some("!") => Some("`unreachable!`"),
        "todo" if next == Some("!") => Some("`todo!`"),
        "unimplemented" if next == Some("!") => Some("`unimplemented!`"),
        _ => None,
    }
}
