//! The inter-procedural pass layer.
//!
//! [`Workspace`] is the semantic model the passes share: every file's
//! extracted [`FnItem`]s plus the workspace [`CallGraph`]. A [`Pass`]
//! is one lint over that model; the registry in [`all_passes`] is what
//! the engine runs. The original token-level lints (a1–a6) are wrapped
//! as passes too, so one runner owns lint execution end to end — their
//! per-file semantics are unchanged (the empty baseline stays empty),
//! while the new passes (a7–a10) consume the call graph:
//!
//! * [`a7`] — v3-only frame vocabulary may only be built on
//!   version-gated paths,
//! * [`a8`] — fencing-epoch comparison dominates every `Role` read in
//!   replication handlers,
//! * [`a9`] — WAL append → dedup bump → ack, in that order, on the
//!   sequenced path,
//! * [`a10`] — panic/blocking reachability from the serving entry
//!   points, extending a2/a4 beyond their module allowlists.

pub mod a10;
pub mod a7;
pub mod a8;
pub mod a9;

use crate::callgraph::{self, CallGraph};
use crate::findings::{lint_info, Finding, Severity};
use crate::items::{extract_fns, FnItem};
use crate::lexer::{Tok, TokKind};
use crate::lints;
use crate::source::SourceFile;

/// The semantic model shared by every pass: files, extracted fns, and
/// the call graph over them.
#[derive(Debug)]
pub struct Workspace<'a> {
    /// The parsed source files, in walk order.
    pub files: &'a [SourceFile],
    /// Every extracted fn, grouped by file in extraction order.
    pub fns: Vec<FnItem>,
    /// The call graph over `fns`.
    pub graph: CallGraph,
}

impl<'a> Workspace<'a> {
    /// Extracts items and builds the call graph for `files`.
    pub fn build(files: &'a [SourceFile]) -> Workspace<'a> {
        let mut fns = Vec::new();
        for (i, f) in files.iter().enumerate() {
            fns.extend(extract_fns(f, i));
        }
        let graph = callgraph::build(files, &fns);
        Workspace { files, fns, graph }
    }

    /// The innermost fn whose body span contains token `tok` of file
    /// `file`, or `None` for module-level tokens.
    pub fn fn_containing(&self, file: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file == file
                    && f.body
                        .map(|(o, c)| tok >= f.sig_start && tok >= o && tok <= c)
                        .unwrap_or(false)
            })
            .min_by_key(|(_, f)| {
                let (o, c) = f.body.unwrap_or((0, usize::MAX));
                c - o
            })
            .map(|(i, _)| i)
    }

    /// Indices of fns matching `(path_suffix, name)` entry-point specs.
    pub fn find_entries(&self, specs: &[(&str, &str)]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && specs.iter().any(|(suffix, name)| {
                        f.name == *name && self.files[f.file].path.ends_with(suffix)
                    })
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// One lint over the [`Workspace`] model.
pub trait Pass {
    /// The catalog id of the lint this pass implements.
    fn id(&self) -> &'static str;
    /// Produces raw findings (suppression filtering happens in the
    /// engine).
    fn run(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Builds a finding for `lint` anchored at `tok`.
pub(crate) fn finding(lint: &'static str, path: &str, tok: &Tok, message: String) -> Finding {
    Finding {
        lint,
        severity: Severity::Error,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        hint: lint_info(lint).map(|l| l.hint).unwrap_or(""),
    }
}

/// Index of the token closing the group opened at `open` (`(`, `[` or
/// `{`), balancing all three delimiter kinds together.
pub(crate) fn group_end(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in file.toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// `true` when the `Frame::Variant` mention whose variant ident sits at
/// `variant` is a *pattern* (match arm, `if let`, or-pattern) rather
/// than a construction. After the variant's payload group (if any) and
/// any run of closing `)`, a pattern is followed by `=>`, `|`, or the
/// `=` of `if let … = expr`.
pub(crate) fn is_pattern_position(file: &SourceFile, variant: usize) -> bool {
    let toks = &file.toks;
    let mut j = variant + 1;
    if matches!(
        toks.get(j).map(|t| t.text.as_str()),
        Some("(") | Some("{")
    ) {
        match group_end(file, j) {
            Some(c) => j = c + 1,
            None => return false,
        }
    }
    while toks.get(j).map(|t| t.text.as_str()) == Some(")") {
        j += 1;
    }
    matches!(
        toks.get(j).map(|t| t.text.as_str()),
        Some("=>") | Some("|") | Some("=")
    )
}

/// Wraps the token-level per-file lints (a1, a2, a4, a5, a6) as a pass.
/// Their scoping and semantics are exactly the pre-pass-API behavior;
/// the wrapper only changes who drives the iteration.
pub struct LexicalPass {
    /// Catalog id of the wrapped lint.
    pub lint: &'static str,
    /// The per-file lint body.
    pub f: fn(&SourceFile) -> Vec<Finding>,
}

impl Pass for LexicalPass {
    fn id(&self) -> &'static str {
        self.lint
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        ws.files.iter().flat_map(|f| (self.f)(f)).collect()
    }
}

/// A6 needs the `Frame` variant list, so it gets its own wrapper.
struct FrameExhaustivePass;

impl Pass for FrameExhaustivePass {
    fn id(&self) -> &'static str {
        "a6-frame-exhaustive"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let variants = ws
            .files
            .iter()
            .find(|f| f.path.ends_with("wire/src/frame.rs"))
            .map(lints::frame_variants)
            .unwrap_or_default();
        ws.files
            .iter()
            .flat_map(|f| lints::a6_frame_exhaustive(f, &variants))
            .collect()
    }
}

/// The full pass registry, in catalog order. A3 stays outside: it
/// anchors in manifests, which the [`Workspace`] does not model.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(LexicalPass {
            lint: "a1-atomic-ordering",
            f: lints::a1_atomic_ordering,
        }),
        Box::new(LexicalPass {
            lint: "a2-panic-free",
            f: lints::a2_panic_free,
        }),
        Box::new(LexicalPass {
            lint: "a4-blocking-hot-path",
            f: lints::a4_blocking_hot_path,
        }),
        Box::new(LexicalPass {
            lint: "a5-numeric-narrowing",
            f: lints::a5_numeric_narrowing,
        }),
        Box::new(FrameExhaustivePass),
        Box::new(a7::VersionGating),
        Box::new(a8::FenceOrder),
        Box::new(a9::PersistOrder),
        Box::new(a10::ReachablePanic),
        Box::new(a10::ReachableBlocking),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_containing_picks_the_innermost() {
        let files = vec![SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn outer() { fn inner() { body() } inner() }",
        )];
        let ws = Workspace::build(&files);
        let body = files[0]
            .toks
            .iter()
            .position(|t| t.text == "body")
            .unwrap();
        let f = ws.fn_containing(0, body).unwrap();
        assert_eq!(ws.fns[f].name, "inner");
    }

    #[test]
    fn pattern_vs_construction_positions() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn f(x: Frame) { match x { Frame::Replicate { seg } => (), _ => () } \
             let y = Frame::Replicate { seg: 1 }; \
             if let Frame::Heartbeat(e) = x {} \
             send(Frame::Promote { epoch: 2 }); }",
        );
        let mentions: Vec<usize> = f
            .toks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.text == "Frame" && f.toks.get(i + 1).map(|n| n.text.as_str()) == Some("::")
            })
            .map(|(i, _)| i + 2)
            .collect();
        assert_eq!(mentions.len(), 4);
        assert!(is_pattern_position(&f, mentions[0]));
        assert!(!is_pattern_position(&f, mentions[1]));
        assert!(is_pattern_position(&f, mentions[2]));
        assert!(!is_pattern_position(&f, mentions[3]));
    }

    #[test]
    fn entry_specs_match_path_suffix_and_name() {
        let files = vec![
            SourceFile::parse("crates/server/src/lib.rs", "fn serve_frames() {}"),
            SourceFile::parse("crates/other/src/lib.rs", "fn serve_frames() {}"),
        ];
        let ws = Workspace::build(&files);
        let e = ws.find_entries(&[("server/src/lib.rs", "serve_frames")]);
        assert_eq!(e.len(), 1);
        assert_eq!(ws.fns[e[0]].file, 0);
    }
}
