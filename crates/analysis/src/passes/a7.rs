//! a7-version-gating: v3-only frame vocabulary is only built on
//! version-gated paths.
//!
//! The wire protocol reserves kinds ≥ [`V3_FIRST_KIND`] for sessions
//! that negotiated protocol ≥ 3 (DESIGN.md §12): REPLICATE, PROMOTE,
//! SHARD_MAP and friends. Constructing one of those frames on a path a
//! v2 session can reach means a v2 peer receives a kind it cannot
//! decode — the failure shows up as a remote codec error long after the
//! bug. This pass derives the v3 variant set from the `Kind` enum's
//! discriminants, finds every construction of a v3 `Frame` variant
//! outside the codec crate, and requires the constructing function to
//! be *gated*: either a protocol-version guard appears earlier in the
//! same body, or every non-test caller is (transitively) gated. A
//! function nobody calls and nothing guards is treated as v2-reachable.

use super::{finding, group_end, is_pattern_position, Pass, Workspace};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// First frame kind reserved for protocol ≥ 3 sessions. Mirrors the
/// version table in `crates/wire/src/lib.rs` (kinds 13–16 shipped with
/// v2 RESUME/INSPECT; the replication/sharding vocabulary starts at
/// SHARD_MAP = 17).
pub const V3_FIRST_KIND: u64 = 17;

/// The a7 pass.
pub struct VersionGating;

impl Pass for VersionGating {
    fn id(&self) -> &'static str {
        "a7-version-gating"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let v3 = v3_variants(ws);
        if v3.is_empty() {
            return Vec::new();
        }
        let gates = local_gates(ws);
        let gated = propagate_gates(ws, &gates);
        let mut out = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.path.starts_with("crates/wire/src/") {
                continue; // The codec must name every kind.
            }
            for v in v3_mentions(file, &v3) {
                if file.mask.get(v).copied().unwrap_or(false) {
                    continue;
                }
                if is_pattern_position(file, v) || file.in_use_statement(v) {
                    continue;
                }
                let ok = match ws.fn_containing(fi, v) {
                    Some(f) => {
                        let local_ok = gates[f].map(|g| g < v).unwrap_or(false);
                        local_ok || caller_gated(ws, &gated, f)
                    }
                    None => false,
                };
                if !ok {
                    out.push(finding(
                        "a7-version-gating",
                        &file.path,
                        &file.toks[v],
                        format!(
                            "v3-only `Frame::{}` constructed on a path not gated on \
                             protocol >= 3",
                            file.toks[v].ident_name()
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Token indices of v3 `Frame::Variant` variant idents in `file`.
fn v3_mentions(file: &SourceFile, v3: &[String]) -> Vec<usize> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "Frame"
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("::")
        {
            if let Some(v) = toks.get(i + 2) {
                if v.kind == TokKind::Ident && v3.iter().any(|n| n == v.ident_name()) {
                    out.push(i + 2);
                }
            }
        }
    }
    out
}

/// Variant names whose `Kind` discriminant is ≥ [`V3_FIRST_KIND`],
/// parsed from the wire frame source (`enum Kind { Name = N, … }`).
/// `Kind` and `Frame` variant names coincide by construction.
pub fn v3_variants(ws: &Workspace) -> Vec<String> {
    let Some(file) = ws.files.iter().find(|f| f.path.ends_with("wire/src/frame.rs")) else {
        return Vec::new();
    };
    let toks = &file.toks;
    let Some(start) = toks
        .windows(2)
        .position(|w| w[0].kind == TokKind::Ident && w[0].text == "enum" && w[1].text == "Kind")
    else {
        return Vec::new();
    };
    let Some(open) = toks[start..]
        .iter()
        .position(|t| t.text == "{")
        .map(|p| start + p)
    else {
        return Vec::new();
    };
    let Some(close) = group_end(file, open) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut j = open + 1;
    while j + 2 < close {
        // `Name = N` triples at body depth (the enum is flat).
        if toks[j].kind == TokKind::Ident
            && toks[j + 1].text == "="
            && toks[j + 2].kind == TokKind::Num
        {
            if let Ok(n) = toks[j + 2].text.parse::<u64>() {
                if n >= V3_FIRST_KIND {
                    out.push(toks[j].ident_name().to_string());
                }
            }
            j += 3;
        } else {
            j += 1;
        }
    }
    out
}

/// For each fn: the token index of the first protocol-version guard in
/// its body, if any. A guard is an identifier containing `protocol`
/// compared against a number within the next few tokens (the
/// `session_protocol < 3` idiom), or a call whose name contains `v3`
/// (the client's `require_v3()` idiom).
fn local_gates(ws: &Workspace) -> Vec<Option<usize>> {
    ws.fns
        .iter()
        .map(|f| {
            let (open, close) = f.body?;
            let file = &ws.files[f.file];
            let toks = &file.toks;
            (open + 1..close).find(|&j| {
                let t = &toks[j];
                if t.kind != TokKind::Ident {
                    return false;
                }
                let name = t.ident_name().to_ascii_lowercase();
                if name.contains("protocol") {
                    let cmp_near = (1..=3).any(|d| {
                        toks.get(j + d)
                            .map(|n| n.kind == TokKind::Num)
                            .unwrap_or(false)
                    });
                    if cmp_near {
                        return true;
                    }
                }
                name.contains("v3") && toks.get(j + 1).map(|n| n.text.as_str()) == Some("(")
            })
        })
        .collect()
}

/// Fixpoint: a fn is gated when it has a local guard, or when it has at
/// least one non-test caller and every non-test caller is gated.
fn propagate_gates(ws: &Workspace, gates: &[Option<usize>]) -> Vec<bool> {
    let mut gated: Vec<bool> = gates.iter().map(Option::is_some).collect();
    loop {
        let mut changed = false;
        for f in 0..ws.fns.len() {
            if gated[f] {
                continue;
            }
            if caller_gated_in(ws, &gated, f) {
                gated[f] = true;
                changed = true;
            }
        }
        if !changed {
            return gated;
        }
    }
}

fn caller_gated_in(ws: &Workspace, gated: &[bool], f: usize) -> bool {
    let live: Vec<&usize> = ws.graph.callers[f]
        .iter()
        .filter(|&&c| !ws.fns[c].is_test)
        .collect();
    !live.is_empty() && live.iter().all(|&&c| gated[c])
}

/// Is `f` gated purely through its callers (used for constructions that
/// appear before — or without — a local guard in the same body)?
fn caller_gated(ws: &Workspace, gated: &[bool], f: usize) -> bool {
    caller_gated_in(ws, gated, f)
}
