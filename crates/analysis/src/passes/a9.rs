//! a9-persist-order: WAL append → dedup bump → ack, in that order.
//!
//! DESIGN.md §9's exactly-once argument: a batch is acked only after
//! (1) its bytes are in the WAL and (2) the dedup frontier covers its
//! sequence number. Bumping dedup before the append loses the batch on
//! a crash between the two (the frontier says "applied", the log
//! disagrees); acking before the bump lets a crashed-and-recovered
//! server re-apply a batch the producer saw acknowledged. This pass
//! scopes to server-crate functions whose body touches the WAL append
//! *and* the dedup bump, and checks token order: the first append
//! precedes the first bump, and the last ack emission follows the last
//! bump. (The "last" reading tolerates the early duplicate-ack path,
//! which re-acks an already-covered sequence without appending.)

use super::{finding, is_pattern_position, Pass, Workspace};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// The a9 pass.
pub struct PersistOrder;

impl Pass for PersistOrder {
    fn id(&self) -> &'static str {
        "a9-persist-order"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &ws.fns {
            let file = &ws.files[f.file];
            if !file.path.starts_with("crates/server/src/") || f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let body = open + 1..close;
            let appends: Vec<usize> = body.clone().filter(|&j| is_append(file, j)).collect();
            let bumps: Vec<usize> = body.clone().filter(|&j| is_bump(file, j)).collect();
            let acks: Vec<usize> = body.clone().filter(|&j| is_ack(file, j)).collect();
            if let (Some(&a), Some(&b)) = (appends.first(), bumps.first()) {
                if b < a {
                    out.push(finding(
                        "a9-persist-order",
                        &file.path,
                        &file.toks[b],
                        format!(
                            "`{}` advances the dedup frontier before the WAL append \
                             (crash between them loses an \"applied\" batch)",
                            f.name
                        ),
                    ));
                }
            }
            if let (Some(&b), Some(&k)) = (bumps.last(), acks.last()) {
                if k < b {
                    out.push(finding(
                        "a9-persist-order",
                        &file.path,
                        &file.toks[k],
                        format!(
                            "`{}` writes the ack before the dedup bump that covers it \
                             (recovery re-applies an acked batch)",
                            f.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

fn is_call_named(file: &SourceFile, j: usize, names: &[&str]) -> bool {
    let t = &file.toks[j];
    t.kind == TokKind::Ident
        && names.contains(&t.ident_name())
        && file.toks.get(j + 1).map(|n| n.text.as_str()) == Some("(")
}

/// A WAL append: `.append_encoded(…)` / `.append(…)` method calls.
fn is_append(file: &SourceFile, j: usize) -> bool {
    is_call_named(file, j, &["append_encoded", "append"])
        && j.checked_sub(1)
            .and_then(|p| file.toks.get(p))
            .map(|p| p.text == ".")
            .unwrap_or(false)
}

/// A dedup-frontier bump: any call to `bump_dedup`.
fn is_bump(file: &SourceFile, j: usize) -> bool {
    is_call_named(file, j, &["bump_dedup"])
}

/// An ack emission: a call to an `ack` binding/fn, or a
/// `Frame::BatchAck` construction in expression position.
fn is_ack(file: &SourceFile, j: usize) -> bool {
    if is_call_named(file, j, &["ack"]) {
        return true;
    }
    let toks = &file.toks;
    toks[j].kind == TokKind::Ident
        && toks[j].ident_name() == "BatchAck"
        && j >= 2
        && toks[j - 1].text == "::"
        && toks[j - 2].text == "Frame"
        && !is_pattern_position(file, j)
}
