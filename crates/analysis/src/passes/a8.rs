//! a8-fence-order: the fencing-epoch comparison dominates every `Role`
//! read in replication handlers.
//!
//! DESIGN.md §12's failover safety argument rests on fence-then-role:
//! a handler that consults its `Role` before comparing the caller's
//! fencing epoch can act on a stale role — the "role before epoch" bug
//! class where a network-healed ex-primary accepts REPLICATE or
//! PROMOTE traffic it should have refused as fenced. This pass scopes
//! to `replication.rs` functions that take an epoch parameter *and*
//! read a role; in each, the first epoch comparison must come before
//! the first role read.

use super::{finding, Pass, Workspace};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// The a8 pass.
pub struct FenceOrder;

impl Pass for FenceOrder {
    fn id(&self) -> &'static str {
        "a8-fence-order"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, f) in ws.fns.iter().enumerate() {
            let file = &ws.files[f.file];
            if !file.path.ends_with("replication.rs") || f.is_test {
                continue;
            }
            if !f.params.iter().any(|p| p.contains("epoch")) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let role = (open + 1..close).find(|&j| is_role_read(file, j));
            let fence = (open + 1..close).find(|&j| is_epoch_comparison(file, j));
            let Some(role) = role else {
                continue; // Takes an epoch but never consults the role.
            };
            let fenced_first = fence.map(|e| e < role).unwrap_or(false);
            if !fenced_first {
                out.push(finding(
                    "a8-fence-order",
                    &file.path,
                    &file.toks[role],
                    format!(
                        "`{}` reads the replication role before comparing the fencing \
                         epoch (stale-role window)",
                        ws.fns[i].name
                    ),
                ));
            }
        }
        out
    }
}

/// A role read: the `role` accessor or a `Role` enum mention.
fn is_role_read(file: &SourceFile, j: usize) -> bool {
    let t = &file.toks[j];
    t.kind == TokKind::Ident && matches!(t.ident_name(), "role" | "Role")
}

/// An epoch comparison: an identifier containing `epoch` adjacent to a
/// comparison operator. `<=`, `>=`, `==`, `!=` lex as two puncts, so
/// the first punct (`<`, `>`, `!`, or `=` followed by `=`) is the
/// signal; a bare `=` alone is an assignment and does not count.
fn is_epoch_comparison(file: &SourceFile, j: usize) -> bool {
    let toks = &file.toks;
    let t = &toks[j];
    if t.kind != TokKind::Ident || !t.ident_name().contains("epoch") {
        return false;
    }
    let after = |d: usize| toks.get(j + d).map(|n| n.text.as_str());
    let cmp_after = matches!(after(1), Some("<") | Some(">") | Some("!"))
        || (after(1) == Some("=") && after(2) == Some("="));
    let before = |d: usize| j.checked_sub(d).and_then(|p| toks.get(p)).map(|n| n.text.as_str());
    let cmp_before = matches!(before(1), Some("<") | Some(">"))
        || (before(1) == Some("=")
            && matches!(before(2), Some("<") | Some(">") | Some("=") | Some("!")));
    cmp_after || cmp_before
}
