//! Workspace file discovery.
//!
//! The analyzer lints *shipped* source: `.rs` files under a `src/`
//! directory of any workspace crate (which includes `src/bin`, so the
//! bench-harness bins in `crates/bench/src/bin` are covered), plus the
//! workspace `examples/` tree (examples are documentation users copy —
//! a gated invariant violated in an example propagates), plus every
//! `Cargo.toml`. It deliberately skips:
//!
//! * `shims/` — vendored stand-ins for external crates (offline build
//!   environment); their code is not this workspace's to lint, and
//!   they carry no telemetry feature edges,
//! * `tests/`, `benches/`, fixture trees — test-only code is exempt by
//!   design (the lints also mask `#[cfg(test)]` modules inside `src/`),
//! * `target/`, `.git/`, `results/` — build and output artifacts.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "results", "tests", "benches", "fixtures"];

/// A file selected for analysis, with its repo-relative path and text.
#[derive(Debug)]
pub struct Input {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// Collected analysis inputs.
#[derive(Debug, Default)]
pub struct Inputs {
    /// Rust sources under `src/` trees, sorted by path.
    pub sources: Vec<Input>,
    /// `Cargo.toml` manifests, sorted by path (root manifest included).
    pub manifests: Vec<Input>,
}

/// Walks `root` collecting sources and manifests.
pub fn collect(root: &Path) -> io::Result<Inputs> {
    let mut out = Inputs::default();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
                continue;
            }
            let rel = rel_path(root, &path);
            if name == "Cargo.toml" {
                out.manifests.push(Input {
                    path: rel,
                    text: fs::read_to_string(&path)?,
                });
            } else if name.ends_with(".rs")
                && rel
                    .split('/')
                    .any(|seg| seg == "src" || seg == "examples")
            {
                out.sources.push(Input {
                    path: rel,
                    text: fs::read_to_string(&path)?,
                });
            }
        }
    }
    out.sources.sort_by(|a, b| a.path.cmp(&b.path));
    out.manifests.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Repo-relative `/`-separated path for display and fingerprints.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
