//! A hand-rolled Rust lexer, sufficient for lexical lints.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are not an
//! option; instead this module tokenizes Rust source directly. It is not
//! a full grammar — it only has to get the *lexical* structure right so
//! that lints never mistake the inside of a string or comment for code:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary hash fences (`r##"…"##`), raw byte
//!   strings, byte strings and byte char literals,
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`),
//! * lifetimes vs char literals (`'a` vs `'a'`),
//! * `//` and `/*` sequences inside string literals.
//!
//! Tokens carry 1-based line/column spans. Comments are collected
//! separately (with a `trailing` flag) because the lint layer reads them
//! for suppressions and justification comments.

/// The coarse kind of a significant token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw identifiers).
    Ident,
    /// A lifetime or loop label such as `'a` (without a closing quote).
    Lifetime,
    /// A char or byte-char literal, e.g. `'x'` or `b'\n'`.
    Char,
    /// Any string literal form (plain, byte, raw, raw-byte, C string).
    Str,
    /// A numeric literal (integer or float, any base).
    Num,
    /// Punctuation. `::` and `=>` are single tokens; everything else is
    /// one character per token.
    Punct,
}

/// One significant (non-comment, non-whitespace) token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. String/char literals keep their quotes and
    /// prefixes so the text is unambiguous.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// The identifier this token names, with any raw-identifier prefix
    /// stripped: `r#type` and `type` both answer `"type"`. Consumers
    /// that match identifiers by name (item extraction, call-graph
    /// resolution, keyword checks) must compare through this method —
    /// comparing `text` directly lets `r#`-spelled names slip through a
    /// lint's scope.
    pub fn ident_name(&self) -> &str {
        match self.kind {
            TokKind::Ident => self.text.strip_prefix("r#").unwrap_or(&self.text),
            _ => &self.text,
        }
    }
}

/// A comment, kept out of the significant-token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters (`//…` or `/*…*/`).
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// `true` when a significant token precedes the comment on the same
    /// line (a trailing comment annotates its own line; a standalone
    /// comment annotates the next code line).
    pub trailing: bool,
}

/// The output of [`lex`]: significant tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`, returning significant tokens and comments.
///
/// The lexer never fails: malformed input (e.g. an unterminated string)
/// degrades to consuming the rest of the file as that token, which is
/// the safe direction for a lint tool — it can only under-report inside
/// text it could not segment, never misread text as code.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut last_tok_line = 0u32;

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            let text = take_line_comment(&mut cur);
            out.comments.push(Comment {
                text,
                line,
                trailing: last_tok_line == line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let text = take_block_comment(&mut cur);
            out.comments.push(Comment {
                text,
                line,
                trailing: last_tok_line == line,
            });
            continue;
        }
        let tok = if let Some(tok) = take_prefixed_literal(&mut cur, line, col) {
            tok
        } else if is_ident_start(c) {
            take_ident(&mut cur, line, col)
        } else if c.is_ascii_digit() {
            // A number directly after `.` is a tuple index (`x.0`,
            // `x.0.1`), never a float: the `.1` of `x.0.1` must not be
            // folded into a `0.1` literal.
            let after_dot = out.toks.last().map(|t| t.text == ".").unwrap_or(false);
            take_number(&mut cur, line, col, after_dot)
        } else if c == '"' {
            take_string(&mut cur, line, col)
        } else if c == '\'' {
            take_quote(&mut cur, line, col)
        } else {
            take_punct(&mut cur, line, col)
        };
        last_tok_line = tok.line;
        out.toks.push(tok);
    }
    out
}

fn take_line_comment(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    text
}

fn take_block_comment(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

/// Handles every literal form that starts with what would otherwise be
/// an identifier or a lone `r`/`b`/`c`: raw strings, byte strings, byte
/// chars, C strings and raw identifiers. Returns `None` when the cursor
/// is not at such a prefix, leaving it untouched.
fn take_prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c = cur.peek(0)?;
    let prefix_len = match c {
        'r' | 'b' | 'c' => {
            if (c == 'b' || c == 'c') && cur.peek(1) == Some('r') {
                2
            } else {
                1
            }
        }
        _ => return None,
    };
    let has_r = c == 'r' || (prefix_len == 2 && cur.peek(1) == Some('r'));
    // Count a hash fence after the prefix (raw strings / raw idents).
    let mut hashes = 0usize;
    while cur.peek(prefix_len + hashes) == Some('#') {
        hashes += 1;
    }
    let after = cur.peek(prefix_len + hashes);
    if has_r && after == Some('"') {
        return Some(take_raw_string(cur, prefix_len, hashes, line, col));
    }
    if c == 'r' && prefix_len == 1 && hashes == 1 && after.map(is_ident_start) == Some(true) {
        // Raw identifier `r#ident`.
        let mut text = String::new();
        text.push(cur.bump()?); // r
        cur.bump(); // #
        text.push('#');
        while let Some(n) = cur.peek(0) {
            if !is_ident_continue(n) {
                break;
            }
            text.push(n);
            cur.bump();
        }
        return Some(Tok {
            kind: TokKind::Ident,
            text,
            line,
            col,
        });
    }
    if hashes == 0 && !has_r {
        // `b"…"`, `c"…"`, `b'…'`.
        match cur.peek(prefix_len) {
            Some('"') => {
                let mut tok = {
                    cur.bump();
                    take_string(cur, line, col)
                };
                tok.text.insert(0, c);
                return Some(tok);
            }
            Some('\'') if c == 'b' => {
                cur.bump();
                let mut tok = take_quote(cur, line, col);
                tok.kind = TokKind::Char;
                tok.text.insert(0, 'b');
                return Some(tok);
            }
            _ => return None,
        }
    }
    None
}

fn take_raw_string(cur: &mut Cursor, prefix_len: usize, hashes: usize, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    for _ in 0..prefix_len + hashes + 1 {
        if let Some(ch) = cur.bump() {
            text.push(ch);
        }
    }
    // Body runs, escape-free, until `"` followed by the same fence.
    'body: while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            let mut matched = true;
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    matched = false;
                    break;
                }
            }
            if matched {
                for _ in 0..hashes + 1 {
                    if let Some(q) = cur.bump() {
                        text.push(q);
                    }
                }
                break 'body;
            }
        }
        text.push(ch);
        cur.bump();
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

fn take_ident(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
    }
}

fn take_number(cur: &mut Cursor, line: u32, col: u32, after_dot: bool) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else if c == '.'
            && !after_dot
            && cur.peek(1).map(|d| d.is_ascii_digit()) == Some(true)
            && !text.contains('.')
        {
            // `1.5` but not the range `0..10` (second char is `.`) and
            // not a method call `1.0_f64.sqrt()` (already has a dot).
            text.push(c);
            cur.bump();
        } else if (c == '+' || c == '-')
            && matches!(text.chars().last(), Some('e') | Some('E'))
            && (text.contains('.') || text.starts_with(|d: char| d.is_ascii_digit()))
        {
            // Float exponent sign: `1e-9`, `2.5E+3`.
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Tok {
        kind: TokKind::Num,
        text,
        line,
        col,
    }
}

fn take_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q); // opening quote
    }
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime/label) after a
/// single quote.
fn take_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume `\x`, then everything up to
            // the closing quote (covers `\x41`, `\u{1F600}`, `\n`, `\'`).
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            while let Some(c) = cur.peek(0) {
                text.push(c);
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if cur.peek(1) == Some('\'') => {
            // `'x'` — exactly one char then a closing quote. This wins
            // over the lifetime reading (`'a` followed by `'b'` never
            // parses this way in real code).
            text.push(c);
            cur.bump();
            text.push('\'');
            cur.bump();
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // Lifetime or loop label: `'a`, `'static`, `'outer`.
            while let Some(n) = cur.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            }
        }
        _ => Tok {
            kind: TokKind::Char,
            text,
            line,
            col,
        },
    }
}

fn take_punct(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let c = cur.bump().unwrap_or(' ');
    let mut text = String::from(c);
    // Only the two-char puncts the lints care about are fused; all other
    // punctuation stays one char per token.
    if (c == ':' && cur.peek(0) == Some(':')) || (c == '=' && cur.peek(0) == Some('>')) {
        if let Some(second) = cur.bump() {
            text.push(second);
        }
    }
    Tok {
        kind: TokKind::Punct,
        text,
        line,
        col,
    }
}

/// Computes, for each token, whether it sits inside test-only code: an
/// item annotated `#[test]`/`#[cfg(test)]` (or any attribute whose
/// argument list mentions `test`, e.g. `#[cfg(any(test, fuzzing))]`).
///
/// The marked region runs from the attribute through the end of the
/// annotated item — either the matching `}` of its first block or a `;`
/// at item depth — so a `#[cfg(test)] mod tests { … }` masks its whole
/// body.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[")) {
            i += 1;
            continue;
        }
        // Scan the attribute to its matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut bracket_depth = 1usize;
        let mut mentions_test = false;
        while j < toks.len() && bracket_depth > 0 {
            match toks[j].text.as_str() {
                "[" => bracket_depth += 1,
                "]" => bracket_depth -= 1,
                "test" if toks[j].kind == TokKind::Ident => {
                    // `#[cfg(not(test))]` gates *production* code; only a
                    // positive `test` mention marks a test region.
                    let negated = j >= 2 && toks[j - 1].text == "(" && toks[j - 2].text == "not";
                    if !negated {
                        mentions_test = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j < toks.len()
            && toks[j].text == "#"
            && toks.get(j + 1).map(|t| t.text.as_str()) == Some("[")
        {
            let mut depth = 1usize;
            j += 2;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Consume the annotated item: to the matching `}` of its first
        // brace, or to a `;` before any brace opens.
        let mut brace_depth = 0usize;
        let mut saw_brace = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    brace_depth += 1;
                    saw_brace = true;
                }
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if saw_brace && brace_depth == 0 {
                        j += 1;
                        break;
                    }
                }
                ";" if !saw_brace => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for m in mask.iter_mut().take(j).skip(attr_start) {
            *m = true;
        }
        i = j;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        let texts: Vec<_> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comment_sequences_inside_strings_are_not_comments() {
        let l = lex(r#"let url = "https://example.org"; x()"#);
        assert!(l.comments.is_empty());
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("https://")));
    }

    #[test]
    fn block_comment_openers_inside_strings_are_not_comments() {
        let l = lex(r#"let s = "/* not a comment */"; y"#);
        assert!(l.comments.is_empty());
        assert!(l.toks.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn raw_strings_with_fences_and_embedded_quotes() {
        let l = lex(r###"let s = r#"she said "hi" // not a comment"#; z"###);
        assert!(l.comments.is_empty());
        let s = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string token");
        assert!(s.text.contains(r#""hi""#));
        assert!(l.toks.iter().any(|t| t.text == "z"));
    }

    #[test]
    fn raw_string_backslash_is_not_an_escape() {
        // In a cooked string `"\"` would swallow the quote; raw must not.
        let l = lex(r#"let s = r"\"; tail"#);
        assert!(l.toks.iter().any(|t| t.text == "tail"));
    }

    #[test]
    fn raw_identifier_vs_raw_string() {
        let toks = kinds_and_texts(r##"r#match r"str" r#"raw"#"##);
        assert_eq!(toks[0], (TokKind::Ident, "r#match".into()));
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::Str);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds_and_texts(r"fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds_and_texts(r"'\n' '\'' '\u{1F600}' 'static");
        assert_eq!(toks[0], (TokKind::Char, r"'\n'".into()));
        assert_eq!(toks[1], (TokKind::Char, r"'\''".into()));
        assert_eq!(toks[2].0, TokKind::Char);
        assert_eq!(toks[3], (TokKind::Lifetime, "'static".into()));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds_and_texts(r##"b'x' b"bytes" br#"raw bytes"# "##);
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::Str);
    }

    #[test]
    fn fused_puncts_and_numbers() {
        let toks = kinds_and_texts("Ordering::Relaxed => 1.5e-3 0..10 x.0");
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(toks.contains(&(TokKind::Punct, "=>".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5e-3".into())));
        // `0..10` must not lex `0.` as a float.
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Num, "10".into())));
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let l = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn inner() { x.unwrap(); } }\nfn live2() {}";
        let l = lex(src);
        let mask = test_mask(&l.toks);
        let masked: Vec<_> = l
            .toks
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"unwrap"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"live2"));
    }

    #[test]
    fn raw_identifier_adversarial_corpus() {
        // Raw idents in every position a lint consumer reads: fn names,
        // params, fields, method calls, patterns — and right next to raw
        // strings so the `r#` prefix disambiguation is exercised.
        let toks = kinds_and_texts(
            r##"fn r#type(r#else: u32) { r#type.r#await; let s = r#"raw"#; if let Some(r#struct) = m {} }"##,
        );
        for want in ["r#type", "r#else", "r#await", "r#struct"] {
            assert!(
                toks.contains(&(TokKind::Ident, want.into())),
                "missing ident {want}: {toks:?}"
            );
        }
        assert!(toks.contains(&(TokKind::Str, r##"r#"raw"#"##.into())));
        // `ident_name` strips the prefix so name-matching consumers see
        // through the raw spelling.
        let l = lex("r#type plain");
        assert_eq!(l.toks[0].ident_name(), "type");
        assert_eq!(l.toks[1].ident_name(), "plain");
    }

    #[test]
    fn raw_identifier_never_absorbs_following_tokens() {
        // `r#ident` at EOF, before `::`, and before `(` must terminate
        // exactly at the identifier.
        let toks = kinds_and_texts("r#mod::r#fn(r#in)");
        assert_eq!(toks[0], (TokKind::Ident, "r#mod".into()));
        assert_eq!(toks[1], (TokKind::Punct, "::".into()));
        assert_eq!(toks[2], (TokKind::Ident, "r#fn".into()));
        assert_eq!(toks[3], (TokKind::Punct, "(".into()));
        assert_eq!(toks[4], (TokKind::Ident, "r#in".into()));
    }

    #[test]
    fn let_else_adversarial_corpus() {
        // `let`-`else` must lex as plain tokens — the diverging block's
        // `}` followed by `;` is the shape that used to confuse
        // statement-boundary consumers.
        let src = "let Some(x) = it.next() else {\n    return None;\n};\nx.load(Relaxed);";
        let l = lex(src);
        let texts: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        let else_pos = texts.iter().position(|t| *t == "else").expect("else");
        assert_eq!(texts[else_pos + 1], "{");
        // The `};` pair survives as two separate puncts.
        assert!(texts.windows(2).any(|w| w == ["}", ";"]));
        // Tokens after the let-else still lex with correct lines.
        let load = l.toks.iter().find(|t| t.text == "load").expect("load");
        assert_eq!(load.line, 4);
    }

    #[test]
    fn tuple_index_chains_are_not_floats() {
        // `x.0.1` is two tuple-index accesses, not a `0.1` float.
        let toks = kinds_and_texts("x.0.1 + y.0 + 0.1");
        assert_eq!(toks[0], (TokKind::Ident, "x".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Num, "0".into()));
        assert_eq!(toks[3], (TokKind::Punct, ".".into()));
        assert_eq!(toks[4], (TokKind::Num, "1".into()));
        // Real float literals still fold.
        assert!(toks.contains(&(TokKind::Num, "0.1".into())));
    }

    #[test]
    fn test_mask_unaffected_by_let_else_blocks() {
        // The `else { … }` divergence block inside a `#[cfg(test)]` fn
        // must not end the masked region early.
        let src = "#[cfg(test)]\nfn t() { let Some(x) = y else { return }; x.unwrap(); }\nfn live() { ok() }";
        let l = lex(src);
        let mask = test_mask(&l.toks);
        let unmasked: Vec<&str> = l
            .toks
            .iter()
            .zip(&mask)
            .filter(|(_, m)| !**m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(!unmasked.contains(&"unwrap"));
        assert!(unmasked.contains(&"live"));
    }

    #[test]
    fn test_mask_covers_test_fn_and_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn fine() {}";
        let l = lex(src);
        let mask = test_mask(&l.toks);
        let unmasked: Vec<_> = l
            .toks
            .iter()
            .zip(&mask)
            .filter(|(_, m)| !**m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(unmasked.contains(&"fine"));
        assert!(!unmasked.contains(&"panic"));
    }
}
