//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p ss-analyze -- check             # the gate: exit 2 on new findings
//! cargo run -p ss-analyze -- report --json     # machine-readable summary
//! cargo run -p ss-analyze -- report --sarif    # SARIF 2.1.0 for code-scanning UIs
//! cargo run -p ss-analyze -- baseline --write  # regenerate the baseline file
//! cargo run -p ss-analyze -- lints             # print the lint catalog
//! ```
//!
//! `check` subtracts the checked-in baseline
//! (`crates/analysis/baseline.txt`); policy is ratchet-only and the
//! baseline ships empty. Exit codes: 0 clean, 1 usage/IO error, 2 new
//! findings.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use ss_analyze::findings::{apply_baseline, parse_baseline, Finding, LINTS};
use ss_analyze::{analyze, walk};
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_REL: &str = "crates/analysis/baseline.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut json = false;
    let mut sarif = false;
    let mut write = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "report" | "baseline" | "lints" if cmd.is_none() => cmd = Some(a.to_string()),
            "--root" => root = it.next().map(PathBuf::from),
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--write" => write = true,
            other => {
                eprintln!("ss-analyze: unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(cmd) = cmd else {
        return usage();
    };
    if cmd == "lints" {
        for l in LINTS {
            println!("{:<24} {}", l.id, l.summary);
        }
        return ExitCode::SUCCESS;
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| walk::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("ss-analyze: could not locate the workspace root (pass --root)");
            return ExitCode::FAILURE;
        }
    };
    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ss-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = root.join(BASELINE_REL);
    let baseline = std::fs::read_to_string(&baseline_path)
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();

    match cmd.as_str() {
        "baseline" if write => {
            let mut text = String::from(
                "# ss-analyze baseline: fingerprints of findings the gate tolerates.\n\
                 # Policy is ratchet-only (CI asserts this file never grows); new code\n\
                 # must use `// ss-analyze: allow(<lint>) -- <reason>` instead.\n",
            );
            for f in &analysis.findings {
                text.push_str(&f.fingerprint());
                text.push('\n');
            }
            if let Err(e) = std::fs::write(&baseline_path, text) {
                eprintln!("ss-analyze: writing baseline: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} entries to {}",
                analysis.findings.len(),
                baseline_path.display()
            );
            ExitCode::SUCCESS
        }
        "baseline" => {
            println!("{} baseline entries", baseline.len());
            ExitCode::SUCCESS
        }
        "check" => {
            let (new, old, stale) = apply_baseline(analysis.findings, &baseline);
            for f in &new {
                println!("{f}");
            }
            for s in &stale {
                println!("warning: stale baseline entry (fix landed — remove it): {s}");
            }
            println!(
                "ss-analyze: {} source files, {} manifests; {} new finding(s), \
                 {} baselined, {} stale baseline entr(ies)",
                analysis.sources,
                analysis.manifests,
                new.len(),
                old.len(),
                stale.len()
            );
            if new.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        "report" => {
            let (new, old, stale) = apply_baseline(analysis.findings.clone(), &baseline);
            if sarif {
                println!("{}", render_sarif(&new));
            } else if json {
                println!(
                    "{}",
                    render_json(
                        &analysis.findings,
                        &new,
                        &old,
                        &stale,
                        baseline.len(),
                        analysis.sources,
                        analysis.manifests
                    )
                );
            } else {
                for f in &analysis.findings {
                    println!("{f}");
                }
                println!(
                    "{} finding(s) total, {} new",
                    analysis.findings.len(),
                    new.len()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ss-analyze <check|report|baseline|lints> [--root <path>] [--json] [--sarif] [--write]"
    );
    ExitCode::FAILURE
}

/// Minimal JSON escaping for finding messages and paths.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    all: &[Finding],
    new: &[Finding],
    old: &[Finding],
    stale: &[String],
    baseline_entries: usize,
    sources: usize,
    manifests: usize,
) -> String {
    let mut per_lint: Vec<(&str, usize)> = Vec::new();
    for l in LINTS {
        let n = all.iter().filter(|f| f.lint == l.id).count();
        if n > 0 {
            per_lint.push((l.id, n));
        }
    }
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"sources\": {sources},\n"));
    s.push_str(&format!("  \"manifests\": {manifests},\n"));
    s.push_str(&format!("  \"total_findings\": {},\n", all.len()));
    s.push_str(&format!("  \"new_findings\": {},\n", new.len()));
    s.push_str(&format!("  \"baselined_findings\": {},\n", old.len()));
    s.push_str(&format!("  \"baseline_entries\": {baseline_entries},\n"));
    s.push_str(&format!("  \"stale_baseline_entries\": {},\n", stale.len()));
    s.push_str("  \"per_lint\": {");
    s.push_str(
        &per_lint
            .iter()
            .map(|(id, n)| format!("\"{id}\": {n}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    s.push_str("},\n  \"findings\": [\n");
    let rendered: Vec<String> = new
        .iter()
        .map(|f| {
            format!(
                "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                f.lint,
                f.severity,
                esc(&f.path),
                f.line,
                f.col,
                esc(&f.message)
            )
        })
        .collect();
    s.push_str(&rendered.join(",\n"));
    s.push_str("\n  ]\n}");
    s
}

/// Renders the post-baseline findings as a single-run SARIF 2.1.0 log:
/// one `rule` per catalog entry, one `result` per finding, physical
/// locations with 1-based line/column. The shape targets code-scanning
/// ingestion (GitHub's SARIF upload, VS Code SARIF viewers) without
/// pulling in a serializer.
fn render_sarif(new: &[Finding]) -> String {
    let mut s = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"ss-analyze\",\n          \
         \"informationUri\": \"crates/analysis\",\n          \"rules\": [\n",
    );
    let rules: Vec<String> = LINTS
        .iter()
        .map(|l| {
            format!(
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
                 \"help\": {{\"text\": \"{}\"}}}}",
                l.id,
                esc(l.summary),
                esc(l.hint)
            )
        })
        .collect();
    s.push_str(&rules.join(",\n"));
    s.push_str("\n          ]\n        }\n      },\n      \"results\": [\n");
    let results: Vec<String> = new
        .iter()
        .map(|f| {
            format!(
                "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": \
                 {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": \
                 {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
                f.lint,
                match f.severity {
                    ss_analyze::findings::Severity::Error => "error",
                    ss_analyze::findings::Severity::Warning => "warning",
                },
                esc(&f.message),
                esc(&f.path),
                f.line,
                f.col
            )
        })
        .collect();
    s.push_str(&results.join(",\n"));
    s.push_str("\n      ]\n    }\n  ]\n}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_analyze::findings::Severity;

    #[test]
    fn sarif_log_is_parseable_and_carries_findings() {
        let f = Finding {
            lint: "a9-persist-order",
            severity: Severity::Error,
            path: "crates/server/src/lib.rs".into(),
            line: 7,
            col: 3,
            message: "ack \"before\" bump".into(),
            hint: "",
        };
        let log = render_sarif(&[f]);
        // No serializer in the workspace, so pin the load-bearing SARIF
        // shape textually: version, one rule per catalog entry, the
        // escaped result with its physical location.
        assert!(log.contains("\"version\": \"2.1.0\""));
        assert!(log.contains("\"ruleId\": \"a9-persist-order\""));
        assert!(log.contains("\"startLine\": 7"));
        assert!(log.contains("ack \\\"before\\\" bump"));
        for l in LINTS {
            assert!(log.contains(l.id), "rule {} missing", l.id);
        }
        // Braces and brackets balance (cheap well-formedness check).
        let bal = |o: char, c: char| {
            log.chars().filter(|&x| x == o).count() == log.chars().filter(|&x| x == c).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
    }
}
