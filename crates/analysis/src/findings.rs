//! Findings, the lint catalog, and the checked-in baseline.
//!
//! A [`Finding`] is one violation at one span. The catalog in [`LINTS`]
//! is the closed set of lint ids: suppressions naming an id outside it
//! are themselves findings, so typos cannot silently disable a lint.
//!
//! The baseline (`crates/analysis/baseline.txt`) lets the gate land
//! clean on a tree with known debt: fingerprints listed there are
//! subtracted from `check`'s failure set. Policy is ratchet-only — CI
//! asserts the baseline never grows, and this workspace ships with an
//! **empty** baseline (every pre-existing finding was fixed or granted
//! a written suppression).

use std::fmt;

/// How bad a finding is. Every cataloged lint gates the build; the
/// distinction exists so future advisory lints don't have to fail CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Blocks `ss-analyze -- check` (exit code 2).
    Error,
    /// Reported but never fails the gate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One lint violation, anchored to a file/line/column span.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Catalog id, e.g. `a2-panic-free`.
    pub lint: &'static str,
    /// Gate severity.
    pub severity: Severity,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, specific to the span.
    pub message: String,
    /// How to fix it (or how to justify it), from the catalog.
    pub hint: &'static str,
}

impl Finding {
    /// Stable identity used for baseline matching. Line/column are
    /// deliberately excluded so unrelated edits above a known finding
    /// do not churn the baseline.
    pub fn fingerprint(&self) -> String {
        format!("{}\t{}\t{}", self.lint, self.path, self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}:{}: {}\n  help: {}",
            self.severity, self.lint, self.path, self.line, self.col, self.message, self.hint
        )
    }
}

/// Catalog entry for one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable id used in findings and `allow(...)` suppressions.
    pub id: &'static str,
    /// One-line statement of the invariant the lint enforces.
    pub summary: &'static str,
    /// Fix hint attached to every finding of this lint.
    pub hint: &'static str,
}

/// The closed lint catalog. `allow(...)` ids are validated against it.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "a0-bad-suppression",
        summary: "every `ss-analyze: allow(...)` must be well-formed and carry a `-- <reason>`",
        hint: "write `// ss-analyze: allow(<lint-id>) -- <why this is sound>`",
    },
    LintInfo {
        id: "a0-unknown-lint",
        summary: "suppressions must name lint ids from the catalog",
        hint: "run `ss-analyze -- lints` for the catalog of valid ids",
    },
    LintInfo {
        id: "a0-unused-suppression",
        summary: "a suppression that matches no finding is stale and must be removed",
        hint: "delete the `ss-analyze: allow(...)` comment (the code it excused is gone)",
    },
    LintInfo {
        id: "a1-atomic-ordering",
        summary: "every `Ordering::Relaxed`/`Ordering::SeqCst` use must carry an `ordering:` \
                  comment naming the happens-before edge it relies on (or forgoes)",
        hint: "add `// ordering: <edge or why none is needed>` trailing or immediately above",
    },
    LintInfo {
        id: "a2-panic-free",
        summary: "no unwrap/expect/panic!/slice-index in non-test code of the serving crates \
                  (wire, server, durability, ingest)",
        hint: "return a typed error (WireError/ServerError/IngestError/WalError) or justify \
               the bound with a suppression",
    },
    LintInfo {
        id: "a3-telemetry-edge",
        summary: "every internal dependency edge on an instrumented crate must resolve \
                  `default-features = false` and forward the telemetry gate",
        hint: "set `default-features = false` on the edge (or its [workspace.dependencies] \
               entry) and forward via `telemetry = [\"stream-telemetry/enabled\"]`",
    },
    LintInfo {
        id: "a4-blocking-hot-path",
        summary: "no std::sync::Mutex / thread::sleep in hot-path modules",
        hint: "use the lock-free atomics idiom of telemetry/ingest, move the blocking call \
               off the hot path, or justify with a suppression",
    },
    LintInfo {
        id: "a5-numeric-narrowing",
        summary: "no `as` casts to sub-128-bit numeric types in codec/estimator arithmetic \
                  (the i128-overflow class fixed in PR 1)",
        hint: "use From/TryFrom (which encode the direction in the type system), widen to \
               i128/u128/f64, or justify the bound with a suppression",
    },
    LintInfo {
        id: "a6-frame-exhaustive",
        summary: "no catch-all arm may absorb `Frame` kinds: every wire match lists every \
                  frame it does not handle",
        hint: "enumerate the remaining Frame kinds explicitly (rejecting is fine — \
               silently absorbing is not) or justify with a suppression",
    },
    LintInfo {
        id: "a7-version-gating",
        summary: "v3-only frame kinds (SHARD_MAP and above) may only be constructed on \
                  paths gated on protocol >= 3 — a v2 session must never receive them",
        hint: "guard the path on the negotiated protocol (`session_protocol < 3` reject, \
               or the client's `require_v3()`), or justify with a suppression",
    },
    LintInfo {
        id: "a8-fence-order",
        summary: "replication handlers taking a fencing epoch must compare it before \
                  reading the role (role-before-epoch acts on a stale role)",
        hint: "hoist the epoch comparison above the first `role()` read, or justify \
               with a suppression",
    },
    LintInfo {
        id: "a9-persist-order",
        summary: "on the sequenced path, WAL append precedes the dedup bump precedes the \
                  ack write (DESIGN.md §9 lock ordering)",
        hint: "reorder to append → bump_dedup → ack, or justify with a suppression",
    },
    LintInfo {
        id: "a10-reachable-panic",
        summary: "no unwrap/expect/panic-family macros in fns reachable from the serving \
                  entry points, even outside a2's module allowlist",
        hint: "return a typed error, or justify the impossibility with a suppression",
    },
    LintInfo {
        id: "a10-reachable-blocking",
        summary: "no Mutex/thread::sleep in fns reachable from the serving entry points, \
                  even outside a4's module allowlist",
        hint: "use the lock-free atomics idiom, move the call off the reachable path, \
               or justify with a suppression",
    },
];

/// Looks up a catalog entry by id.
pub fn lint_info(id: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.id == id)
}

/// Parses baseline text into fingerprints. Lines starting with `#` and
/// blank lines are ignored.
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Splits `findings` into (new, baselined) against the baseline
/// multiset, and returns the stale baseline entries that matched no
/// finding. Matching is by [`Finding::fingerprint`], one entry
/// consuming one finding.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[String],
) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
    let mut remaining: Vec<Option<&String>> = baseline.iter().map(Some).collect();
    let mut new = Vec::new();
    let mut old = Vec::new();
    for f in findings {
        let fp = f.fingerprint();
        match remaining
            .iter_mut()
            .find(|slot| slot.map(|s| *s == fp).unwrap_or(false))
        {
            Some(slot) => {
                *slot = None;
                old.push(f);
            }
            None => new.push(f),
        }
    }
    let stale = remaining.into_iter().flatten().cloned().collect();
    (new, old, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, msg: &str) -> Finding {
        Finding {
            lint,
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line: 1,
            col: 1,
            message: msg.into(),
            hint: "",
        }
    }

    #[test]
    fn baseline_consumes_one_match_per_entry() {
        let f1 = finding("a2-panic-free", "dup");
        let f2 = finding("a2-panic-free", "dup");
        let base = vec![f1.fingerprint()];
        let (new, old, stale) = apply_baseline(vec![f1, f2], &base);
        assert_eq!(new.len(), 1);
        assert_eq!(old.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let base = vec!["a1-atomic-ordering\tgone.rs\tmsg".to_string()];
        let (new, old, stale) = apply_baseline(vec![], &base);
        assert!(new.is_empty() && old.is_empty());
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn catalog_ids_are_unique() {
        for (i, a) in LINTS.iter().enumerate() {
            for b in &LINTS[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
