//! Item extraction: functions, their signatures and body spans.
//!
//! This is the first layer of the semantic model the inter-procedural
//! passes (a7–a10) run on. It walks a file's token stream once,
//! tracking brace nesting, inline `mod` scopes and `impl` blocks, and
//! records every `fn` item: its (raw-identifier-normalized) name,
//! parameter names, the token span of its body, and whether it sits in
//! test-masked code. The extractor is purely lexical — generics,
//! where-clauses and return types are skipped by delimiter counting,
//! which is exact for this macro-light, `unsafe`-free workspace.

use crate::lexer::TokKind;
use crate::source::SourceFile;

/// One `fn` item in one file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the file in the workspace file list.
    pub file: usize,
    /// Function name, raw-identifier prefix stripped (`fn r#type` → `type`).
    pub name: String,
    /// Inline module path within the file (`mod a { mod b { fn f } }` →
    /// `["a", "b"]`). The file's own module identity lives in its path.
    pub modules: Vec<String>,
    /// The `Self` type name when the fn sits in an `impl` block
    /// (`impl Wal { fn append }` → `Some("Wal")`; trait impls record
    /// the implementing type, not the trait).
    pub impl_type: Option<String>,
    /// Parameter names in order, normalized; `self` is recorded as "self".
    pub params: Vec<String>,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token span of the body: indices of the opening `{` and its
    /// matching `}`, inclusive. `None` for bodyless declarations
    /// (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the `fn` keyword is inside `#[test]`/`#[cfg(test)]` code.
    pub is_test: bool,
}

impl FnItem {
    /// The crate-level grouping key derived from the file path:
    /// `crates/server/src/lib.rs` → `server`, `examples/foo.rs` →
    /// `examples`. Used by call-graph resolution to prefer same-crate
    /// candidates.
    pub fn crate_of(path: &str) -> &str {
        let mut parts = path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or(""),
            Some(first) => first,
            None => "",
        }
    }
}

/// A scope opened by `{`, tracked so `mod`/`impl` membership is known
/// for each fn.
#[derive(Debug)]
enum Scope {
    /// `mod name { … }`.
    Module(String),
    /// `impl [Trait for] Type { … }`.
    Impl(Option<String>),
    /// Any other brace (fn body, block, struct literal, match, …).
    Other,
}

/// Extracts every `fn` item from `file` (index `file_idx` in the
/// workspace list). Nested fns are extracted as their own items; their
/// token spans lie inside the enclosing fn's body span.
pub fn extract_fns(file: &SourceFile, file_idx: usize) -> Vec<FnItem> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // Pending scope kind decided at keyword time, applied at the next `{`.
    let mut pending: Option<Scope> = None;
    let mut module_stack: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "mod") => {
                // `mod name {` opens a module scope; `mod name;` does not.
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    pending = Some(Scope::Module(name.ident_name().to_string()));
                }
            }
            (TokKind::Ident, "impl") => {
                pending = Some(Scope::Impl(impl_self_type(file, i)));
            }
            (TokKind::Ident, "fn") => {
                // A `fn` keyword directly after `impl`-header tokens is
                // impossible here: `Fn`-trait bounds are `Fn`/`FnMut`
                // (uppercase) and `fn` pointer types appear in type
                // position where we still extract nothing (no name
                // ident follows — `fn(` fails the name check below).
                if let Some(item) =
                    extract_one(file, file_idx, i, &module_stack, impl_ctx(&scopes))
                {
                    out.push(item);
                }
                // The signature-to-body scan happens again naturally via
                // the outer loop's brace tracking; no skip needed.
            }
            (TokKind::Punct, "{") => {
                let scope = pending.take().unwrap_or(Scope::Other);
                if let Scope::Module(name) = &scope {
                    module_stack.push(name.clone());
                }
                scopes.push(scope);
            }
            (TokKind::Punct, "}") => {
                if let Some(Scope::Module(_)) = scopes.last() {
                    module_stack.pop();
                }
                scopes.pop();
            }
            (TokKind::Punct, ";") => {
                // `mod name;` / `impl` can't end in `;`, but a pending
                // scope that never saw `{` is stale either way.
                pending = None;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The innermost `impl` self type among open scopes, unless a fn-body
/// or other brace intervenes (a closure inside a method is still in the
/// impl; a nested `mod` resets it — handled by walking from the top).
fn impl_ctx(scopes: &[Scope]) -> Option<String> {
    let mut ctx = None;
    for s in scopes {
        match s {
            Scope::Impl(t) => ctx = t.clone(),
            Scope::Module(_) => ctx = None,
            Scope::Other => {}
        }
    }
    ctx
}

/// Parses the `Self` type name of an `impl` header starting at token
/// `i` (the `impl` keyword): the last plain identifier of the type path
/// before the body `{` (or before `<` generic arguments), after `for`
/// when the header is a trait impl.
fn impl_self_type(file: &SourceFile, i: usize) -> Option<String> {
    let toks = &file.toks;
    let mut j = i + 1;
    // Skip `impl<…>` generics: balance `<`/`>` counting from an
    // immediate `<`. `->` cannot appear before the body brace here.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut depth = 1i32;
        j += 1;
        while depth > 0 {
            match toks.get(j)?.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    // Walk to `{`, remembering the last ident seen at angle-depth 0;
    // restart the memory after `for` (trait impls name the type there).
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    while let Some(t) = toks.get(j) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") if angle <= 0 => return last,
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Ident, "for") => last = None,
            (TokKind::Ident, "where") => return last,
            (TokKind::Ident, _) if angle == 0 => {
                last = Some(t.ident_name().to_string());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Extracts the single fn whose `fn` keyword is at token `i`.
fn extract_one(
    file: &SourceFile,
    file_idx: usize,
    i: usize,
    modules: &[String],
    impl_type: Option<String>,
) -> Option<FnItem> {
    let toks = &file.toks;
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(` pointer type or malformed — not an item.
    }
    let name = name_tok.ident_name().to_string();
    // Find the parameter list `(` then scan the signature for the body
    // `{` or a terminating `;` at bracket depth 0. Only `(`/`)` and
    // `[`/`]` are balanced: `{` cannot occur in this workspace's
    // signatures (no const-generic block expressions).
    let mut j = i + 2;
    let mut params = Vec::new();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut seen_params = false;
    let (body_open, body) = loop {
        let t = toks.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") => {
                paren += 1;
                if paren == 1 && !seen_params {
                    seen_params = true;
                }
            }
            (TokKind::Punct, ")") => paren -= 1,
            (TokKind::Punct, "[") => bracket += 1,
            (TokKind::Punct, "]") => bracket -= 1,
            (TokKind::Punct, "{") if paren == 0 && bracket == 0 => break (j, true),
            (TokKind::Punct, ";") if paren == 0 && bracket == 0 => break (j, false),
            (TokKind::Ident, "self") if paren == 1 && seen_params && params.is_empty() => {
                params.push("self".to_string());
            }
            (TokKind::Ident, _) if paren == 1 && seen_params => {
                // A parameter name is an ident directly followed by `:`
                // (the fused `::` token cannot be confused with it).
                if toks.get(j + 1).map(|n| n.text.as_str()) == Some(":") {
                    params.push(t.ident_name().to_string());
                }
            }
            _ => {}
        }
        j += 1;
    };
    let body_span = if body {
        let close = matching_brace(file, body_open)?;
        Some((body_open, close))
    } else {
        None
    };
    Some(FnItem {
        file: file_idx,
        name,
        modules: modules.to_vec(),
        impl_type,
        params,
        sig_start: i,
        body: body_span,
        line: toks[i].line,
        is_test: file.mask.get(i).copied().unwrap_or(false),
    })
}

/// Index of the `}` matching the `{` at token `open`.
pub fn matching_brace(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in file.toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn fns(src: &str) -> Vec<FnItem> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        extract_fns(&f, 0)
    }

    #[test]
    fn plain_fn_with_params_and_body() {
        let items = fns("fn add(a: u32, b: u32) -> u32 { a + b }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "add");
        assert_eq!(items[0].params, ["a", "b"]);
        assert!(items[0].body.is_some());
        assert!(!items[0].is_test);
    }

    #[test]
    fn impl_methods_record_self_type() {
        let src = "impl Wal { fn append(&mut self, buf: &[u8]) {} }\n\
                   impl fmt::Display for Frame { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) } }";
        let items = fns(src);
        assert_eq!(items[0].impl_type.as_deref(), Some("Wal"));
        assert_eq!(items[0].params, ["self", "buf"]);
        assert_eq!(items[1].impl_type.as_deref(), Some("Frame"));
        assert_eq!(items[1].name, "fmt");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let items = fns("impl<T: Clone> Ring<T> { fn push(&mut self, v: T) {} }");
        assert_eq!(items[0].impl_type.as_deref(), Some("Ring"));
    }

    #[test]
    fn inline_modules_scope_fns() {
        let items = fns("mod outer { mod inner { fn deep() {} } fn mid() {} } fn top() {}");
        assert_eq!(items[0].name, "deep");
        assert_eq!(items[0].modules, ["outer", "inner"]);
        assert_eq!(items[1].name, "mid");
        assert_eq!(items[1].modules, ["outer"]);
        assert_eq!(items[2].name, "top");
        assert!(items[2].modules.is_empty());
    }

    #[test]
    fn raw_identifier_fn_names_normalize() {
        let items = fns("fn r#type(r#else: u32) {}");
        assert_eq!(items[0].name, "type");
        assert_eq!(items[0].params, ["else"]);
    }

    #[test]
    fn let_else_does_not_end_the_body_early() {
        let src = "fn f() { let Some(x) = y else { return }; tail() } fn g() {}";
        let items = fns(src);
        assert_eq!(items.len(), 2);
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let (open, close) = items[0].body.unwrap();
        // `tail` must be inside f's body span.
        let tail = f.toks.iter().position(|t| t.text == "tail").unwrap();
        assert!(open < tail && tail < close);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let items = fns("trait T { fn must(&self) -> u32; fn with(&self) {} }");
        assert_eq!(items[0].name, "must");
        assert!(items[0].body.is_none());
        assert_eq!(items[1].name, "with");
        assert!(items[1].body.is_some());
    }

    #[test]
    fn test_mask_flags_test_fns() {
        let items = fns("#[cfg(test)] mod tests { fn helper() {} } fn live() {}");
        assert!(items[0].is_test);
        assert!(!items[1].is_test);
    }

    #[test]
    fn where_clauses_and_array_types_are_skipped() {
        let items = fns("fn f<T>(xs: [T; 4]) -> [u8; 2] where T: Copy { loop {} }");
        assert_eq!(items[0].name, "f");
        assert_eq!(items[0].params, ["xs"]);
        assert!(items[0].body.is_some());
    }

    #[test]
    fn crate_grouping_from_paths() {
        assert_eq!(FnItem::crate_of("crates/server/src/lib.rs"), "server");
        assert_eq!(FnItem::crate_of("examples/join_demo.rs"), "examples");
    }
}
