//! The workspace lints (A1–A6).
//!
//! Each lint is a pure function from an indexed [`SourceFile`] (or the
//! manifest set, for A3) to raw findings; suppression filtering and
//! baseline subtraction happen in the engine. Scoping — which crates or
//! modules a lint applies to — lives in the `*_SCOPE` constants here,
//! documented in DESIGN.md §10.

use crate::findings::{lint_info, Finding, Severity};
use crate::lexer::{Tok, TokKind};
use crate::manifest::Manifest;
use crate::source::SourceFile;

/// Crates whose non-test code must be panic-free (A2): a panic in any
/// of these kills a connection handler, an ingest worker, or recovery —
/// exactly the paths the fault-tolerance layer promises to keep alive.
/// Public because a10 extends this allowlist by call-graph
/// reachability: it inspects reachable fns *outside* this scope.
pub const A2_SCOPE: &[&str] = &[
    "crates/wire/src/",
    "crates/server/src/",
    "crates/durability/src/",
    "crates/ingest/src/",
    // The flight recorder runs inside every handler and worker; a panic
    // while recording would take down the very thread it is observing.
    "crates/trace/src/",
    // The cluster router's handlers make the same promise as the
    // server's: a panic while routing drops every session the handler
    // owns and silently degrades the fleet.
    "crates/cluster/src/",
];

/// Hot-path modules for A4: code on the per-update / per-frame path
/// where one blocking call stalls a whole pipeline stage. Client-side
/// retry loops (`client.rs`, `resilient.rs`) and the fault-injection
/// proxy (`fault.rs`, test tooling) are deliberately outside this list.
/// Public for the same reason as [`A2_SCOPE`]: a10 inspects reachable
/// fns this allowlist does not cover.
pub const A4_SCOPE: &[&str] = &[
    "crates/ingest/src/",
    "crates/telemetry/src/",
    "crates/wire/src/",
    "crates/sketches/src/",
    "crates/hashing/src/",
    "crates/core/src/",
    "crates/server/src/lib.rs",
    // The replication module's poll loop and ack gate sit between the
    // persist lock and every sequenced ack; its deliberate waits (gate
    // tick, poll pacing, reconnect backoff) carry explicit allows.
    "crates/server/src/replication.rs",
    "crates/durability/src/wal.rs",
    // The WAL tailer serves every replication poll on a handler
    // thread; it must stay a bounded, lock-free directory read.
    "crates/durability/src/tailer.rs",
    // Span recording sits on the per-frame and per-batch paths; the
    // seqlock rings must stay lock-free (the registry mutex at ring
    // creation and the post-mortem path carry explicit allows).
    "crates/trace/src/",
    // Router fan-out sits on the per-batch path end to end; the
    // accept-loop hand-off mutex and the shard-retry backoff sleeps
    // carry explicit allows, mirroring the server crate.
    "crates/cluster/src/",
];

/// File name stems in A5 scope: codec and estimator arithmetic, where
/// the i128 overflow class of PR 1 lived, plus the limb-lane kernel
/// modules (`lanes.rs`, `family.rs`) whose correctness rests on exact
/// 32/30-bit limb bounds — an unnoticed narrowing cast there would
/// silently break the bit-identity contract.
const A5_STEMS: &[&str] = &[
    "estimator.rs",
    "skim.rs",
    "extracted.rs",
    "dyadic.rs",
    "agms.rs",
    "hash_sketch.rs",
    "countmin.rs",
    "linear.rs",
    "lanes.rs",
    "family.rs",
];

/// Cast targets A5 flags: every numeric type narrower than 128 bits
/// except `usize` (index casts are bounds-checked at the use site and
/// would drown the signal). `f64` and `i128`/`u128` are the sanctioned
/// wide types.
const A5_NARROW: &[&str] = &[
    "i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64", "isize", "f32",
];

/// Crates whose `match`es over `Frame` A6 audits.
const A6_SCOPE: &[&str] = &[
    "crates/wire/src/",
    "crates/server/src/",
    "crates/durability/src/",
];

/// Keywords that may directly precede `[` without it being an index
/// expression (slice patterns, array literals in expression position).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "break", "continue", "move", "mut", "ref", "as",
    "box", "where", "for", "while", "loop", "impl", "fn", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "dyn", "unsafe", "async", "await", "crate", "super",
    "yield",
];

fn make(lint: &'static str, path: &str, tok: &Tok, message: String) -> Finding {
    Finding {
        lint,
        severity: Severity::Error,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        hint: lint_info(lint).map(|l| l.hint).unwrap_or(""),
    }
}

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|s| path.starts_with(s) || path == s.trim_end_matches('/'))
}

/// Public scope test for the pass layer (a10 asks "is this path already
/// covered by a2/a4's module allowlist?").
pub fn in_lint_scope(path: &str, scope: &[&str]) -> bool {
    in_scope(path, scope)
}

/// A1: `Ordering::Relaxed` / `Ordering::SeqCst` must carry a comment
/// containing the `ordering:` tag on the same line or the contiguous
/// comment block above. `Acquire`/`Release`/`AcqRel` name their edge in
/// the type system and are exempt; `Relaxed` forgoes an edge and
/// `SeqCst` buys a global order, so both must say why.
pub fn a1_atomic_ordering(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "Relaxed" && t.text != "SeqCst") {
            continue;
        }
        if i < 2 || file.toks[i - 1].text != "::" || file.toks[i - 2].text != "Ordering" {
            continue;
        }
        if file.mask[i] || file.in_use_statement(i) {
            continue;
        }
        if file.comments_attached(t.line).contains("ordering:") {
            continue;
        }
        out.push(make(
            "a1-atomic-ordering",
            &file.path,
            t,
            format!(
                "`Ordering::{}` without an `ordering:` justification comment",
                t.text
            ),
        ));
    }
    out
}

/// A2: panic-freedom in the serving crates' non-test code — no
/// `.unwrap()`, `.expect(...)`, `panic!`-family macros, or slice/array
/// index expressions (which panic on out-of-bounds).
pub fn a2_panic_free(file: &SourceFile) -> Vec<Finding> {
    if !in_scope(&file.path, A2_SCOPE) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if file.mask[i] {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &file.toks[j]);
        let next = file.toks.get(i + 1);
        let issue = match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "unwrap" | "expect")
                if prev.map(|p| p.text.as_str()) == Some(".")
                    && next.map(|n| n.text.as_str()) == Some("(") =>
            {
                Some(format!("`.{}()` in non-test serving code", t.text))
            }
            (TokKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if next.map(|n| n.text.as_str()) == Some("!") =>
            {
                Some(format!("`{}!` in non-test serving code", t.text))
            }
            (TokKind::Punct, "[") => {
                let indexing = match prev {
                    Some(p) => match p.kind {
                        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        TokKind::Punct => p.text == ")" || p.text == "]",
                        _ => false,
                    },
                    None => false,
                };
                indexing.then(|| "slice/array index expression (panics when out of bounds)".into())
            }
            _ => None,
        };
        if let Some(message) = issue {
            out.push(make("a2-panic-free", &file.path, t, message));
        }
    }
    out
}

/// A3: telemetry feature-edge discipline across the workspace
/// manifests. An *instrumented* crate is one declaring a `telemetry`
/// feature (plus `stream-telemetry` itself, whose gate is `enabled`).
/// Every internal edge onto an instrumented crate must (a) resolve
/// `default-features = false` — directly or through its
/// `[workspace.dependencies]` entry — and (b) for non-dev edges from a
/// crate that itself participates in the gate, forward it:
/// the depender's `telemetry` feature must enable
/// `stream-telemetry/enabled` or `<dep>/telemetry`. Otherwise a single
/// default-on edge silently re-instruments `--no-default-features`
/// builds workspace-wide (cargo unifies features).
pub fn a3_telemetry_edges(manifests: &[Manifest]) -> Vec<Finding> {
    let instrumented = |name: &str| {
        // `stream-telemetry` and `ss-trace` gate on `enabled` rather
        // than declaring a `telemetry` feature of their own.
        name == "stream-telemetry"
            || name == "ss-trace"
            || manifests.iter().any(|m| {
                m.package_name.as_deref() == Some(name) && m.features.contains_key("telemetry")
            })
    };
    let members: Vec<&str> = manifests
        .iter()
        .filter_map(|m| m.package_name.as_deref())
        .collect();
    let root = manifests.iter().find(|m| !m.workspace_deps.is_empty());
    let mut out = Vec::new();
    let mut flagged_ws_lines: Vec<u32> = Vec::new();
    for m in manifests {
        let Some(pkg) = m.package_name.as_deref() else {
            continue;
        };
        for (dep, dev) in m
            .deps
            .iter()
            .map(|d| (d, false))
            .chain(m.dev_deps.iter().map(|d| (d, true)))
        {
            if !members.contains(&dep.name.as_str()) || !instrumented(&dep.name) {
                continue;
            }
            // (a) resolved default-features must be false.
            let ws_entry = root.and_then(|r| r.workspace_deps.iter().find(|w| w.name == dep.name));
            let resolved = dep
                .default_features
                .or_else(|| {
                    if dep.workspace {
                        ws_entry.and_then(|w| w.default_features)
                    } else {
                        None
                    }
                })
                .unwrap_or(true);
            if resolved {
                // Blame the workspace entry when the edge merely
                // inherits it, deduplicating across members.
                if let (true, Some(ws), Some(r)) = (dep.workspace, ws_entry, root) {
                    if ws.default_features.is_none() && !flagged_ws_lines.contains(&ws.line) {
                        flagged_ws_lines.push(ws.line);
                        out.push(Finding {
                            lint: "a3-telemetry-edge",
                            severity: Severity::Error,
                            path: r.path.clone(),
                            line: ws.line,
                            col: 1,
                            message: format!(
                                "[workspace.dependencies] entry for instrumented crate `{}` \
                                 does not set `default-features = false`",
                                dep.name
                            ),
                            hint: lint_info("a3-telemetry-edge").map(|l| l.hint).unwrap_or(""),
                        });
                    }
                } else {
                    out.push(Finding {
                        lint: "a3-telemetry-edge",
                        severity: Severity::Error,
                        path: m.path.clone(),
                        line: dep.line,
                        col: 1,
                        message: format!(
                            "dependency edge `{pkg}` → `{}` leaves default features on \
                             (re-enables telemetry in --no-default-features builds)",
                            dep.name
                        ),
                        hint: lint_info("a3-telemetry-edge").map(|l| l.hint).unwrap_or(""),
                    });
                }
            }
            // (b) forwarding, for non-dev edges from gated crates.
            if !dev && m.features.contains_key("telemetry") {
                let fwd = m.features["telemetry"].iter().any(|f| {
                    if dep.name == "ss-trace" {
                        // `stream-telemetry/enabled` does not imply the
                        // flight recorder: edges onto `ss-trace` must
                        // forward its own gate explicitly.
                        f == "ss-trace/enabled"
                    } else {
                        f == "stream-telemetry/enabled" || *f == format!("{}/telemetry", dep.name)
                    }
                });
                if !fwd {
                    out.push(Finding {
                        lint: "a3-telemetry-edge",
                        severity: Severity::Error,
                        path: m.path.clone(),
                        line: dep.line,
                        col: 1,
                        message: format!(
                            "`{pkg}` depends on instrumented `{}` but its `telemetry` feature \
                             does not forward the gate",
                            dep.name
                        ),
                        hint: lint_info("a3-telemetry-edge").map(|l| l.hint).unwrap_or(""),
                    });
                }
            }
        }
    }
    out
}

/// A4: no `Mutex` or `thread::sleep` in hot-path modules (non-test).
pub fn a4_blocking_hot_path(file: &SourceFile) -> Vec<Finding> {
    if !in_scope(&file.path, A4_SCOPE) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.mask[i] {
            continue;
        }
        let what = match t.text.as_str() {
            "Mutex" => "`Mutex` (blocking lock) in a hot-path module",
            "sleep" => "`thread::sleep` in a hot-path module",
            _ => continue,
        };
        if file.in_use_statement(i) {
            continue;
        }
        out.push(make("a4-blocking-hot-path", &file.path, t, what.into()));
    }
    out
}

/// A5: `as` casts to sub-128-bit numeric targets in codec/estimator
/// arithmetic. Lexically a cast's *source* type is unknowable, so even
/// a widening `x as u64` is flagged: `u64::from(x)` proves the
/// direction in the type system and is the required spelling.
pub fn a5_numeric_narrowing(file: &SourceFile) -> Vec<Finding> {
    let stem = file.path.rsplit('/').next().unwrap_or(&file.path);
    if !(file.path.contains("codec") || A5_STEMS.contains(&stem)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || file.mask[i] {
            continue;
        }
        let Some(target) = file.toks.get(i + 1) else {
            continue;
        };
        if target.kind == TokKind::Ident && A5_NARROW.contains(&target.text.as_str()) {
            out.push(make(
                "a5-numeric-narrowing",
                &file.path,
                t,
                format!("`as {}` cast in codec/estimator arithmetic", target.text),
            ));
        }
    }
    out
}

/// A6: in wire/server/durability code, a `match` whose arms name
/// `Frame::` variants must not also have a catch-all arm (`_` or a bare
/// binding): a catch-all silently absorbs every frame kind added later.
/// `frame_variants` is the variant list parsed from the `Frame` enum.
pub fn a6_frame_exhaustive(file: &SourceFile, frame_variants: &[String]) -> Vec<Finding> {
    if !in_scope(&file.path, A6_SCOPE) || frame_variants.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "match" && !file.mask[i] {
            if let Some(f) = audit_match(file, i, frame_variants) {
                out.push(f);
            }
        }
    }
    out
}

/// Audits one `match` starting at token index `i` (the `match`
/// keyword). Returns a finding when the match is over `Frame` and has a
/// catch-all arm while not every variant is named.
fn audit_match(file: &SourceFile, i: usize, variants: &[String]) -> Option<Finding> {
    let toks = &file.toks;
    // Find the body `{` at bracket/paren depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    let body_start = loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break j,
            ";" if depth == 0 => return None, // not a match expression after all
            _ => {}
        }
        j += 1;
    };
    // Scan the body at depth 1, splitting out arm patterns (the token
    // runs ending at each depth-1 `=>`). `in_pattern` distinguishes a
    // struct *pattern*'s closing `}` (`Frame::BatchAck { .. } =>`),
    // which is part of the pattern, from a block *body*'s closing `}`,
    // which ends the arm.
    let mut named: Vec<&str> = Vec::new();
    let mut catch_all: Option<&Tok> = None;
    let mut depth = 1i32;
    let mut in_pattern = true;
    let mut pat_start = body_start + 1;
    let mut j = body_start + 1;
    while depth > 0 {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 1 && t.text == "}" && !in_pattern {
                    // End of a block arm body: next pattern starts after
                    // it (an optional `,` is skipped below).
                    pat_start = j + 1;
                    in_pattern = true;
                }
            }
            "," if depth == 1 && !in_pattern => {
                pat_start = j + 1;
                in_pattern = true;
            }
            "=>" if depth == 1 && in_pattern => {
                let pat = &toks[pat_start..j];
                // Collect `Frame::Variant` mentions in the pattern.
                for (k, p) in pat.iter().enumerate() {
                    if p.text == "Frame" && pat.get(k + 1).map(|x| x.text.as_str()) == Some("::") {
                        if let Some(v) = pat.get(k + 2) {
                            named.push(v.text.as_str());
                        }
                    }
                }
                // A catch-all is a one-token pattern: `_` or a bare
                // binding identifier (lowercase by convention; an
                // uppercase single ident is a unit variant/const).
                if pat.len() == 1 {
                    let p = &pat[0];
                    let is_binding = p.kind == TokKind::Ident
                        && p.text.chars().next().map(|c| c.is_lowercase()) == Some(true)
                        && !NON_INDEX_KEYWORDS.contains(&p.text.as_str());
                    if p.text == "_" || is_binding {
                        catch_all = Some(p);
                    }
                }
                in_pattern = false;
            }
            _ => {}
        }
        j += 1;
    }
    let ca = catch_all?;
    if named.is_empty() {
        return None; // not a Frame match
    }
    let missing: Vec<&str> = variants
        .iter()
        .map(String::as_str)
        .filter(|v| !named.contains(v))
        .collect();
    if missing.is_empty() {
        return None;
    }
    Some(make(
        "a6-frame-exhaustive",
        &file.path,
        ca,
        format!(
            "catch-all arm in a `Frame` match absorbs unhandled kinds: {}",
            missing.join(", ")
        ),
    ))
}

/// Extracts the variant names of `enum Frame` from the wire frame
/// source, skipping attributes and variant payloads.
pub fn frame_variants(file: &SourceFile) -> Vec<String> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let Some(start) = toks
        .windows(2)
        .position(|w| w[0].kind == TokKind::Ident && w[0].text == "enum" && w[1].text == "Frame")
    else {
        return out;
    };
    let mut j = start + 2;
    while j < toks.len() && toks[j].text != "{" {
        j += 1;
    }
    let mut depth = 1i32;
    let mut expect_name = true;
    j += 1;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            "," if depth == 1 => expect_name = true,
            "#" if depth == 1 => {
                // Skip the attribute's bracket group.
                j += 1;
                if toks.get(j).map(|t| t.text.as_str()) == Some("[") {
                    let mut d = 1i32;
                    j += 1;
                    while j < toks.len() && d > 0 {
                        match toks[j].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    continue;
                }
            }
            _ if depth == 1 && expect_name && t.kind == TokKind::Ident => {
                out.push(t.text.clone());
                expect_name = false;
            }
            _ => {}
        }
        j += 1;
    }
    out
}
