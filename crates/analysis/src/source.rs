//! Per-file analysis context: tokens, test mask, attached comments and
//! suppressions with their target lines resolved.

use crate::lexer::{lex, test_mask, Comment, Lexed, Tok};
use crate::suppress::{parse_suppression, FileSuppressions, RawSuppression};

/// One Rust source file, lexed and indexed for the lints.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path.
    pub path: String,
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// `mask[i]` — token `i` sits inside `#[test]`/`#[cfg(test)]` code.
    pub mask: Vec<bool>,
    /// Indexed `ss-analyze: allow(...)` directives.
    pub suppressions: FileSuppressions,
}

/// `true` for rustdoc comments, which never carry live directives —
/// they *describe* the suppression syntax (as this sentence does), so
/// reading them as directives would turn documentation into stale
/// suppressions.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

impl SourceFile {
    /// Lexes `text` and resolves each suppression to the line it
    /// covers: a trailing comment covers its own line, a standalone
    /// comment covers the next line carrying a significant token.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let Lexed { toks, comments } = lex(text);
        let mask = test_mask(&toks);
        let mut raw: Vec<RawSuppression> = Vec::new();
        for c in &comments {
            if is_doc_comment(&c.text) {
                continue;
            }
            if let Some(mut s) = parse_suppression(&c.text, c.line) {
                if !c.trailing {
                    s.applies_to = toks
                        .iter()
                        .find(|t| t.line > c.line)
                        .map(|t| t.line)
                        .unwrap_or(0);
                }
                raw.push(s);
            }
        }
        SourceFile {
            path: path.to_string(),
            toks,
            comments,
            mask,
            suppressions: FileSuppressions::new(raw),
        }
    }

    /// All comment text attached to `line`: trailing comments on the
    /// line itself plus the contiguous standalone comment block
    /// directly above it (doc comments included — a justification may
    /// live in rustdoc). Used by A1 to find `ordering:` justifications.
    pub fn comments_attached(&self, line: u32) -> String {
        let mut parts: Vec<&str> = Vec::new();
        // The standalone block above: walk upward while each line going
        // up holds a standalone comment.
        let mut above: Vec<&str> = Vec::new();
        let mut want = line;
        for c in self.comments.iter().rev() {
            if c.line >= line || c.trailing {
                continue;
            }
            let end_line = c.line + c.text.matches('\n').count() as u32;
            if end_line + 1 == want || end_line == want {
                above.push(&c.text);
                want = c.line;
            } else if c.line < want {
                break;
            }
        }
        parts.extend(above.into_iter().rev());
        parts.extend(
            self.comments
                .iter()
                .filter(|c| c.trailing && c.line == line)
                .map(|c| c.text.as_str()),
        );
        parts.join("\n")
    }

    /// `true` when the statement containing token `i` is a `use`
    /// declaration (imports of `Ordering::Relaxed` etc. are not uses of
    /// the ordering and carry no justification).
    pub fn in_use_statement(&self, i: usize) -> bool {
        let mut j = i;
        while j > 0 {
            let t = &self.toks[j - 1];
            // Braces end the walk *except* inside a use-group
            // (`use a::{B, C}`), recognisable by the `::` before `{`
            // (and, for `}`, by still being short of any `;`).
            if t.text == ";" {
                break;
            }
            if t.text == "{"
                && self.toks.get(j.wrapping_sub(2)).map(|p| p.text.as_str()) != Some("::")
            {
                break;
            }
            if t.text == "}" {
                // A `}` inside a use-group is always followed (eventually)
                // by `;` before any `{`; a block `}` is not worth chasing —
                // treat it as a boundary unless the next token is `,` or
                // `;`, which only use-groups produce after `}`.
                let next = self.toks.get(j).map(|n| n.text.as_str());
                if !matches!(next, Some(",") | Some(";") | Some("}")) {
                    break;
                }
            }
            j -= 1;
        }
        self.toks.get(j).map(|t| t.text.as_str()) == Some("use")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_suppression_covers_its_line() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = b.unwrap(); // ss-analyze: allow(a2-panic-free) -- test\n",
        );
        assert!(f.suppressions.is_suppressed("a2-panic-free", 1));
    }

    #[test]
    fn standalone_suppression_covers_next_code_line() {
        let src =
            "\n// ss-analyze: allow(a2-panic-free) -- reason\n// more prose\nlet a = b.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppressions.is_suppressed("a2-panic-free", 4));
        assert!(!f.suppressions.is_suppressed("a2-panic-free", 2));
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// example: `// ss-analyze: allow(a2-panic-free) -- why`\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppressions.entries.is_empty());
        assert!(f.suppressions.bad.is_empty());
    }

    #[test]
    fn attached_comments_span_block_above_and_trailing() {
        let src = "// ordering: relaxed is fine here\nx.load(O); // and trailing\n";
        let f = SourceFile::parse("x.rs", src);
        let c = f.comments_attached(2);
        assert!(c.contains("ordering:"));
        assert!(c.contains("trailing"));
    }

    #[test]
    fn use_statement_detection() {
        let src = "use std::sync::atomic::Ordering::Relaxed;\nfn f() { x.load(Relaxed); }\n";
        let f = SourceFile::parse("x.rs", src);
        let first = f.toks.iter().position(|t| t.text == "Relaxed").unwrap();
        let last = f.toks.iter().rposition(|t| t.text == "Relaxed").unwrap();
        assert!(f.in_use_statement(first));
        assert!(!f.in_use_statement(last));
    }

    #[test]
    fn use_group_members_are_inside_the_use() {
        let src = "use std::sync::{Arc, Mutex};\nfn f() { let m = Mutex::new(0); }\n";
        let f = SourceFile::parse("x.rs", src);
        let first = f.toks.iter().position(|t| t.text == "Mutex").unwrap();
        let last = f.toks.iter().rposition(|t| t.text == "Mutex").unwrap();
        assert!(f.in_use_statement(first));
        assert!(!f.in_use_statement(last));
    }
}
