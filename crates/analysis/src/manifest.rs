//! A minimal `Cargo.toml` reader for the dependency-edge lint.
//!
//! This is not a general TOML parser: it understands exactly the subset
//! cargo manifests in this workspace use — section headers, `key =
//! value` with strings/booleans, dotted keys (`foo.workspace = true`),
//! inline tables (`{ path = "…", default-features = false }`),
//! `[dependencies.foo]` sub-sections, and (possibly multiline) string
//! arrays for `[features]`. Comments are stripped quote-aware, and
//! `# ss-analyze: allow(...)` suppressions are collected with the same
//! trailing/standalone semantics as in Rust sources.

use crate::suppress::{parse_suppression, RawSuppression};
use std::collections::BTreeMap;

/// One dependency edge declared in a manifest.
#[derive(Debug, Clone, Default)]
pub struct Dep {
    /// The dependency's package name (the table key; `package = "…"`
    /// renames are not used in this workspace).
    pub name: String,
    /// 1-based manifest line the edge is declared on.
    pub line: u32,
    /// `workspace = true` — the edge inherits `[workspace.dependencies]`.
    pub workspace: bool,
    /// Explicit `default-features = …` on the edge, if any.
    pub default_features: Option<bool>,
}

/// The parts of a `Cargo.toml` the lints look at.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Repo-relative path of the manifest.
    pub path: String,
    /// `[package] name`, absent for a virtual manifest.
    pub package_name: Option<String>,
    /// `[features]`: feature name → list of enabled features/edges.
    pub features: BTreeMap<String, Vec<String>>,
    /// `[dependencies]` edges.
    pub deps: Vec<Dep>,
    /// `[dev-dependencies]` edges.
    pub dev_deps: Vec<Dep>,
    /// `[workspace.dependencies]` entries (only on the root manifest).
    pub workspace_deps: Vec<Dep>,
    /// `# ss-analyze: allow(...)` suppressions found in the manifest.
    pub suppressions: Vec<RawSuppression>,
}

/// Splits a line into (content, comment) at the first `#` outside a
/// double-quoted string.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], Some(&line[i + 1..])),
            _ => {}
        }
    }
    (line, None)
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Section {
    Package,
    Deps,
    DevDeps,
    WorkspaceDeps,
    Features,
    /// `[dependencies.foo]` — keys apply to one named dep.
    OneDep,
    Other,
}

/// Parses manifest text. `path` is recorded verbatim for findings.
pub fn parse(path: &str, text: &str) -> Manifest {
    let mut m = Manifest {
        path: path.to_string(),
        ..Manifest::default()
    };
    let mut section = Section::Other;
    let mut dev = false;
    // Pending standalone suppression comments waiting for the next
    // significant line.
    let mut pending: Vec<RawSuppression> = Vec::new();
    // Accumulator for a multiline `feature = [ … ]` array.
    let mut open_feature: Option<(String, String)> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let (content, comment) = split_comment(raw_line);
        let content = content.trim();
        if let Some(c) = comment {
            if let Some(mut s) = parse_suppression(c, line_no) {
                if content.is_empty() {
                    pending.push(s);
                } else {
                    s.applies_to = line_no;
                    m.suppressions.push(s);
                }
            }
        }
        if content.is_empty() {
            continue;
        }
        // A pending standalone suppression applies to this line.
        for mut s in pending.drain(..) {
            s.applies_to = line_no;
            m.suppressions.push(s);
        }

        if let Some((name, acc)) = open_feature.as_mut() {
            acc.push(' ');
            acc.push_str(content);
            if balanced(acc) {
                let items = parse_string_array(acc);
                m.features.insert(name.clone(), items);
                open_feature = None;
            }
            continue;
        }

        if content.starts_with('[') {
            let header = content.trim_matches(|c| c == '[' || c == ']').trim();
            section = match header {
                "package" => Section::Package,
                "dependencies" | "build-dependencies" => {
                    dev = false;
                    Section::Deps
                }
                "dev-dependencies" => {
                    dev = true;
                    Section::DevDeps
                }
                "workspace.dependencies" => Section::WorkspaceDeps,
                "features" => Section::Features,
                h if h.starts_with("dependencies.") || h.starts_with("dev-dependencies.") => {
                    let (is_dev, name) = match h.strip_prefix("dependencies.") {
                        Some(n) => (false, n),
                        None => (true, h.trim_start_matches("dev-dependencies.")),
                    };
                    let dep = Dep {
                        name: name.to_string(),
                        line: line_no,
                        ..Dep::default()
                    };
                    if is_dev {
                        m.dev_deps.push(dep);
                    } else {
                        m.deps.push(dep);
                    }
                    dev = is_dev;
                    Section::OneDep
                }
                _ => Section::Other,
            };
            continue;
        }

        let Some((key, value)) = content.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match section {
            Section::Package => {
                if key == "name" {
                    m.package_name = Some(unquote(value));
                }
            }
            Section::Deps | Section::DevDeps | Section::WorkspaceDeps => {
                let (name, dotted) = match key.split_once('.') {
                    Some((n, rest)) => (n.trim(), Some(rest.trim())),
                    None => (key, None),
                };
                let mut dep = Dep {
                    name: name.to_string(),
                    line: line_no,
                    ..Dep::default()
                };
                match dotted {
                    // `foo.workspace = true`
                    Some("workspace") => dep.workspace = value == "true",
                    Some("default-features") => dep.default_features = Some(value == "true"),
                    Some(_) => {}
                    None => {
                        if value.starts_with('{') {
                            apply_inline_table(&mut dep, value);
                        }
                        // A bare version string needs no fields.
                    }
                }
                match section {
                    Section::WorkspaceDeps => m.workspace_deps.push(dep),
                    _ if dev => m.dev_deps.push(dep),
                    _ => m.deps.push(dep),
                }
            }
            Section::OneDep => {
                let target = if dev {
                    m.dev_deps.last_mut()
                } else {
                    m.deps.last_mut()
                };
                if let Some(dep) = target {
                    match key {
                        "workspace" => dep.workspace = value == "true",
                        "default-features" => dep.default_features = Some(value == "true"),
                        _ => {}
                    }
                }
            }
            Section::Features => {
                if value.starts_with('[') && !balanced(value) {
                    open_feature = Some((unquote(key), value.to_string()));
                } else {
                    m.features.insert(unquote(key), parse_string_array(value));
                }
            }
            Section::Other => {}
        }
    }
    m
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

/// `true` when every `[` in `s` outside strings has a matching `]`.
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Extracts the quoted strings of a `[ "a", "b" ]` array.
fn parse_string_array(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                if in_str {
                    out.push(std::mem::take(&mut cur));
                }
                in_str = !in_str;
            }
            _ if in_str => cur.push(c),
            _ => {}
        }
    }
    out
}

/// Applies the keys of an inline table `{ path = "…", workspace = true,
/// default-features = false, … }` to `dep`.
fn apply_inline_table(dep: &mut Dep, value: &str) {
    let body = value.trim_start_matches('{').trim_end_matches('}');
    // Split on commas outside strings and brackets (features arrays).
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut depth = 0i32;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            continue;
        };
        match (k.trim(), v.trim()) {
            ("workspace", v) => dep.workspace = v == "true",
            ("default-features", v) => dep.default_features = Some(v == "true"),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "demo"

[dependencies]
plain = "1.0"
ws-dep.workspace = true
inline = { path = "../x", default-features = false, features = ["a"] }

[dependencies.sectioned]
workspace = true
default-features = false

[dev-dependencies]
dev-inline = { path = "../y", default-features = false }

[features]
default = ["telemetry"]
telemetry = [
    "stream-telemetry/enabled",
    "inline/telemetry",
]
"#;

    #[test]
    fn parses_all_dependency_forms() {
        let m = parse("Cargo.toml", SAMPLE);
        assert_eq!(m.package_name.as_deref(), Some("demo"));
        let by_name = |n: &str| m.deps.iter().find(|d| d.name == n).expect(n);
        assert!(by_name("ws-dep").workspace);
        assert_eq!(by_name("inline").default_features, Some(false));
        let sectioned = by_name("sectioned");
        assert!(sectioned.workspace);
        assert_eq!(sectioned.default_features, Some(false));
        assert_eq!(m.dev_deps.len(), 1);
        assert_eq!(m.dev_deps[0].default_features, Some(false));
    }

    #[test]
    fn parses_multiline_feature_arrays() {
        let m = parse("Cargo.toml", SAMPLE);
        let telem = &m.features["telemetry"];
        assert_eq!(telem.len(), 2);
        assert!(telem.contains(&"inline/telemetry".to_string()));
    }

    #[test]
    fn collects_toml_suppressions() {
        let src = "\n[dependencies]\n# ss-analyze: allow(a3-telemetry-edge) -- vendored shim\nfoo = \"1\"\nbar = \"1\" # ss-analyze: allow(a3-telemetry-edge) -- trailing\n";
        let m = parse("Cargo.toml", src);
        assert_eq!(m.suppressions.len(), 2);
        assert_eq!(m.suppressions[0].applies_to, 4); // standalone → next line
        assert_eq!(m.suppressions[1].applies_to, 5); // trailing → own line
    }

    #[test]
    fn comments_inside_strings_are_not_comments() {
        let m = parse("Cargo.toml", "[package]\nname = \"has#hash\"\n");
        assert_eq!(m.package_name.as_deref(), Some("has#hash"));
    }
}
