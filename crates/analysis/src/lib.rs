//! `ss-analyze`: the workspace static-analysis gate.
//!
//! A zero-dependency engine — hand-rolled Rust [`lexer`], minimal
//! [`manifest`] reader, [`lints`] A1–A6 plus suppression hygiene (A0) —
//! that mechanically checks the invariants the skimmed-sketch serving
//! stack depends on: justified atomic orderings, panic-free hot paths,
//! telemetry feature-edge discipline, lock-free hot paths, overflow-safe
//! codec arithmetic, and exhaustive wire-frame matches. See DESIGN.md
//! §10 for the invariant catalog and the suppression/baseline policy.
//!
//! The engine is purely lexical (the offline build environment rules
//! out `syn`) and purely deterministic: same tree, same findings, in
//! path/line order.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod findings;
pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod source;
pub mod suppress;
pub mod walk;

use findings::{lint_info, Finding, Severity};
use manifest::Manifest;
use source::SourceFile;
use std::io;
use std::path::Path;
use suppress::FileSuppressions;

/// The outcome of analyzing a workspace (before baseline subtraction).
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (path, line, col, lint).
    pub findings: Vec<Finding>,
    /// Number of Rust sources analyzed.
    pub sources: usize,
    /// Number of manifests analyzed.
    pub manifests: usize,
}

/// Runs every lint over the workspace rooted at `root`.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let inputs = walk::collect(root)?;
    let files: Vec<SourceFile> = inputs
        .sources
        .iter()
        .map(|i| SourceFile::parse(&i.path, &i.text))
        .collect();
    let manifests: Vec<Manifest> = inputs
        .manifests
        .iter()
        .map(|i| manifest::parse(&i.path, &i.text))
        .collect();
    Ok(analyze_parsed(&files, &manifests))
}

/// Analysis over already-parsed inputs (the test seam: fixtures build
/// [`SourceFile`]s and [`Manifest`]s directly from strings).
pub fn analyze_parsed(files: &[SourceFile], manifests: &[Manifest]) -> Analysis {
    let variants = files
        .iter()
        .find(|f| f.path.ends_with("wire/src/frame.rs"))
        .map(lints::frame_variants)
        .unwrap_or_default();

    let mut out = Vec::new();
    for file in files {
        let mut raw = Vec::new();
        raw.extend(lints::a1_atomic_ordering(file));
        raw.extend(lints::a2_panic_free(file));
        raw.extend(lints::a4_blocking_hot_path(file));
        raw.extend(lints::a5_numeric_narrowing(file));
        raw.extend(lints::a6_frame_exhaustive(file, &variants));
        out.extend(filter_suppressed(raw, &file.path, &file.suppressions));
    }

    // A3 findings anchor in manifests; route each through the
    // suppression table of the manifest it landed in.
    let a3 = lints::a3_telemetry_edges(manifests);
    for m in manifests {
        let sups = FileSuppressions::new(m.suppressions.clone());
        let mine: Vec<Finding> = a3.iter().filter(|f| f.path == m.path).cloned().collect();
        out.extend(filter_suppressed(mine, &m.path, &sups));
    }

    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    Analysis {
        findings: out,
        sources: files.len(),
        manifests: manifests.len(),
    }
}

/// Drops findings covered by a suppression, then reports suppression
/// hygiene: malformed directives, unknown lint ids, and suppressions
/// that covered nothing (stale).
fn filter_suppressed(raw: Vec<Finding>, path: &str, sups: &FileSuppressions) -> Vec<Finding> {
    let mut used = vec![false; sups.entries.len()];
    let mut out = Vec::new();
    for f in raw {
        let hit = sups
            .entries
            .iter()
            .position(|s| s.applies_to == f.line && s.lints.iter().any(|l| l == f.lint));
        match hit {
            Some(i) => used[i] = true,
            None => out.push(f),
        }
    }
    for bad in &sups.bad {
        out.push(Finding {
            lint: "a0-bad-suppression",
            severity: Severity::Error,
            path: path.to_string(),
            line: bad.line,
            col: 1,
            message: format!(
                "malformed suppression: {}",
                bad.problem.unwrap_or("unparseable directive")
            ),
            hint: lint_info("a0-bad-suppression")
                .map(|l| l.hint)
                .unwrap_or(""),
        });
    }
    for (i, s) in sups.entries.iter().enumerate() {
        let unknown: Vec<&str> = s
            .lints
            .iter()
            .map(String::as_str)
            .filter(|l| lint_info(l).is_none())
            .collect();
        if !unknown.is_empty() {
            out.push(Finding {
                lint: "a0-unknown-lint",
                severity: Severity::Error,
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression names unknown lint id(s): {}",
                    unknown.join(", ")
                ),
                hint: lint_info("a0-unknown-lint").map(|l| l.hint).unwrap_or(""),
            });
        } else if !used[i] {
            out.push(Finding {
                lint: "a0-unused-suppression",
                severity: Severity::Error,
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!("suppression for {} matches no finding", s.lints.join(", ")),
                hint: lint_info("a0-unused-suppression")
                    .map(|l| l.hint)
                    .unwrap_or(""),
            });
        }
    }
    out
}
