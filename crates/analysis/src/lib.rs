//! `ss-analyze`: the workspace static-analysis gate.
//!
//! A zero-dependency engine — hand-rolled Rust [`lexer`], minimal
//! [`manifest`] reader, a semantic layer ([`items`], [`callgraph`],
//! [`passes`]) and the lint set A1–A10 plus suppression hygiene (A0) —
//! that mechanically checks the invariants the skimmed-sketch serving
//! stack depends on: justified atomic orderings, panic-free hot paths,
//! telemetry feature-edge discipline, lock-free hot paths, overflow-safe
//! codec arithmetic, exhaustive wire-frame matches, v2/v3 frame-version
//! gating, fence-before-role ordering, WAL-append-before-ack persist
//! ordering, and panic/blocking reachability from the serving entry
//! points. See DESIGN.md §10 for the invariant catalog and the
//! suppression/baseline policy.
//!
//! The engine is purely lexical (the offline build environment rules
//! out `syn`) and purely deterministic: same tree, same findings, in
//! path/line order. The inter-procedural passes run on a call graph
//! resolved by name with locality preference — over-approximate, which
//! for reachability-style lints is the sound direction.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod findings;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod passes;
pub mod source;
pub mod suppress;
pub mod walk;

use findings::{lint_info, Finding, Severity};
use manifest::Manifest;
use source::SourceFile;
use std::io;
use std::path::Path;
use suppress::FileSuppressions;

/// The outcome of analyzing a workspace (before baseline subtraction).
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (path, line, col, lint).
    pub findings: Vec<Finding>,
    /// Number of Rust sources analyzed.
    pub sources: usize,
    /// Number of manifests analyzed.
    pub manifests: usize,
}

/// Runs every lint over the workspace rooted at `root`.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let inputs = walk::collect(root)?;
    let files: Vec<SourceFile> = inputs
        .sources
        .iter()
        .map(|i| SourceFile::parse(&i.path, &i.text))
        .collect();
    let manifests: Vec<Manifest> = inputs
        .manifests
        .iter()
        .map(|i| manifest::parse(&i.path, &i.text))
        .collect();
    Ok(analyze_parsed(&files, &manifests))
}

/// Analysis over already-parsed inputs (the test seam: fixtures build
/// [`SourceFile`]s and [`Manifest`]s directly from strings).
pub fn analyze_parsed(files: &[SourceFile], manifests: &[Manifest]) -> Analysis {
    // Build the semantic model once; every pass shares it.
    let ws = passes::Workspace::build(files);
    let mut raw_all: Vec<Finding> = Vec::new();
    for pass in passes::all_passes() {
        raw_all.extend(pass.run(&ws));
    }

    // Suppression filtering is per file and must see *all* of a file's
    // raw findings at once (A0 unused-suppression hygiene depends on
    // it), so group by path first.
    let mut out = Vec::new();
    for file in files {
        let mine: Vec<Finding> = raw_all
            .iter()
            .filter(|f| f.path == file.path)
            .cloned()
            .collect();
        out.extend(filter_suppressed(mine, &file.path, &file.suppressions));
    }

    // A3 findings anchor in manifests; route each through the
    // suppression table of the manifest it landed in.
    let a3 = lints::a3_telemetry_edges(manifests);
    for m in manifests {
        let sups = FileSuppressions::new(m.suppressions.clone());
        let mine: Vec<Finding> = a3.iter().filter(|f| f.path == m.path).cloned().collect();
        out.extend(filter_suppressed(mine, &m.path, &sups));
    }

    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    Analysis {
        findings: out,
        sources: files.len(),
        manifests: manifests.len(),
    }
}

/// Drops findings covered by a suppression, then reports suppression
/// hygiene: malformed directives, unknown lint ids, and suppressions
/// that covered nothing (stale).
fn filter_suppressed(raw: Vec<Finding>, path: &str, sups: &FileSuppressions) -> Vec<Finding> {
    let mut used = vec![false; sups.entries.len()];
    let mut out = Vec::new();
    for f in raw {
        let hit = sups
            .entries
            .iter()
            .position(|s| s.applies_to == f.line && s.lints.iter().any(|l| l == f.lint));
        match hit {
            Some(i) => used[i] = true,
            None => out.push(f),
        }
    }
    for bad in &sups.bad {
        out.push(Finding {
            lint: "a0-bad-suppression",
            severity: Severity::Error,
            path: path.to_string(),
            line: bad.line,
            col: 1,
            message: format!(
                "malformed suppression: {}",
                bad.problem.unwrap_or("unparseable directive")
            ),
            hint: lint_info("a0-bad-suppression")
                .map(|l| l.hint)
                .unwrap_or(""),
        });
    }
    for (i, s) in sups.entries.iter().enumerate() {
        let unknown: Vec<&str> = s
            .lints
            .iter()
            .map(String::as_str)
            .filter(|l| lint_info(l).is_none())
            .collect();
        if !unknown.is_empty() {
            out.push(Finding {
                lint: "a0-unknown-lint",
                severity: Severity::Error,
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression names unknown lint id(s): {}",
                    unknown.join(", ")
                ),
                hint: lint_info("a0-unknown-lint").map(|l| l.hint).unwrap_or(""),
            });
        } else if !used[i] {
            out.push(Finding {
                lint: "a0-unused-suppression",
                severity: Severity::Error,
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!("suppression for {} matches no finding", s.lints.join(", ")),
                hint: lint_info("a0-unused-suppression")
                    .map(|l| l.hint)
                    .unwrap_or(""),
            });
        }
    }
    out
}
