//! Inline suppression comments.
//!
//! A finding is silenced with a justified allow comment:
//!
//! ```text
//! // ss-analyze: allow(a2-panic-free) -- index bounded by the modulo above
//! ```
//!
//! (in `Cargo.toml`, the same syntax after `#`). A *trailing* comment
//! suppresses findings on its own line; a *standalone* comment
//! suppresses the next line that carries code. The `-- reason` is
//! mandatory: an allow without a written justification is itself a
//! finding (`a0-bad-suppression`), so the suppression mechanism cannot
//! silently erode the invariants it guards.

/// One parsed `ss-analyze: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct RawSuppression {
    /// Lint ids listed inside `allow(...)`.
    pub lints: Vec<String>,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based line whose findings this comment suppresses.
    pub applies_to: u32,
    /// `None` when well-formed; otherwise why the comment is rejected
    /// (rejected suppressions suppress nothing and are reported).
    pub problem: Option<&'static str>,
}

/// Parses an `ss-analyze:` directive out of a comment's text, if one is
/// present. `applies_to` is initialised to `line`; the caller adjusts it
/// for standalone comments.
pub fn parse_suppression(comment_text: &str, line: u32) -> Option<RawSuppression> {
    let at = comment_text.find("ss-analyze:")?;
    let rest = comment_text[at + "ss-analyze:".len()..].trim_start();
    let mut sup = RawSuppression {
        lints: Vec::new(),
        line,
        applies_to: line,
        problem: None,
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        sup.problem = Some("expected `allow(<lint-id>, …)` after `ss-analyze:`");
        return Some(sup);
    };
    let Some(close) = args.find(')') else {
        sup.problem = Some("unclosed `allow(` — missing `)`");
        return Some(sup);
    };
    sup.lints = args[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if sup.lints.is_empty() {
        sup.problem = Some("`allow()` lists no lint ids");
        return Some(sup);
    }
    let tail = args[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        sup.problem = Some("missing `-- <reason>` justification");
        return Some(sup);
    };
    if reason.trim().is_empty() {
        sup.problem = Some("empty `-- <reason>` justification");
        return Some(sup);
    }
    Some(sup)
}

/// The suppressions of one file, indexed for lookup during linting.
#[derive(Debug, Default)]
pub struct FileSuppressions {
    /// All well-formed suppressions.
    pub entries: Vec<RawSuppression>,
    /// Malformed directives, reported as `a0-bad-suppression`.
    pub bad: Vec<RawSuppression>,
}

impl FileSuppressions {
    /// Builds the index from raw parses, separating malformed ones.
    pub fn new(raw: Vec<RawSuppression>) -> Self {
        let (bad, entries) = raw.into_iter().partition(|s| s.problem.is_some());
        FileSuppressions { entries, bad }
    }

    /// Is `lint` suppressed on `line`?
    pub fn is_suppressed(&self, lint: &str, line: u32) -> bool {
        self.entries
            .iter()
            .any(|s| s.applies_to == line && s.lints.iter().any(|l| l == lint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed() {
        let s = parse_suppression(
            "// ss-analyze: allow(a1-atomic-ordering, a4-blocking-hot-path) -- startup only",
            7,
        )
        .expect("directive");
        assert!(s.problem.is_none());
        assert_eq!(s.lints, ["a1-atomic-ordering", "a4-blocking-hot-path"]);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let s = parse_suppression("// ss-analyze: allow(a2-panic-free)", 3).expect("directive");
        assert!(s.problem.is_some());
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        assert!(parse_suppression("// just a comment about allow lists", 1).is_none());
    }
}
