//! Chaos suite: the serving layer under crashes, corruption, and
//! partial failure.
//!
//! Three fault families, one invariant. The families:
//!
//! * **process crash** — [`Server::halt`] drops the process state with
//!   no drain and no final snapshot; recovery must rebuild the sketches
//!   from the WAL alone;
//! * **wire faults** — a seeded [`FaultyTransport`] proxy flips bits,
//!   truncates, stalls, trickles, and disconnects at deterministic byte
//!   offsets while a [`ResilientClient`] streams through it;
//! * **thread faults** — a poisoned update panics an ingest worker
//!   mid-batch; supervision must contain it.
//!
//! The invariant, every time: **no panic escapes, no batch is applied
//! twice, and the served ESTSKIMJOINSIZE equals the in-process estimate
//! of the same updates exactly** — faults may cost retries and
//! replays, never accuracy.
//!
//! Tests serialize on a process-wide mutex: several assert on global
//! telemetry (the connection gauge) and all of them spin up thread
//! pools, so running them concurrently would make both racy.

use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use stream_durability::{ConnPlan, Fault, FaultKind, FaultPlan, FaultyTransport, WalConfig};
use stream_model::{Domain, Update};
use stream_server::{
    BackoffConfig, ClientConfig, ResilientClient, Server, ServerClient, ServerConfig,
};
use stream_wire::{Frame, StreamId, WireError, DEFAULT_MAX_PAYLOAD, VERSION};

/// Global test lock — see the module docs.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ss-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Deterministic mixed inserts/deletes within `domain_log2`.
fn mixed_updates(n: usize, domain_log2: u32, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let v = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - domain_log2);
            let w = match i % 5 {
                0 => -1,
                1 => 3,
                _ => 1,
            };
            Update {
                value: v,
                weight: w,
            }
        })
        .collect()
}

/// Server config tuned for fast failure detection in tests.
fn test_config(schema: std::sync::Arc<SkimmedSchema>) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.read_timeout = Duration::from_millis(50);
    config
}

/// Client config with a stable identity and impatient timeouts, so a
/// faulted session is declared dead in milliseconds, not seconds.
fn test_client_config(client_id: u64) -> ClientConfig {
    ClientConfig {
        name: "chaos".into(),
        client_id,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        reply_retries: 5,
        backoff: BackoffConfig {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(5),
            seed: 0xC4A0_5EED,
        },
        ..ClientConfig::default()
    }
}

/// In-process ground truth for the served estimate.
fn local_estimate(
    schema: &std::sync::Arc<SkimmedSchema>,
    uf: &[Update],
    ug: &[Update],
) -> (SkimmedSketch, SkimmedSketch, f64) {
    let mut f = SkimmedSketch::new(schema.clone());
    let mut g = SkimmedSketch::new(schema.clone());
    f.add_batch(uf);
    g.add_batch(ug);
    let est = estimate_join(&f, &g, &EstimatorConfig::default()).estimate;
    (f, g, est)
}

fn read_reply(sock: &mut TcpStream) -> Frame {
    for _ in 0..100 {
        match Frame::read_from(sock, DEFAULT_MAX_PAYLOAD) {
            Ok((frame, _)) => return frame,
            Err(WireError::Idle) => continue,
            Err(e) => panic!("reply read failed: {e}"),
        }
    }
    panic!("no reply within patience window");
}

fn gauge_connections() -> i64 {
    stream_telemetry::global().gauge("server_connections").get()
}

/// Polls `cond` for up to two seconds.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

// ---------------------------------------------------------------------
// process crash + WAL recovery
// ---------------------------------------------------------------------

#[test]
fn crash_recovery_replays_wal_to_the_exact_answer() {
    let _guard = serial();
    let domain_log2 = 12;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 5, 128, 7);
    let dir = scratch_dir("crash");

    let uf = mixed_updates(20_000, domain_log2, 0xF00D);
    let ug = mixed_updates(20_000, domain_log2, 0xBEEF);
    let (local_f, local_g, local_est) = local_estimate(&schema, &uf, &ug);

    // Epoch 1: stream everything, observe the answer, then crash hard —
    // no drain, no final snapshot; the WAL is all that survives.
    let mut config = test_config(schema.clone());
    config.wal = Some(WalConfig::new(&dir));
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    assert_eq!(
        server.recovery(),
        Some(&stream_server::RecoveryReport::default()),
        "fresh WAL dir: nothing to recover"
    );
    let mut client =
        ServerClient::connect_with(server.local_addr(), test_client_config(11)).unwrap();
    client.send_all(StreamId::F, &uf, 1_000).unwrap();
    client.send_all(StreamId::G, &ug, 1_000).unwrap();
    let before_crash = client.query_join().unwrap();
    assert_eq!(before_crash.estimate, local_est);
    drop(client);
    server.halt();

    // Epoch 2: bind over the same WAL directory. Recovery replays the
    // acknowledged batches and the answer is bit-identical.
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    let report = *server.recovery().expect("recovery ran");
    assert_eq!(
        report.batches_replayed, 40,
        "every acknowledged batch is in the log"
    );
    assert_eq!(report.updates_replayed, 40_000);
    assert_eq!(report.torn_bytes, 0, "halt never tears a record");
    let snap_f = server.snapshot(StreamId::F).unwrap();
    let snap_g = server.snapshot(StreamId::G).unwrap();
    assert_eq!(snap_f.level_counters(), local_f.level_counters());
    assert_eq!(snap_g.level_counters(), local_g.level_counters());

    let mut client =
        ServerClient::connect_with(server.local_addr(), test_client_config(11)).unwrap();
    let after_crash = client.query_join().unwrap();
    assert_eq!(
        after_crash.estimate, before_crash.estimate,
        "recovered server must answer exactly as before the crash"
    );
    // The idempotency table also survived: RESUME knows our progress.
    let (last_f, last_g) = client.resume().unwrap();
    assert_eq!((last_f, last_g), (20, 20));
    client.goodbye().unwrap();

    // Epoch 3: a clean shutdown writes a final snapshot; the next bind
    // recovers from it with zero replay.
    server.shutdown().unwrap();
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let report = *server.recovery().expect("recovery ran");
    assert!(report.snapshot_loaded, "clean shutdown left a snapshot");
    assert_eq!(report.batches_replayed, 0, "snapshot covers the whole log");
    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.query_join().unwrap().estimate, local_est);
    client.goodbye().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_sequenced_batches_are_acked_but_applied_once() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let server = Server::bind("127.0.0.1:0", test_config(schema)).unwrap();

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::Hello {
        protocol: VERSION,
        client: "dup".into(),
    }
    .write_to(&mut sock)
    .unwrap();
    assert!(matches!(read_reply(&mut sock), Frame::HelloAck(_)));

    // The same sequenced batch three times: first applies, replays are
    // acknowledged (the client must be able to make progress) without
    // touching the sketch.
    let batch = Frame::UpdateBatch {
        stream: StreamId::F,
        client_id: 77,
        seq: 1,
        updates: vec![Update::insert(5); 16],
    };
    for _ in 0..3 {
        batch.write_to(&mut sock).unwrap();
        assert!(matches!(
            read_reply(&mut sock),
            Frame::BatchAck { accepted: 16 }
        ));
    }
    // A later sequence number still lands.
    Frame::UpdateBatch {
        stream: StreamId::F,
        client_id: 77,
        seq: 2,
        updates: vec![Update::insert(6); 4],
    }
    .write_to(&mut sock)
    .unwrap();
    assert!(matches!(
        read_reply(&mut sock),
        Frame::BatchAck { accepted: 4 }
    ));

    // RESUME reports the high-water mark, not the ack count.
    Frame::Resume { client_id: 77 }.write_to(&mut sock).unwrap();
    assert!(matches!(
        read_reply(&mut sock),
        Frame::ResumeAck {
            last_seq_f: 2,
            last_seq_g: 0
        }
    ));
    drop(sock);

    let snap = server.snapshot(StreamId::F).unwrap();
    assert_eq!(snap.l1_mass(), 16 + 4, "duplicates added no mass");
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// wire faults through the deterministic proxy
// ---------------------------------------------------------------------

/// Runs one fault scenario: a `ResilientClient` streams both inputs
/// through a `FaultyTransport` carrying `plan`, then the server-side
/// sketches must match the in-process ground truth exactly.
fn run_faulted_session(plan: FaultPlan, client_id: u64) {
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 3);
    let server = Server::bind("127.0.0.1:0", test_config(schema.clone())).unwrap();
    let proxy = FaultyTransport::start(server.local_addr(), plan).unwrap();

    let uf = mixed_updates(6_000, domain_log2, 0x0DDB * client_id);
    let ug = mixed_updates(6_000, domain_log2, 0x1EE7 * client_id);
    let (local_f, local_g, local_est) = local_estimate(&schema, &uf, &ug);

    let mut client = ResilientClient::new(proxy.local_addr(), test_client_config(client_id))
        .with_max_reconnects(20);
    let rf = client.send_all(StreamId::F, &uf, 500).unwrap();
    let rg = client.send_all(StreamId::G, &ug, 500).unwrap();
    assert_eq!(rf.updates + rg.updates, 12_000, "every update accounted");
    let answer = client.query_join().unwrap();
    client.goodbye().ok(); // the proxy may already be wedged; close is best-effort

    // Exactness survives the faults: nothing lost, nothing doubled.
    let snap_f = server.snapshot(StreamId::F).unwrap();
    let snap_g = server.snapshot(StreamId::G).unwrap();
    assert_eq!(snap_f.level_counters(), local_f.level_counters());
    assert_eq!(snap_g.level_counters(), local_g.level_counters());
    assert_eq!(answer.estimate, local_est);

    proxy.stop();
    server.shutdown().unwrap();
}

#[test]
fn every_fault_kind_preserves_exactness() {
    let _guard = serial();
    // One scenario per fault kind, each pinned mid-stream (offset 600 is
    // inside the sequenced UPDATE_BATCH traffic on both directions).
    let kinds: [FaultKind; 5] = [
        FaultKind::BitFlip { bit: 3 },
        FaultKind::Truncate,
        FaultKind::Stall { millis: 150 },
        FaultKind::PartialWrite {
            trickle: 7,
            millis: 20,
        },
        FaultKind::Disconnect,
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        // Odd scenarios fault the reply direction: losing a BATCH_ACK is
        // exactly where idempotent replay earns its keep.
        let fault = Fault { offset: 600, kind };
        let mut conn = ConnPlan::clean();
        if i % 2 == 0 {
            conn.c2s.push(fault);
        } else {
            conn.s2c.push(fault);
        }
        let plan = FaultPlan { conns: vec![conn] };
        run_faulted_session(plan, i as u64 + 1);
    }
}

#[test]
fn seeded_fault_plans_preserve_exactness() {
    let _guard = serial();
    // The fixed-seed matrix the CI chaos-smoke job also runs: each seed
    // derives a multi-connection fault plan deterministically.
    for seed in [0xC0FFEE, 0xDECADE, 0xFACADE] {
        let plan = FaultPlan::from_seed(seed, 6);
        run_faulted_session(plan, seed);
    }
}

// ---------------------------------------------------------------------
// socket kills at the worst moments
// ---------------------------------------------------------------------

#[test]
fn socket_kill_mid_update_batch_leaves_no_partial_state() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let server = Server::bind("127.0.0.1:0", test_config(schema)).unwrap();
    let base = gauge_connections();

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::Hello {
        protocol: VERSION,
        client: "killer".into(),
    }
    .write_to(&mut sock)
    .unwrap();
    assert!(matches!(read_reply(&mut sock), Frame::HelloAck(_)));
    if stream_telemetry::ENABLED {
        assert!(eventually(|| gauge_connections() == base + 1));
    }

    // Half an UPDATE_BATCH, then a hard kill. The server must treat the
    // torn frame as a dead session — not apply a prefix of the batch.
    let bytes = Frame::UpdateBatch {
        stream: StreamId::F,
        client_id: 0,
        seq: 0,
        updates: vec![Update::insert(3); 256],
    }
    .encode();
    sock.write_all(&bytes[..bytes.len() / 2]).unwrap();
    sock.shutdown(Shutdown::Both).unwrap();
    drop(sock);

    // The session is reaped: the gauge returns to its baseline.
    if stream_telemetry::ENABLED {
        assert!(
            eventually(|| gauge_connections() == base),
            "half-open session never reaped"
        );
    }
    // And no half-applied batch: the sketch is untouched.
    let snap = server.snapshot(StreamId::F).unwrap();
    assert_eq!(snap.l1_mass(), 0, "torn batch must not be applied");
    server.shutdown().unwrap();
}

#[test]
fn socket_kill_mid_answer_reaps_the_session_and_serving_continues() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 9);
    let server = Server::bind("127.0.0.1:0", test_config(schema.clone())).unwrap();
    let base = gauge_connections();

    let uf = mixed_updates(2_000, domain_log2, 0xAB);
    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    client.send_all(StreamId::F, &uf, 500).unwrap();

    // Ask for an answer, then vanish before reading it: the server's
    // reply write hits a dead socket mid-ANSWER.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    Frame::Hello {
        protocol: VERSION,
        client: "vanisher".into(),
    }
    .write_to(&mut sock)
    .unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    assert!(matches!(read_reply(&mut sock), Frame::HelloAck(_)));
    Frame::QueryJoin.write_to(&mut sock).unwrap();
    sock.shutdown(Shutdown::Both).unwrap();
    drop(sock);

    if stream_telemetry::ENABLED {
        assert!(
            eventually(|| gauge_connections() == base + 1),
            "vanished session never reaped (live client remains)"
        );
    }
    // The surviving session still gets exact answers.
    let mut local_f = SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    let answer = client.query_self_join(StreamId::F).unwrap();
    assert_eq!(
        answer,
        skimmed_sketch::estimate_self_join(&local_f, &EstimatorConfig::default())
    );
    client.goodbye().unwrap();
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// worker panic containment
// ---------------------------------------------------------------------

#[test]
fn worker_panic_is_contained_and_counted() {
    let _guard = serial();
    if !cfg!(debug_assertions) {
        // The poison below trips the sketch kernel's domain
        // debug-assertion; release builds hash it harmlessly.
        return;
    }
    let domain_log2 = 8;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 3, 32, 1);
    let server = Server::bind("127.0.0.1:0", test_config(schema)).unwrap();
    assert_eq!(server.worker_restarts(StreamId::F), 0);

    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    // An out-of-domain value: the wire layer carries it (the protocol
    // does not know the domain), and the sketch kernel panics on it
    // inside the worker. Supervision must contain the blast.
    let poison = vec![Update::insert(1 << 60)];
    client.send_batch(StreamId::F, &poison).unwrap();
    assert!(
        eventually(|| server.worker_restarts(StreamId::F) >= 1),
        "supervised worker never recorded the panic"
    );

    // The pool is still serving: a good batch lands and is queryable.
    let good = vec![Update::insert(5); 32];
    client.send_batch(StreamId::F, &good).unwrap();
    let snap = server.snapshot(StreamId::F).unwrap();
    assert_eq!(snap.l1_mass(), 32, "pool must keep serving after a panic");
    assert!(client.query_join().is_ok());
    client.goodbye().unwrap();

    // Shutdown still succeeds: the worker survived its panic, so the
    // drain is complete (the poisoned chunk was dropped, not the worker).
    let (fin_f, _g) = server.shutdown().unwrap();
    assert_eq!(fin_f.l1_mass(), 32);
}

// ---------------------------------------------------------------------
// crash + wire faults combined
// ---------------------------------------------------------------------

#[test]
fn crash_behind_a_faulty_wire_still_converges_exactly() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 5);
    let dir = scratch_dir("combo");
    let mut config = test_config(schema.clone());
    config.wal = Some(WalConfig::new(&dir));

    let uf = mixed_updates(8_000, domain_log2, 0xCAB);
    let (local_f, _, _) = local_estimate(&schema, &uf, &[]);

    // Phase 1: stream half the input through a lossy wire, then crash.
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    let addr = server.local_addr();
    let plan = FaultPlan::from_seed(0xBAD5EED, 4);
    let proxy = FaultyTransport::start(addr, plan).unwrap();
    let mut client =
        ResilientClient::new(proxy.local_addr(), test_client_config(42)).with_max_reconnects(20);
    client.send_all(StreamId::F, &uf[..4_000], 500).unwrap();
    proxy.stop();
    server.halt();

    // Phase 2: recover and finish the stream over a clean wire. RESUME
    // hides the crash from the producer: it just keeps sending, and the
    // recovered dedup table drops anything the WAL already holds.
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    assert!(server.recovery().expect("recovery ran").batches_replayed >= 8);
    let mut client =
        ResilientClient::new(server.local_addr(), test_client_config(42)).with_max_reconnects(20);
    client.send_all(StreamId::F, &uf[4_000..], 500).unwrap();

    let snap = server.snapshot(StreamId::F).unwrap();
    assert_eq!(
        snap.level_counters(),
        local_f.level_counters(),
        "crash + faults + resume must still converge to the exact sketch"
    );
    client.goodbye().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
