//! Replication suite: primary→follower WAL shipping, typed write
//! refusal, promotion, fencing, snapshot bootstrap, and lag behaviour
//! under stalled wires.
//!
//! The central invariant mirrors the single-node chaos suite's: a
//! follower that has caught up holds **bit-identical** sketch state to
//! its primary — replication ships the same WAL bytes the primary
//! persisted, the follower applies them through the same recovery path,
//! and sketch linearity does the rest. Everything else here (fencing
//! epochs, NOT_PRIMARY refusals, dedup-table replication) defends that
//! identity against split-brain and double-apply.
//!
//! Tests serialize on a process-wide mutex: they spin up thread pools
//! and some assert on global telemetry.

use skimmed_sketch::SkimmedSchema;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use stream_durability::{ConnPlan, FaultPlan, FaultyTransport, WalConfig};
use stream_model::{Domain, Update};
use stream_server::{ClientConfig, ClientError, Role, Server, ServerClient, ServerConfig};
use stream_wire::{ErrorCode, Frame, StreamId, WireError, DEFAULT_MAX_PAYLOAD, VERSION};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ss-repl-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn mixed_updates(n: usize, domain_log2: u32, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let v = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - domain_log2);
            let w = match i % 5 {
                0 => -1,
                1 => 3,
                _ => 1,
            };
            Update {
                value: v,
                weight: w,
            }
        })
        .collect()
}

/// A WAL-backed server config with a fast replication poll.
fn wal_config(schema: std::sync::Arc<SkimmedSchema>, dir: &PathBuf) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.read_timeout = Duration::from_millis(50);
    config.replication_poll = Duration::from_millis(5);
    config.wal = Some(WalConfig::new(dir));
    config
}

/// The same, as a follower of `primary`.
fn follower_config(
    schema: std::sync::Arc<SkimmedSchema>,
    dir: &PathBuf,
    primary: &str,
) -> ServerConfig {
    let mut config = wal_config(schema, dir);
    config.follower_of = Some(primary.to_string());
    config
}

fn client_config(client_id: u64) -> ClientConfig {
    ClientConfig {
        name: "repl-test".into(),
        client_id,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        reply_retries: 10,
        ..ClientConfig::default()
    }
}

/// Polls `cond` for up to five seconds (replication needs a few poll
/// round trips; stalled-wire tests need more).
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Waits until `follower`'s durable frontier reaches `primary`'s.
///
/// Frontier comparison (not `replication_lag_bytes`): the lag gauge is
/// a last-poll-time estimate, so right after a burst of sends it can
/// still read the `0` computed during the quiet period before them.
fn caught_up(primary: &Server, follower: &Server) -> bool {
    let mut p = ServerClient::connect(primary.local_addr()).expect("probe primary");
    let target = p.heartbeat(0).expect("primary heartbeat");
    let _ = p.goodbye();
    let mut f = ServerClient::connect(follower.local_addr()).expect("probe follower");
    let ok = eventually(|| {
        f.heartbeat(0)
            .is_ok_and(|s| (s.segment, s.offset) >= (target.segment, target.offset))
    });
    let _ = f.goodbye();
    // The next poll after the frontier match records the lag as 0.
    ok && eventually(|| follower.replication_lag_bytes() == Some(0))
}

/// Asserts both streams of `a` and `b` carry bit-identical sketch state.
fn assert_bit_identical(a: &Server, b: &Server) {
    for stream in [StreamId::F, StreamId::G] {
        let sa = a.snapshot(stream).expect("snapshot a");
        let sb = b.snapshot(stream).expect("snapshot b");
        assert_eq!(
            sa.level_counters(),
            sb.level_counters(),
            "stream {stream:?} diverged between primary and follower"
        );
    }
}

#[test]
fn follower_mirrors_primary_bit_identically() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 3);
    let (pdir, fdir) = (scratch_dir("mirror-p"), scratch_dir("mirror-f"));

    let primary = Server::bind("127.0.0.1:0", wal_config(schema.clone(), &pdir)).unwrap();
    let follower = Server::bind(
        "127.0.0.1:0",
        follower_config(schema.clone(), &fdir, &primary.local_addr().to_string()),
    )
    .unwrap();
    assert_eq!(primary.role(), Role::Primary);
    assert_eq!(follower.role(), Role::Follower);
    assert_eq!(
        primary.replication_lag_bytes(),
        None,
        "primaries have no lag"
    );

    let uf = mixed_updates(8_000, domain_log2, 0xF00D);
    let ug = mixed_updates(8_000, domain_log2, 0xBEEF);
    let mut client = ServerClient::connect_with(primary.local_addr(), client_config(21)).unwrap();
    client.send_all(StreamId::F, &uf, 500).unwrap();
    client.send_all(StreamId::G, &ug, 500).unwrap();
    let answer = client.query_join().unwrap();
    client.goodbye().unwrap();

    assert!(caught_up(&primary, &follower), "follower never caught up");
    assert_bit_identical(&primary, &follower);

    // Queries are served by the follower too (reads are safe on both
    // roles), and the answer matches by linearity + bit identity.
    let mut reader = ServerClient::connect(follower.local_addr()).unwrap();
    assert_eq!(reader.query_join().unwrap().estimate, answer.estimate);
    reader.goodbye().unwrap();

    // The follower's heartbeat advertises its role and the primary's
    // matches its own frontier.
    let mut hb = ServerClient::connect(follower.local_addr()).unwrap();
    let fs = hb.heartbeat(0).unwrap();
    assert!(!fs.primary);
    hb.goodbye().unwrap();
    let mut hb = ServerClient::connect(primary.local_addr()).unwrap();
    let ps = hb.heartbeat(0).unwrap();
    assert!(ps.primary);
    assert_eq!(
        (ps.segment, ps.offset),
        (fs.segment, fs.offset),
        "caught-up follower sits at the primary's durable frontier"
    );
    hb.goodbye().unwrap();

    follower.shutdown().unwrap();
    primary.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn follower_refuses_client_writes_with_typed_error() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let (pdir, fdir) = (scratch_dir("refuse-p"), scratch_dir("refuse-f"));

    let primary = Server::bind("127.0.0.1:0", wal_config(schema.clone(), &pdir)).unwrap();
    let follower = Server::bind(
        "127.0.0.1:0",
        follower_config(schema.clone(), &fdir, &primary.local_addr().to_string()),
    )
    .unwrap();

    let mut client = ServerClient::connect(follower.local_addr()).unwrap();
    let err = client
        .send_batch(StreamId::F, &[Update::insert(1); 8])
        .expect_err("follower must refuse client writes");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::NotPrimary);
            assert!(
                message.contains(&primary.local_addr().to_string()),
                "refusal names the primary: {message}"
            );
        }
        other => panic!("expected typed NOT_PRIMARY, got {other:?}"),
    }
    // The refusal is not fatal to the session: reads still work.
    assert!(client.query_join().is_ok());
    client.goodbye().unwrap();

    assert_eq!(
        follower.snapshot(StreamId::F).unwrap().l1_mass(),
        0,
        "refused batch must not touch the sketch"
    );
    follower.shutdown().unwrap();
    primary.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn promotion_preserves_dedup_and_accepts_writes() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 7);
    let (pdir, fdir) = (scratch_dir("promote-p"), scratch_dir("promote-f"));

    let primary = Server::bind("127.0.0.1:0", wal_config(schema.clone(), &pdir)).unwrap();
    let follower = Server::bind(
        "127.0.0.1:0",
        follower_config(schema.clone(), &fdir, &primary.local_addr().to_string()),
    )
    .unwrap();

    let uf = mixed_updates(4_000, domain_log2, 0xCAFE);
    let mut producer = ServerClient::connect_with(primary.local_addr(), client_config(7)).unwrap();
    producer.send_all(StreamId::F, &uf, 500).unwrap(); // 8 sequenced batches
    drop(producer);
    assert!(caught_up(&primary, &follower));
    let mass_before = follower.snapshot(StreamId::F).unwrap().l1_mass();

    // The primary dies; the supervisor (here: the test) promotes the
    // follower under the next fencing epoch.
    primary.halt();
    let mut admin = ServerClient::connect(follower.local_addr()).unwrap();
    assert_eq!(admin.promote(2).unwrap(), 2);
    admin.goodbye().unwrap();
    assert_eq!(follower.role(), Role::Primary);
    assert_eq!(follower.epoch(), 2);

    // The replicated idempotency table survived the role flip: RESUME
    // reports the producer's full progress, and a replayed batch is
    // acknowledged without being applied again.
    let mut producer = ServerClient::connect_with(follower.local_addr(), client_config(7)).unwrap();
    assert_eq!(producer.resume().unwrap(), (8, 0));
    let mut raw = TcpStream::connect(follower.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::Hello {
        protocol: VERSION,
        client: "replayer".into(),
    }
    .write_to(&mut raw)
    .unwrap();
    assert!(matches!(read_reply(&mut raw), Frame::HelloAck(_)));
    Frame::UpdateBatch {
        stream: StreamId::F,
        client_id: 7,
        seq: 1,
        updates: uf[..500].to_vec(),
    }
    .write_to(&mut raw)
    .unwrap();
    assert!(matches!(read_reply(&mut raw), Frame::BatchAck { .. }));
    drop(raw);
    assert_eq!(
        follower.snapshot(StreamId::F).unwrap().l1_mass(),
        mass_before,
        "replayed batch must dedup on the promoted primary"
    );

    // Fresh writes land now that it is the primary.
    producer
        .send_batch(StreamId::F, &[Update::insert(3); 64])
        .unwrap();
    assert_eq!(
        follower.snapshot(StreamId::F).unwrap().l1_mass(),
        mass_before + 64
    );
    producer.goodbye().unwrap();

    // Promotion is idempotent at the same epoch and fenced below it.
    let mut admin = ServerClient::connect(follower.local_addr()).unwrap();
    assert_eq!(admin.promote(2).unwrap(), 2);
    match admin.promote(1) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Fenced),
        other => panic!("stale-epoch PROMOTE must be fenced, got {other:?}"),
    }
    drop(admin);

    follower.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn fenced_zombie_replicate_is_rejected() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let (pdir, fdir) = (scratch_dir("fence-p"), scratch_dir("fence-f"));

    let primary = Server::bind("127.0.0.1:0", wal_config(schema.clone(), &pdir)).unwrap();
    let follower = Server::bind(
        "127.0.0.1:0",
        follower_config(schema.clone(), &fdir, &primary.local_addr().to_string()),
    )
    .unwrap();
    primary.halt();
    let mut admin = ServerClient::connect(follower.local_addr()).unwrap();
    assert_eq!(admin.promote(2).unwrap(), 2);
    admin.goodbye().unwrap();

    // A resurrected ex-primary still believes in epoch 1 and pushes a
    // late REPLICATE at the promoted node: the epoch check rejects it
    // before anything touches the WAL (split-brain defense).
    let mut zombie = ServerClient::connect(follower.local_addr()).unwrap();
    match zombie.replicate_push(1, 0, 0, vec![0xAA; 32]) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Fenced);
            assert!(
                message.contains('2'),
                "rejection names the epoch: {message}"
            );
        }
        other => panic!("stale-epoch REPLICATE must be fenced, got {other:?}"),
    }
    drop(zombie);

    follower.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn fresh_follower_bootstraps_from_pruned_primary_snapshot() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 11);
    let (pdir, fdir) = (scratch_dir("boot-p"), scratch_dir("boot-f"));

    // Small segments + frequent snapshots: by the time the follower
    // appears, the log's early segments are pruned and only a snapshot
    // covers the prefix.
    let mut pconfig = wal_config(schema.clone(), &pdir);
    if let Some(w) = pconfig.wal.as_mut() {
        w.segment_bytes = 4_096;
        w.snapshot_every = 8;
    }
    let primary = Server::bind("127.0.0.1:0", pconfig).unwrap();
    let uf = mixed_updates(12_000, domain_log2, 0x5EED);
    let mut client = ServerClient::connect_with(primary.local_addr(), client_config(31)).unwrap();
    client.send_all(StreamId::F, &uf, 250).unwrap();
    client.goodbye().unwrap();
    let segments = std::fs::read_dir(&pdir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .count();
    assert!(
        std::fs::read_dir(&pdir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().starts_with("snap-")),
        "primary installed no snapshot; the bootstrap path is untested"
    );

    // A brand-new follower has no prefix to tail: bind-time bootstrap
    // adopts the primary's snapshot, then tails the remaining segments.
    let mut fconfig = follower_config(schema.clone(), &fdir, &primary.local_addr().to_string());
    if let Some(w) = fconfig.wal.as_mut() {
        w.segment_bytes = 4_096;
        w.snapshot_every = 8;
    }
    let follower = Server::bind("127.0.0.1:0", fconfig).unwrap();
    let report = follower.recovery().expect("follower recovery ran");
    assert!(
        report.snapshot_loaded,
        "bootstrap must seed recovery with the adopted snapshot \
         ({segments} primary segments on disk)"
    );
    assert_eq!(report.torn_tail_truncations, 0);
    assert!(!follower.replication_needs_bootstrap());
    assert!(caught_up(&primary, &follower));
    assert_bit_identical(&primary, &follower);

    follower.shutdown().unwrap();
    primary.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn follower_lag_stays_bounded_through_asymmetric_stalls() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 13);
    let (pdir, fdir) = (scratch_dir("stall-p"), scratch_dir("stall-f"));

    let primary = Server::bind("127.0.0.1:0", wal_config(schema.clone(), &pdir)).unwrap();

    // The replication wire stalls asymmetrically: the poll direction
    // (follower→primary) hiccups early, the chunk direction
    // (primary→follower) stalls repeatedly and longer — the shape of a
    // congested or half-broken link. `repeated` keeps every reconnect
    // on the same schedule.
    let conn = ConnPlan::stalls(&[(256, 80)], &[(1_024, 150), (16_384, 150)]);
    let proxy =
        FaultyTransport::start(primary.local_addr(), FaultPlan::repeated(conn, 32)).unwrap();
    let follower = Server::bind(
        "127.0.0.1:0",
        follower_config(schema.clone(), &fdir, &proxy.local_addr().to_string()),
    )
    .unwrap();

    let uf = mixed_updates(10_000, domain_log2, 0x57A1);
    let ug = mixed_updates(10_000, domain_log2, 0x57A2);
    let mut client = ServerClient::connect_with(primary.local_addr(), client_config(41)).unwrap();
    client.send_all(StreamId::F, &uf, 500).unwrap();
    client.send_all(StreamId::G, &ug, 500).unwrap();
    client.goodbye().unwrap();

    // Lag is bounded, not monotone: despite every stall the follower
    // drains back to zero and lands bit-identical.
    assert!(
        caught_up(&primary, &follower),
        "stalled wire must delay replication, never wedge it \
         (lag {:?})",
        follower.replication_lag_bytes()
    );
    assert_bit_identical(&primary, &follower);

    proxy.stop();
    follower.shutdown().unwrap();
    primary.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn torn_wal_tail_is_truncated_and_counted_on_recovery() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let dir = scratch_dir("torn");

    // Write a few batches, crash, then tear the active segment's tail
    // mid-record — the shape a power cut leaves behind.
    let config = wal_config(schema.clone(), &dir);
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    let mut client = ServerClient::connect_with(server.local_addr(), client_config(51)).unwrap();
    for _ in 0..4 {
        client
            .send_batch(StreamId::F, &[Update::insert(9); 64])
            .unwrap();
    }
    drop(client);
    server.halt();
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("wal-"))
        })
        .max()
        .expect("active segment exists");
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 7).unwrap(); // mid-record: not a frame boundary
    f.sync_all().unwrap();
    drop(f);

    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let report = *server.recovery().expect("recovery ran");
    assert_eq!(
        report.torn_tail_truncations, 1,
        "one torn tail, one truncation"
    );
    assert!(report.torn_bytes > 0);
    assert_eq!(
        report.batches_replayed, 3,
        "the torn fourth batch is cut, the acknowledged prefix survives"
    );
    if stream_telemetry::ENABLED {
        assert!(
            stream_telemetry::global()
                .counter("wal_torn_tail_truncations_total")
                .get()
                >= 1
        );
    }
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

fn read_reply(sock: &mut TcpStream) -> Frame {
    for _ in 0..100 {
        match Frame::read_from(sock, DEFAULT_MAX_PAYLOAD) {
            Ok((frame, _)) => return frame,
            Err(WireError::Idle) => continue,
            Err(e) => panic!("reply read failed: {e}"),
        }
    }
    panic!("no reply within patience window");
}
