//! End-to-end loopback contract of the serving layer.
//!
//! The load-bearing property mirrors the ingestion pipeline's: sketches
//! fed over the wire must be **bit-identical** to sketches fed
//! in-process from the same update stream, and therefore every estimate
//! the server returns must equal the in-process estimate exactly — the
//! network boundary introduces no approximation. On top of that:
//! overload must surface as THROTTLE frames with the pool's pending
//! count capped (bounded memory), protocol violations must get ERROR
//! frames rather than hangs, and shutdown must drain every acknowledged
//! batch.

use skimmed_sketch::{
    estimate_join, estimate_self_join, EstimatorConfig, SkimmedSchema, SkimmedSketch,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use stream_model::{Domain, Update};
use stream_server::{BatchOutcome, ClientError, Server, ServerClient, ServerConfig};
use stream_wire::{ErrorCode, Frame, StreamId, WireError, DEFAULT_MAX_PAYLOAD, VERSION};

/// Deterministic mixed inserts/deletes with varied weights.
fn mixed_updates(n: usize, domain_log2: u32, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let v = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - domain_log2);
            let w = match i % 7 {
                0 => -2,
                1 => 3,
                2 => -1,
                3 => 5,
                _ => 1,
            };
            Update {
                value: v,
                weight: w,
            }
        })
        .collect()
}

fn read_reply(sock: &mut TcpStream) -> Frame {
    for _ in 0..100 {
        match Frame::read_from(sock, DEFAULT_MAX_PAYLOAD) {
            Ok((frame, _)) => return frame,
            Err(WireError::Idle) => continue,
            Err(e) => panic!("reply read failed: {e}"),
        }
    }
    panic!("no reply within patience window");
}

#[test]
fn wire_ingestion_is_bit_identical_to_in_process() {
    let domain_log2 = 12;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 5, 128, 7);
    let mut config = ServerConfig::new(schema.clone());
    config.handler_threads = 2;
    config.read_timeout = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    let uf = mixed_updates(30_000, domain_log2, 0xF00D);
    let ug = mixed_updates(30_000, domain_log2, 0xBEEF);
    let mut local_f = SkimmedSketch::new(schema.clone());
    let mut local_g = SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);

    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.info().domain_log2, domain_log2 as u16);
    assert_eq!(client.info().tables, 5);
    // The advertised schema rebuilds the same hash families: a sketch
    // built from it merges with the server's.
    use stream_sketches::linear::LinearSynopsis;
    assert!(SkimmedSketch::new(client.schema()).compatible(&local_f));

    let rf = client.send_all(StreamId::F, &uf, 1_000).unwrap();
    let rg = client.send_all(StreamId::G, &ug, 1_000).unwrap();
    assert_eq!(rf.updates, uf.len() as u64);
    assert_eq!(rg.updates, ug.len() as u64);

    // Shipped snapshots are bit-identical to the in-process sketches.
    let snap_f = client.snapshot(StreamId::F).unwrap();
    let snap_g = client.snapshot(StreamId::G).unwrap();
    assert_eq!(snap_f.level_counters(), local_f.level_counters());
    assert_eq!(snap_g.level_counters(), local_g.level_counters());
    assert_eq!(snap_f.l1_mass(), local_f.l1_mass());

    // Therefore the server's answers equal the in-process estimates
    // exactly — not approximately.
    let cfg = EstimatorConfig::default();
    let local_est = estimate_join(&local_f, &local_g, &cfg);
    let answer = client.query_join().unwrap();
    assert_eq!(answer.estimate, local_est.estimate);
    assert_eq!(answer.dense_dense, local_est.dense_dense);
    assert_eq!(answer.sparse_sparse, local_est.sparse_sparse);
    assert_eq!(answer.dense_f, local_est.dense_f as u64);

    let self_f = client.query_self_join(StreamId::F).unwrap();
    assert_eq!(self_f, estimate_self_join(&local_f, &cfg));

    client.goodbye().unwrap();

    // Shutdown drains the pools; the final sketches hold every
    // acknowledged update.
    let (fin_f, fin_g) = server.shutdown().unwrap();
    assert_eq!(fin_f.level_counters(), local_f.level_counters());
    assert_eq!(fin_g.level_counters(), local_g.level_counters());
}

#[test]
fn overload_gets_throttled_and_the_queue_stays_bounded() {
    // Dyadic extraction multiplies per-update sketch work by the number
    // of levels, making the single ingest worker decisively slower than
    // the wire path — so a flooding client must hit THROTTLE.
    let domain_log2 = 16;
    let schema = SkimmedSchema::dyadic(Domain::with_log2(domain_log2), 7, 512, 3);
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 1;
    config.ingest_workers = 1;
    config.queue_depth = 1;
    config.max_batch = 50_000;
    config.read_timeout = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let cap = server.queue_capacity();
    assert_eq!(cap, 2, "1 worker × (1 queued + 1 in flight)");

    let batch = mixed_updates(40_000, domain_log2, 0xCAFE);
    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    let mut throttled = 0u64;
    let mut accepted = 0u64;
    for _ in 0..100 {
        match client.send_batch(StreamId::F, &batch).unwrap() {
            BatchOutcome::Accepted(n) => accepted += n,
            BatchOutcome::Throttled { pending, limit } => {
                assert_eq!(limit, cap);
                assert!(pending <= limit, "pending {pending} beyond cap {limit}");
                throttled += 1;
            }
        }
        // The pool's pending count — the server's only buffer of decoded
        // updates — never exceeds its advertised capacity, no matter how
        // hard the client pushes.
        assert!(server.pending_chunks(StreamId::F) <= cap);
        if throttled >= 3 && accepted > 0 {
            break;
        }
    }
    assert!(throttled >= 3, "expected sustained overload to throttle");
    assert!(accepted > 0, "some batches must land");
    client.goodbye().unwrap();

    // Accounting stays exact under overload: the drained sketch holds
    // exactly the acknowledged updates (each batch adds the same mass).
    let (fin_f, _g) = server.shutdown().unwrap();
    assert_eq!(fin_f.l1_mass() % batch_l1(&batch), 0);
    assert_eq!(
        fin_f.l1_mass() / batch_l1(&batch),
        accepted / batch.len() as u64
    );
}

/// Sum of |weights| — the l1 mass one batch contributes.
fn batch_l1(batch: &[Update]) -> u64 {
    batch.iter().map(|u| u.weight.unsigned_abs()).sum()
}

#[test]
fn requests_before_hello_are_rejected() {
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let mut config = ServerConfig::new(schema);
    config.read_timeout = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::QueryJoin.write_to(&mut sock).unwrap();
    match read_reply(&mut sock) {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected ERROR, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn garbage_and_corruption_get_error_frames_then_close() {
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let mut config = ServerConfig::new(schema);
    config.read_timeout = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    // Raw garbage: the header CRC (or magic) fails, the server reports
    // and closes.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    sock.write_all(&[0xAAu8; 64]).unwrap();
    match read_reply(&mut sock) {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected ERROR, got {other:?}"),
    }

    // A handshaken session sending one corrupted frame: same outcome.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::Hello {
        protocol: VERSION,
        client: "corruptor".into(),
    }
    .write_to(&mut sock)
    .unwrap();
    assert!(matches!(read_reply(&mut sock), Frame::HelloAck(_)));
    let mut bytes = Frame::UpdateBatch {
        stream: StreamId::F,
        client_id: 0,
        seq: 0,
        updates: vec![Update::insert(1); 16],
    }
    .encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40; // payload corruption: caught by the payload CRC
    sock.write_all(&bytes).unwrap();
    match read_reply(&mut sock) {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected ERROR, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn oversized_batches_are_refused_without_closing_the_session() {
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let mut config = ServerConfig::new(schema);
    config.max_batch = 10;
    config.read_timeout = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    let too_big = vec![Update::insert(1); 20];
    match client.send_batch(StreamId::F, &too_big) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BatchTooLarge),
        other => panic!("expected BatchTooLarge, got {other:?}"),
    }
    // The session survives the refusal.
    let ok = client.send_batch(StreamId::G, &too_big[..10]).unwrap();
    assert_eq!(ok, BatchOutcome::Accepted(10));
    client.goodbye().unwrap();
    let (_f, g) = server.shutdown().unwrap();
    assert_eq!(g.l1_mass(), 10);
}

#[test]
fn shutdown_closes_idle_connections_and_drains() {
    let schema = SkimmedSchema::scanning(Domain::with_log2(10), 4, 64, 11);
    let mut config = ServerConfig::new(schema.clone());
    config.read_timeout = Duration::from_millis(25);
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    let updates = mixed_updates(5_000, 10, 0xD00D);
    let mut client = ServerClient::connect(server.local_addr()).unwrap();
    client.send_all(StreamId::F, &updates, 500).unwrap();

    // Shut down while the client connection is still open and idle: the
    // handler notices at the next read tick and the pools drain fully.
    let (fin_f, fin_g) = server.shutdown().unwrap();
    let mut local = SkimmedSketch::new(schema);
    local.add_batch(&updates);
    assert_eq!(fin_f.level_counters(), local.level_counters());
    assert_eq!(fin_g.l1_mass(), 0);
}

#[test]
fn v2_session_refuses_v3_requests_client_side() {
    use stream_server::ClientConfig;
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let mut config = ServerConfig::new(schema);
    config.read_timeout = Duration::from_millis(50);
    let server = Server::bind("127.0.0.1:0", config).unwrap();

    // A default session negotiates the current protocol.
    let current = ServerClient::connect(server.local_addr()).unwrap();
    assert_eq!(current.protocol(), stream_wire::PROTOCOL_VERSION);
    current.goodbye().unwrap();

    // A session pinned to protocol 2 handshakes fine (the server's
    // accepted range starts at 2) but every v3-only request is refused
    // before any bytes hit the wire: the server never sees a frame kind
    // a v2 peer could not decode.
    let mut v2 = ServerClient::connect_with(
        server.local_addr(),
        ClientConfig {
            offer_protocol: 2,
            read_timeout: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(v2.protocol(), 2);
    for result in [
        v2.shard_map().map(|_| ()),
        v2.shard_query(0b11).map(|_| ()),
        v2.heartbeat(1).map(|_| ()),
        v2.promote(1).map(|_| ()),
        v2.replicate_poll(1, 0, 0).map(|_| ()),
        v2.replicate_push(1, 0, 0, Vec::new()).map(|_| ()),
    ] {
        match result {
            Err(ClientError::V3Required { negotiated }) => assert_eq!(negotiated, 2),
            other => panic!("expected V3Required, got {other:?}"),
        }
    }
    // The refusals are purely local: the session is still healthy.
    let ok = v2.send_batch(StreamId::F, &[Update::insert(1)]).unwrap();
    assert_eq!(ok, BatchOutcome::Accepted(1));
    v2.goodbye().unwrap();
    server.shutdown().unwrap();
}
