//! Tracing and introspection contract over a real loopback connection:
//! a traced QUERY_JOIN must produce one causally-connected trace
//! (client Request span → server Handler span → downstream phases),
//! INSPECT must serve the slow-query log and the §5.1 accuracy audit,
//! and an untraced client must interoperate with a tracing-enabled
//! server byte-for-byte as before.
//!
//! Everything here runs in both feature configurations: with telemetry
//! compiled out the same requests must still round-trip, with the
//! introspection sections degrading to empty rather than erroring.

use skimmed_sketch::SkimmedSchema;
use std::time::Duration;
use stream_model::{Domain, Update};
use stream_server::{ClientConfig, Server, ServerClient, ServerConfig};
use stream_wire::{StreamId, INSPECT_ALL, INSPECT_EVENTS, INSPECT_SLOW};

fn test_config() -> ServerConfig {
    let schema = SkimmedSchema::scanning(Domain::with_log2(12), 5, 128, 7);
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.read_timeout = Duration::from_millis(50);
    // Log every query, sample every key: introspection sections are
    // guaranteed non-empty after the first traffic.
    config.slow_query = Duration::ZERO;
    config.audit_shift = Some(0);
    config
}

fn traced_client(server: &Server) -> ServerClient {
    ServerClient::connect_with(
        server.local_addr(),
        ClientConfig {
            trace: true,
            ..ClientConfig::default()
        },
    )
    .expect("connect")
}

fn updates(n: u64) -> Vec<Update> {
    (0..n).map(|i| Update::insert(i % 64)).collect()
}

#[test]
fn traced_query_join_produces_one_connected_trace() {
    let server = Server::bind("127.0.0.1:0", test_config()).expect("bind");
    let mut client = traced_client(&server);
    client
        .send_all(StreamId::F, &updates(512), 128)
        .expect("send F");
    client
        .send_all(StreamId::G, &updates(512), 128)
        .expect("send G");
    let answer = client.query_join().expect("query");
    assert!(answer.estimate.is_finite());

    let trace = client.last_trace_id();
    let report = client.inspect(INSPECT_EVENTS, 0, 0).expect("inspect");
    client.goodbye().expect("goodbye");
    server.shutdown().expect("shutdown");

    if !ss_trace::ENABLED {
        assert_eq!(trace, 0, "untraceable build stamps nothing");
        assert!(report.events.is_empty());
        return;
    }
    assert_ne!(trace, 0);

    // The server's flight recorder saw the query under the client's
    // trace id, with the Handler span parenting the inner phases.
    let server_events: Vec<_> = report
        .events
        .iter()
        .filter(|e| e.trace_id == trace)
        .collect();
    let handler = server_events
        .iter()
        .find(|e| e.phase == ss_trace::Phase::Handler.code())
        .expect("handler span recorded under the client's trace id");
    assert_ne!(handler.span_id, 0);
    for phase in [ss_trace::Phase::Snapshot, ss_trace::Phase::Estimate] {
        let inner = server_events
            .iter()
            .find(|e| e.phase == phase.code())
            .unwrap_or_else(|| panic!("{} span recorded", phase.name()));
        assert_eq!(
            inner.parent_id,
            handler.span_id,
            "{} parents under the handler",
            phase.name()
        );
    }

    // Client-side Request span for the same trace id, from this
    // process's own recorder.
    let client_events: Vec<ss_trace::TraceEvent> = ss_trace::recent_events(0)
        .into_iter()
        .filter(|e| e.trace_id == trace)
        .collect();
    assert!(
        client_events
            .iter()
            .any(|e| e.phase == ss_trace::Phase::Request.code()),
        "client recorded its Request span"
    );

    // Merged export is valid Chrome trace JSON naming both processes
    // and carrying the shared trace id.
    let server_side: Vec<ss_trace::TraceEvent> = report
        .events
        .iter()
        .map(|e| ss_trace::TraceEvent {
            ts_ns: e.ts_ns,
            trace_id: e.trace_id,
            span_id: e.span_id,
            parent_id: e.parent_id,
            phase: e.phase,
            kind: e.kind,
            thread: e.thread,
            arg: e.arg,
        })
        .collect();
    let doc = ss_trace::chrome_trace_json(&[("client", &client_events), ("server", &server_side)]);
    assert!(doc.starts_with('[') && doc.ends_with(']'));
    assert!(doc.contains(&format!("{trace:016x}")));
    assert!(doc.contains("\"name\":\"handler\""));
    assert!(doc.contains("\"name\":\"request\""));
}

#[test]
fn inspect_serves_slow_query_entries_with_phase_anatomy() {
    let server = Server::bind("127.0.0.1:0", test_config()).expect("bind");
    let mut client = traced_client(&server);
    client
        .send_all(StreamId::F, &updates(256), 128)
        .expect("send F");
    client
        .send_all(StreamId::G, &updates(256), 128)
        .expect("send G");
    client.query_join().expect("query");
    let query_trace = client.last_trace_id();
    client.query_self_join(StreamId::F).expect("self join");

    let report = client.inspect(INSPECT_SLOW, 0, 0).expect("inspect");
    client.goodbye().expect("goodbye");
    server.shutdown().expect("shutdown");

    // slow_query = 0 logs every query regardless of telemetry config.
    assert!(
        report.slow.len() >= 2,
        "both queries crossed the zero threshold: {:?}",
        report.slow
    );
    let join_entry = report
        .slow
        .iter()
        .find(|e| e.kind == 5)
        .expect("QUERY_JOIN slow entry");
    assert!(join_entry.total_ns > 0);
    assert!(
        join_entry.snapshot_ns + join_entry.estimate_ns + join_entry.encode_ns
            <= join_entry.total_ns,
        "phase anatomy sums within the total"
    );
    if ss_trace::ENABLED {
        assert_eq!(join_entry.trace_id, query_trace, "entry names the trace");
    }
}

#[test]
fn inspect_audit_compares_exact_counts_with_estimates() {
    let server = Server::bind("127.0.0.1:0", test_config()).expect("bind");
    let mut client = traced_client(&server);
    // 64 distinct keys, each with exact frequency 8.
    client
        .send_all(StreamId::F, &updates(512), 512)
        .expect("send F");
    client
        .send_all(StreamId::G, &updates(512), 512)
        .expect("send G");
    // Queue is drained before INSPECT snapshots the sketches: a query
    // linearizes behind the batches.
    client.query_join().expect("query");

    let report = client.inspect_all().expect("inspect");
    client.goodbye().expect("goodbye");
    server.shutdown().expect("shutdown");

    assert!(report.uptime_ns > 0);
    if !ss_trace::ENABLED {
        assert!(report.audit.is_none(), "no audit without telemetry");
        assert!(report.metrics_json.is_empty());
        return;
    }
    let audit = report.audit.expect("audit section present");
    assert_eq!(audit.sampled_keys, 128, "64 keys per stream, shift 0");
    assert_eq!(audit.comparisons, 128);
    // The sketch is far wider than 64 keys, so point estimates are
    // near-exact and the ratio error tiny.
    assert!(
        audit.mean_ratio_error.is_finite() && audit.mean_ratio_error < 0.5,
        "mean ratio error {}",
        audit.mean_ratio_error
    );
    assert!(audit.p50 <= audit.p95 && audit.p95 <= audit.p99 && audit.p99 <= audit.max);
    assert!(
        report.metrics_json.contains("server_audit_ratio_error"),
        "audit pass feeds the metrics registry"
    );
}

#[test]
fn untraced_client_interops_with_tracing_server() {
    let server = Server::bind("127.0.0.1:0", test_config()).expect("bind");
    // Default config: trace = false — frames carry no trace extension.
    let mut client = ServerClient::connect(server.local_addr()).expect("connect");
    client
        .send_all(StreamId::F, &updates(256), 64)
        .expect("send F");
    client
        .send_all(StreamId::G, &updates(256), 64)
        .expect("send G");
    let answer = client.query_join().expect("query");
    assert!(answer.estimate.is_finite());
    assert_eq!(client.last_trace_id(), 0, "nothing stamped");
    // The v2-compatible client can still ask for introspection.
    let report = client.inspect(INSPECT_ALL, 16, 16).expect("inspect");
    assert!(report.slow.len() <= 16);
    client.goodbye().expect("goodbye");
    server.shutdown().expect("shutdown");
}
