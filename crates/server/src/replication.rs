//! Follower-side WAL replication and the primary-side poll service.
//!
//! The replication contract (DESIGN.md §12) in one paragraph: a
//! follower long-polls its primary with REPLICATE_ACK frames carrying
//! its own durable frontier `(active_segment_id, active_segment_len)`;
//! the primary answers with the next frame-aligned chunk of its WAL
//! byte stream. The follower appends the *identical* record bytes to
//! its own log under the same `segment_bytes` config, so the
//! length-driven rotation rule reproduces the primary's segment
//! boundaries and the follower's own frontier doubles as its
//! replication offset — no separate cursor state exists anywhere.
//! Because sketch ingestion is linear, applying the same batches in
//! the same order leaves the follower's sketches **bit-identical** to
//! the primary's.
//!
//! Positions the primary has pruned redirect to a snapshot bootstrap:
//! at bind time the follower adopts the snapshot into its empty log
//! (`Wal::adopt_snapshot`) and recovers from it through the normal
//! crash-recovery path; mid-run (a follower lagging past the prune
//! horizon) replication parks with `bootstrap_required` set and a
//! restart re-bootstraps.
//!
//! Fencing: every REPLICATE carries the sender's epoch. A receiver
//! refuses epochs below its own with the typed `FENCED` error, and a
//! poll loop drops replies carrying a stale epoch — so after a
//! failover (PROMOTE bumps the epoch) a network-healed ex-primary can
//! neither feed nor poison the new primary.

use crate::client::{ClientConfig, ServerClient};
use crate::{bump_dedup, Inner, Role, ServerConfig, ROLE_PRIMARY};
use ss_retry::{Backoff, BackoffConfig};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use stream_durability::{TailChunk, Wal};
use stream_wire::{ErrorCode, Frame};

/// The fencing epoch every node is born with. The first failover
/// promotes with epoch 2.
pub(crate) const INITIAL_EPOCH: u64 = 1;

/// Shared state between the follower's poll thread and the handlers.
pub(crate) struct ReplState {
    /// The primary this follower replicates from.
    pub(crate) primary: String,
    /// Tells the poll thread to exit (shutdown, halt, or PROMOTE).
    pub(crate) stop: AtomicBool,
    /// The poll thread, joined by [`stop`](Self::stop)'s callers.
    // ss-analyze: allow(a4-blocking-hot-path) -- touched only at spawn/stop/promote, never per frame
    pub(crate) handle: Mutex<Option<JoinHandle<()>>>,
    /// Upper bound on bytes behind the primary's durable frontier.
    pub(crate) lag_bytes: AtomicU64,
    /// The primary's prune horizon passed our frontier mid-run;
    /// replication is parked and a restart must re-bootstrap.
    pub(crate) bootstrap_required: AtomicBool,
}

impl ReplState {
    pub(crate) fn new(primary: String) -> Self {
        ReplState {
            primary,
            stop: AtomicBool::new(false),
            // ss-analyze: allow(a4-blocking-hot-path) -- touched only at spawn/stop/promote, never per frame
            handle: Mutex::new(None),
            lag_bytes: AtomicU64::new(0),
            bootstrap_required: AtomicBool::new(false),
        }
    }
}

/// A follower that has not polled within this window no longer gates
/// acks: replication degrades to asynchronous rather than stalling
/// every producer behind a dead follower. The degraded window is the
/// documented durability trade (DESIGN.md §12) — losing the follower
/// *and then* the primary can lose acks issued in between.
const ATTACH_WINDOW: Duration = Duration::from_secs(2);

/// Longest a handler waits inline for the follower to confirm coverage
/// before throttling the producer instead. The batch is already
/// applied and recorded in the dedup table, so the producer's retry
/// converges to an ack once replication catches up.
const ACK_GATE_WAIT: Duration = Duration::from_millis(250);

/// Poll cadence of the inline gate wait.
const ACK_GATE_TICK: Duration = Duration::from_millis(1);

/// Primary-side view of its follower: the highest WAL position the
/// follower has acknowledged — every poll request carries the
/// follower's own durable frontier, an implicit ack of everything
/// before it — plus when that poll arrived. Always present on `Inner`
/// (zeroed until a follower attaches); read by [`gate_ack`] to decide
/// whether a sequenced write may be acknowledged.
pub(crate) struct FollowerAck {
    /// Millis since server start of the last poll; 0 = never polled.
    polled_at_ms: AtomicU64,
    /// The acked `(segment, offset)` frontier. A tuple must move
    /// atomically (a torn read could fabricate an inflated frontier
    /// and leak an ack through the gate), hence the lock.
    // ss-analyze: allow(a4-blocking-hot-path) -- held for one tuple copy; touched once per replication poll and per gated ack check, both of which already paid a syscall
    frontier: Mutex<(u64, u64)>,
}

impl FollowerAck {
    pub(crate) fn new() -> Self {
        FollowerAck {
            polled_at_ms: AtomicU64::new(0),
            // ss-analyze: allow(a4-blocking-hot-path) -- see the field note: tuple atomicity, two copies per hold
            frontier: Mutex::new((0, 0)),
        }
    }

    /// Records one follower poll: its acked frontier (kept monotone —
    /// a reordered late poll must not regress it) and the poll time.
    fn record(&self, now_ms: u64, segment: u64, offset: u64) {
        let mut acked = self.frontier.lock().unwrap_or_else(|p| p.into_inner());
        if (segment, offset) > *acked {
            *acked = (segment, offset);
        }
        drop(acked);
        self.polled_at_ms.store(now_ms.max(1), Ordering::Release);
    }

    fn acked(&self) -> (u64, u64) {
        *self.frontier.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The replication ack gate: on a primary with an attached follower, a
/// sequenced batch may be acknowledged only once the follower has
/// acknowledged a WAL frontier covering it. This is what makes
/// failover lossless for sequenced producers — everything a client saw
/// acked is on the follower, so the promoted follower's answers (and
/// its dedup table) already include it, and the stateless router never
/// has to replay data it does not hold.
///
/// Returns `true` when the ack may be sent; `false` when the caller
/// should throttle the producer instead (the retry re-enters through
/// the dedup path and re-checks the gate). No follower attached — none
/// configured, none has polled yet, or the last poll is older than
/// [`ATTACH_WINDOW`] — waives the gate: replication is asynchronous
/// then, and the window is the follower-loss durability trade.
pub(crate) fn gate_ack(inner: &Inner, target: (u64, u64)) -> bool {
    let deadline = std::time::Instant::now() + ACK_GATE_WAIT;
    loop {
        let polled = inner.follower_ack.polled_at_ms.load(Ordering::Acquire);
        if polled == 0 {
            return true;
        }
        let now_ms = inner.started.elapsed().as_millis() as u64;
        if now_ms.saturating_sub(polled) > ATTACH_WINDOW.as_millis() as u64 {
            return true;
        }
        if inner.follower_ack.acked() >= target {
            return true;
        }
        if inner.shutdown.load(Ordering::Acquire) || std::time::Instant::now() >= deadline {
            return false;
        }
        // ss-analyze: allow(a4-blocking-hot-path) -- deliberate inline wait for the follower's covering ack; bounded by ACK_GATE_WAIT, after which the producer is throttled instead
        std::thread::sleep(ACK_GATE_TICK);
    }
}

/// Starts the follower's poll thread (no-op unless `follower_of` was
/// configured, i.e. `inner.repl` is present).
pub(crate) fn spawn(inner: &Arc<Inner>) -> io::Result<()> {
    let Some(repl) = inner.repl.as_ref() else {
        return Ok(());
    };
    let thread_inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name("ss-replicate".to_string())
        .spawn(move || run(&thread_inner))?;
    *repl.handle.lock().unwrap_or_else(|p| p.into_inner()) = Some(handle);
    Ok(())
}

/// Stops and joins the poll thread; idempotent, no-op on primaries.
/// Bounded wait: the loop re-checks `stop` at least once per read
/// timeout.
pub(crate) fn stop(inner: &Inner) {
    let Some(repl) = inner.repl.as_ref() else {
        return;
    };
    repl.stop.store(true, Ordering::Release);
    let handle = repl.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(h) = handle {
        let _ = h.join();
    }
}

/// Client config for replication sessions (bootstrap probe + poll loop).
fn poll_config(config: &ServerConfig) -> ClientConfig {
    ClientConfig {
        name: "ss-replica".to_string(),
        read_timeout: config.read_timeout,
        write_timeout: config.write_timeout,
        ..ClientConfig::default()
    }
}

/// Bind-time bootstrap: if the primary's history before our frontier
/// is pruned, adopt its snapshot into the (re-based) local log so the
/// normal recovery path seeds the sketches from it. Best-effort — an
/// unreachable primary is not an error; the poll loop will catch up
/// (or flag a resync) once it connects.
pub(crate) fn bootstrap(config: &ServerConfig, primary: &str) -> io::Result<()> {
    let Some(wal_config) = config.wal.clone() else {
        return Ok(());
    };
    let (mut wal, _recovered) = Wal::open(wal_config)?;
    let (segment, offset) = (wal.active_segment_id(), wal.active_segment_len());
    let Ok(mut client) = ServerClient::connect_with(primary, poll_config(config)) else {
        return Ok(());
    };
    if let Ok(chunk) = client.replicate_poll(INITIAL_EPOCH, segment, offset) {
        if chunk.snapshot {
            let _ = wal.adopt_snapshot(chunk.segment, &chunk.bytes)?;
            wal.sync()?;
        }
    }
    let _ = client.goodbye();
    Ok(())
}

/// Sleeps unless a stop was requested (keeps shutdown latency bounded
/// by one pause, not one backoff ladder).
fn pause(repl: &ReplState, d: Duration) {
    if repl.stop.load(Ordering::Acquire) {
        return;
    }
    // ss-analyze: allow(a4-blocking-hot-path) -- replication poll/backoff tick on the dedicated follower thread, off the request path
    std::thread::sleep(d);
}

/// The follower's poll loop: connect, long-poll from the local durable
/// frontier, apply, repeat; reconnect with capped-jitter backoff.
fn run(inner: &Inner) {
    let Some(repl) = inner.repl.as_ref() else {
        return;
    };
    let mut backoff = Backoff::new(&BackoffConfig::default());
    'reconnect: while !repl.stop.load(Ordering::Acquire) {
        let mut client =
            match ServerClient::connect_with(repl.primary.as_str(), poll_config(&inner.config)) {
                Ok(c) => c,
                Err(_) => {
                    pause(repl, backoff.delay());
                    continue 'reconnect;
                }
            };
        backoff.reset();
        while !repl.stop.load(Ordering::Acquire) {
            let (segment, offset) = inner.wal_frontier();
            let chunk = match client.replicate_poll(inner.epoch(), segment, offset) {
                Ok(c) => c,
                Err(_) => {
                    pause(repl, backoff.delay());
                    continue 'reconnect;
                }
            };
            if chunk.epoch < inner.epoch() {
                // A deposed primary is still answering. Drop the
                // connection and retry: the operator (or router) will
                // repoint or restart us against the new primary.
                if let Some(m) = inner.metrics {
                    m.replication_fenced.inc();
                }
                pause(repl, backoff.delay());
                continue 'reconnect;
            }
            if chunk.epoch > inner.epoch() {
                inner.epoch.store(chunk.epoch, Ordering::Release);
            }
            if chunk.snapshot {
                // Our frontier fell behind the primary's prune horizon;
                // live pools cannot adopt a snapshot, so park and ask
                // for a restart (bind-time bootstrap handles it).
                repl.bootstrap_required.store(true, Ordering::Release);
                if let Some(m) = inner.metrics {
                    m.replication_resyncs.inc();
                }
                return;
            }
            update_lag(inner, repl, chunk.frontier_segment, chunk.frontier_offset);
            if chunk.bytes.is_empty() {
                // Caught up: idle until the next poll tick.
                pause(repl, inner.config.replication_poll);
                continue;
            }
            if apply_chunk(inner, chunk.segment, chunk.offset, &chunk.bytes).is_err() {
                // Positions self-correct: the next poll re-reads our
                // actual durable frontier.
                pause(repl, backoff.delay());
                continue 'reconnect;
            }
            if let Some(m) = inner.metrics {
                m.replication_chunks.inc();
            }
            update_lag(inner, repl, chunk.frontier_segment, chunk.frontier_offset);
        }
        return;
    }
}

/// Publishes the lag upper bound implied by the primary's frontier
/// `(f_seg, f_off)` versus our own.
fn update_lag(inner: &Inner, repl: &ReplState, f_seg: u64, f_off: u64) {
    let (seg, off) = inner.wal_frontier();
    let seg_bytes = inner.config.wal.as_ref().map_or(0, |w| w.segment_bytes);
    // Segments are only full up to rotation, so this over-counts
    // partially-filled ones — an upper bound, which is the safe
    // direction for a failure detector to consume.
    let lag = (f_seg as i128 - seg as i128) * seg_bytes as i128 + f_off as i128 - off as i128;
    let lag = lag.max(0).min(u64::MAX as i128) as u64;
    repl.lag_bytes.store(lag, Ordering::Release);
    if let Some(m) = inner.metrics {
        m.replication_lag_bytes.set(lag.min(i64::MAX as u64) as i64);
    }
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Applies one frame-aligned chunk of the primary's byte stream at
/// `(segment, offset)`: per record — dispatch to the ingest pool,
/// append the identical bytes to our log, bump the idempotency table.
/// Holding the persist lock across the chunk is the same exact-cut
/// argument as the primary's write path. Returns the new frontier.
///
/// Followers deliberately never checkpoint (`maybe_checkpoint`): an
/// own-schedule snapshot would prune segments at positions the primary
/// still streams, desynchronising the byte-position contract. The
/// follower's log is pruned by the snapshot it adopts at (re)bind.
fn apply_chunk(inner: &Inner, segment: u64, offset: u64, bytes: &[u8]) -> io::Result<(u64, u64)> {
    let metrics = inner.metrics;
    let mut persist = inner.persist.lock().unwrap_or_else(|p| p.into_inner());
    {
        let wal = persist
            .wal
            .as_mut()
            .ok_or_else(|| bad_data("replication apply without a WAL".to_string()))?;
        if segment > wal.active_segment_id() {
            // The primary advanced past a sealed segment (an early
            // rotation our length rule cannot reproduce): follow it.
            wal.rotate_to(segment)?;
        }
        let at = (wal.active_segment_id(), wal.active_segment_len());
        if at != (segment, offset) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("chunk at {segment}:{offset} does not chain onto frontier {at:?}"),
            ));
        }
    }
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = bytes
            .get(at..)
            .ok_or_else(|| bad_data("chunk cursor out of range".to_string()))?;
        let (frame, n) = Frame::decode(rest, inner.config.max_payload)
            .map_err(|e| bad_data(format!("undecodable replicated record: {e}")))?;
        let record = rest
            .get(..n)
            .ok_or_else(|| bad_data("record length out of range".to_string()))?;
        let Frame::UpdateBatch {
            stream,
            client_id,
            seq,
            updates,
        } = frame
        else {
            return Err(bad_data(format!(
                "non-UPDATE_BATCH record in replication stream (kind {})",
                record.get(4).copied().unwrap_or(0)
            )));
        };
        let accepted = updates.len() as u64;
        // Replicated records were already admitted by the primary, so
        // a full queue is waited out, not refused: THROTTLE has no
        // meaning on a stream that was acknowledged once already.
        let mut chunk_updates = updates;
        loop {
            match inner.pool(stream).try_dispatch(chunk_updates) {
                Ok(()) => break,
                Err(back) => {
                    chunk_updates = back;
                    if inner.shutdown.load(Ordering::Acquire)
                        || inner
                            .repl
                            .as_ref()
                            .is_some_and(|r| r.stop.load(Ordering::Acquire))
                    {
                        return Err(io::Error::new(
                            io::ErrorKind::Interrupted,
                            "stopped while applying a replicated chunk",
                        ));
                    }
                    // ss-analyze: allow(a4-blocking-hot-path) -- follower backpressure: replicated records must not be dropped, and no client waits on this thread
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
        {
            let wal = persist
                .wal
                .as_mut()
                .ok_or_else(|| bad_data("replication apply without a WAL".to_string()))?;
            wal.append_encoded(record)?;
        }
        if client_id != 0 && seq != 0 {
            bump_dedup(&mut persist, client_id, stream, seq);
        }
        if let Some(m) = metrics {
            m.updates_accepted.add(accepted);
            m.wal_appends.inc();
            m.wal_bytes.add(record.len() as u64);
            m.replication_applied.inc();
        }
        at = at.saturating_add(n);
    }
    let wal = persist
        .wal
        .as_ref()
        .ok_or_else(|| bad_data("replication apply without a WAL".to_string()))?;
    Ok((wal.active_segment_id(), wal.active_segment_len()))
}

/// Serves one follower poll: the next chunk of this primary's log from
/// `(segment, offset)`, stamped with our epoch and durable frontier.
pub(crate) fn serve_poll(
    inner: &Inner,
    segment: u64,
    offset: u64,
) -> Result<Frame, (ErrorCode, String)> {
    if inner.role() != Role::Primary {
        return Err((
            ErrorCode::NotPrimary,
            "not a primary: replication polls go to the primary".to_string(),
        ));
    }
    let Some(tailer) = inner.tailer.as_ref() else {
        return Err((
            ErrorCode::Protocol,
            "no WAL configured: nothing to replicate".to_string(),
        ));
    };
    // The poll's position is the follower's durable frontier — an
    // implicit ack of everything before it. Recording it is what arms
    // (and advances) the sequenced-write ack gate.
    inner
        .follower_ack
        .record(inner.started.elapsed().as_millis() as u64, segment, offset);
    let (frontier_segment, frontier_offset) = inner.wal_frontier();
    let epoch = inner.epoch();
    let chunk = tailer
        .read_from(segment, offset)
        .map_err(|e| (ErrorCode::Internal, format!("replication tail failed: {e}")))?;
    Ok(match chunk {
        TailChunk::Records {
            segment,
            offset,
            bytes,
        } => Frame::Replicate {
            epoch,
            segment,
            offset,
            snapshot: false,
            frontier_segment,
            frontier_offset,
            bytes,
        },
        TailChunk::Snapshot { snap_id, bytes } => Frame::Replicate {
            epoch,
            segment: snap_id,
            offset: 0,
            snapshot: true,
            frontier_segment,
            frontier_offset,
            bytes,
        },
        TailChunk::CaughtUp => Frame::Replicate {
            epoch,
            segment,
            offset,
            snapshot: false,
            frontier_segment,
            frontier_offset,
            bytes: Vec::new(),
        },
    })
}

/// Applies a pushed REPLICATE chunk (the poll loop's shared apply path
/// behind the wire-facing epoch fence). Returns the acked frontier.
pub(crate) fn apply_push(
    inner: &Inner,
    epoch: u64,
    segment: u64,
    offset: u64,
    snapshot: bool,
    bytes: &[u8],
) -> Result<(u64, u64), (ErrorCode, String)> {
    let current = inner.epoch();
    if epoch < current {
        if let Some(m) = inner.metrics {
            m.replication_fenced.inc();
        }
        return Err((
            ErrorCode::Fenced,
            format!("replicate epoch {epoch} is fenced: current epoch is {current}"),
        ));
    }
    if inner.role() != Role::Follower {
        return Err((
            ErrorCode::Protocol,
            "a primary does not accept REPLICATE".to_string(),
        ));
    }
    if snapshot {
        return Err((
            ErrorCode::Protocol,
            "snapshot bootstrap is pull-only (poll with REPLICATE_ACK)".to_string(),
        ));
    }
    if epoch > current {
        inner.epoch.store(epoch, Ordering::Release);
    }
    if bytes.is_empty() {
        return Ok(inner.wal_frontier());
    }
    let frontier = apply_chunk(inner, segment, offset, bytes).map_err(|e| {
        (
            ErrorCode::Internal,
            format!("replication apply failed: {e}"),
        )
    })?;
    if let Some(m) = inner.metrics {
        m.replication_chunks.inc();
    }
    Ok(frontier)
}

/// Handles PROMOTE: fence-check the epoch, quiesce the poll loop, seal
/// the replicated prefix, and start serving writes under the new epoch.
///
/// The applied state equals the durable frontier by construction once
/// the poll thread is joined — every record is dispatched and appended
/// under one persist-lock critical section — so "verify the frontier"
/// reduces to refusing promotion while a re-bootstrap is pending.
pub(crate) fn promote(inner: &Inner, epoch: u64) -> Result<u64, (ErrorCode, String)> {
    let current = inner.epoch();
    if epoch <= current {
        if inner.role() == Role::Primary && epoch == current {
            // A retried PROMOTE (the first ack was lost): idempotent.
            return Ok(current);
        }
        if let Some(m) = inner.metrics {
            m.replication_fenced.inc();
        }
        return Err((
            ErrorCode::Fenced,
            format!("promote epoch {epoch} is fenced: current epoch is {current}"),
        ));
    }
    if inner
        .repl
        .as_ref()
        .is_some_and(|r| r.bootstrap_required.load(Ordering::Acquire))
    {
        return Err((
            ErrorCode::Internal,
            "follower state is incomplete (re-bootstrap pending); refusing promotion".to_string(),
        ));
    }
    // Quiesce: after the join no replication apply is in flight, so the
    // sketches, the dedup table, and the log agree.
    stop(inner);
    {
        let mut persist = inner.persist.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(wal) = persist.wal.as_mut() {
            wal.seal()
                .and_then(|()| wal.sync())
                .map_err(|e| (ErrorCode::Internal, format!("seal failed: {e}")))?;
        }
    }
    inner.epoch.store(epoch, Ordering::Release);
    inner.role.store(ROLE_PRIMARY, Ordering::Release);
    if let Some(repl) = inner.repl.as_ref() {
        repl.lag_bytes.store(0, Ordering::Release);
    }
    if let Some(m) = inner.metrics {
        m.replication_promotions.inc();
        m.replication_lag_bytes.set(0);
    }
    Ok(epoch)
}
