//! `ServerClient` — the library-side of the wire protocol, used by the
//! integration tests, the benches, and the `ssketch` CLI.
//!
//! One blocking TCP connection, strict request/reply. The client owns
//! backpressure handling: [`ServerClient::send_batch`] surfaces THROTTLE
//! as a [`BatchOutcome`], while [`ServerClient::send_all`] retries with a
//! small backoff until the stream is fully acknowledged.

use bytes::Bytes;
use skimmed_sketch::{decode_skimmed, SkimmedSchema, SkimmedSketch};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;
use stream_model::update::Update;
use stream_model::Domain;
use stream_wire::{ErrorCode, Frame, ServerInfo, StreamId, WireError, VERSION};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Frame-level failure (corruption, truncation, version skew).
    Wire(WireError),
    /// The server answered with an ERROR frame.
    Server {
        /// Machine-readable code.
        code: ErrorCode,
        /// Server-supplied context.
        message: String,
    },
    /// The server sent a well-formed frame that does not answer the
    /// request (protocol bug on one side).
    UnexpectedFrame(&'static str),
    /// No reply arrived within the client's patience window.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "client wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::UnexpectedFrame(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Timeout => write!(f, "timed out waiting for a reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

/// Result of one non-blocking batch send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The server queued the batch; `accepted` updates acknowledged.
    Accepted(u64),
    /// The server's ingest queue was full; the batch was **not** queued.
    Throttled {
        /// Chunks pending at the server when the batch bounced.
        pending: u64,
        /// The server's queue capacity.
        limit: u64,
    },
}

/// Accounting from [`ServerClient::send_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendReport {
    /// Batches acknowledged.
    pub batches: u64,
    /// Updates acknowledged.
    pub updates: u64,
    /// THROTTLE replies absorbed (each one retried until acked).
    pub throttled: u64,
}

/// A join-size answer with its sub-join anatomy (zeros for self-joins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinAnswer {
    /// The estimate.
    pub estimate: f64,
    /// Exact dense⋈dense term.
    pub dense_dense: f64,
    /// Estimated dense⋈sparse term.
    pub dense_sparse: f64,
    /// Estimated sparse⋈dense term.
    pub sparse_dense: f64,
    /// Estimated sparse⋈sparse term.
    pub sparse_sparse: f64,
    /// Dense values skimmed from `F`.
    pub dense_f: u64,
    /// Dense values skimmed from `G`.
    pub dense_g: u64,
}

/// A connected, handshaken client session.
#[derive(Debug)]
pub struct ServerClient {
    sock: TcpStream,
    info: ServerInfo,
    max_payload: u32,
    /// Idle-retry budget: total reply patience ≈ read timeout × retries.
    reply_retries: u32,
    /// Backoff between THROTTLE retries in [`ServerClient::send_all`].
    throttle_backoff: Duration,
}

impl ServerClient {
    /// Connects and handshakes with default patience (1 s read tick,
    /// 30 retries ≈ 30 s per reply).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Self::connect_named(addr, "ss-client")
    }

    /// [`ServerClient::connect`] with an explicit client name for the
    /// server's logs.
    pub fn connect_named<A: ToSocketAddrs>(addr: A, name: &str) -> Result<Self, ClientError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_secs(1)))?;
        sock.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut client = Self {
            sock,
            info: ServerInfo {
                domain_log2: 0,
                dyadic: false,
                tables: 0,
                buckets: 0,
                seed: 0,
                max_batch: 0,
                queue_limit: 0,
            },
            max_payload: stream_wire::DEFAULT_MAX_PAYLOAD,
            reply_retries: 30,
            throttle_backoff: Duration::from_micros(200),
        };
        let reply = client.call(&Frame::Hello {
            protocol: VERSION,
            client: name.to_string(),
        })?;
        match reply {
            Frame::HelloAck(info) => {
                client.info = info;
                Ok(client)
            }
            _ => Err(ClientError::UnexpectedFrame("handshake reply")),
        }
    }

    /// The schema and limits the server advertised.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Rebuilds the server's synopsis schema locally (identical hash
    /// families — decoded snapshots are mergeable with sketches built
    /// under it).
    pub fn schema(&self) -> Arc<SkimmedSchema> {
        let domain = Domain::with_log2(self.info.domain_log2 as u32);
        if self.info.dyadic {
            SkimmedSchema::dyadic(
                domain,
                self.info.tables as usize,
                self.info.buckets as usize,
                self.info.seed,
            )
        } else {
            SkimmedSchema::scanning(
                domain,
                self.info.tables as usize,
                self.info.buckets as usize,
                self.info.seed,
            )
        }
    }

    /// One request, one reply. ERROR replies become `ClientError::Server`.
    fn call(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        request.write_to(&mut self.sock)?;
        for _ in 0..self.reply_retries {
            match Frame::read_from(&mut self.sock, self.max_payload) {
                Ok((Frame::Error { code, message }, _)) => {
                    return Err(ClientError::Server { code, message })
                }
                Ok((frame, _)) => return Ok(frame),
                Err(WireError::Idle) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Err(ClientError::Timeout)
    }

    /// Sends one batch without retrying: THROTTLE surfaces as
    /// [`BatchOutcome::Throttled`] and the caller owns the retry policy.
    pub fn send_batch(
        &mut self,
        stream: StreamId,
        updates: &[Update],
    ) -> Result<BatchOutcome, ClientError> {
        let reply = self.call(&Frame::UpdateBatch {
            stream,
            updates: updates.to_vec(),
        })?;
        match reply {
            Frame::BatchAck { accepted } => Ok(BatchOutcome::Accepted(accepted)),
            Frame::Throttle { pending, limit } => Ok(BatchOutcome::Throttled { pending, limit }),
            _ => Err(ClientError::UnexpectedFrame("batch reply")),
        }
    }

    /// Streams `updates` in `chunk`-sized batches, retrying throttled
    /// batches with a small backoff until everything is acknowledged.
    pub fn send_all(
        &mut self,
        stream: StreamId,
        updates: &[Update],
        chunk: usize,
    ) -> Result<SendReport, ClientError> {
        assert!(chunk > 0, "chunk size must be nonzero");
        let chunk = chunk.min(self.info.max_batch.max(1) as usize);
        let mut report = SendReport::default();
        for batch in updates.chunks(chunk) {
            loop {
                match self.send_batch(stream, batch)? {
                    BatchOutcome::Accepted(n) => {
                        report.batches += 1;
                        report.updates += n;
                        break;
                    }
                    BatchOutcome::Throttled { .. } => {
                        report.throttled += 1;
                        std::thread::sleep(self.throttle_backoff);
                    }
                }
            }
        }
        Ok(report)
    }

    /// `COUNT(F ⋈ G)` from linearizable snapshots of both server sketches.
    pub fn query_join(&mut self) -> Result<JoinAnswer, ClientError> {
        match self.call(&Frame::QueryJoin)? {
            Frame::Answer {
                estimate,
                dense_dense,
                dense_sparse,
                sparse_dense,
                sparse_sparse,
                dense_f,
                dense_g,
            } => Ok(JoinAnswer {
                estimate,
                dense_dense,
                dense_sparse,
                sparse_dense,
                sparse_sparse,
                dense_f,
                dense_g,
            }),
            _ => Err(ClientError::UnexpectedFrame("join reply")),
        }
    }

    /// Self-join (second moment) estimate of one stream.
    pub fn query_self_join(&mut self, stream: StreamId) -> Result<f64, ClientError> {
        match self.call(&Frame::QuerySelfJoin { stream })? {
            Frame::Answer { estimate, .. } => Ok(estimate),
            _ => Err(ClientError::UnexpectedFrame("self-join reply")),
        }
    }

    /// Ships a linearizable snapshot of one stream's full skimmed sketch.
    pub fn snapshot(&mut self, stream: StreamId) -> Result<SkimmedSketch, ClientError> {
        match self.call(&Frame::Snapshot { stream })? {
            Frame::SnapshotReply {
                stream: got,
                sketch,
            } => {
                if got != stream {
                    return Err(ClientError::UnexpectedFrame("snapshot for wrong stream"));
                }
                decode_skimmed(Bytes::from(sketch))
                    .map_err(|_| ClientError::UnexpectedFrame("undecodable snapshot"))
            }
            _ => Err(ClientError::UnexpectedFrame("snapshot reply")),
        }
    }

    /// Clean close: GOODBYE, wait for the echo, drop the socket.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.call(&Frame::Goodbye)? {
            Frame::Goodbye => Ok(()),
            _ => Err(ClientError::UnexpectedFrame("goodbye reply")),
        }
    }
}
